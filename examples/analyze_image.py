#!/usr/bin/env python
"""Characterise real binary content for refresh-reduction potential.

The synthetic profiles stand in for SPEC memory images, but any real
byte blob — a core dump, a checkpoint, a model file — can be loaded and
measured directly.  This example builds three small images (an int
array, a text corpus, random bytes), runs the Fig. 6-style analysis on
each, then populates the simulator with the most promising one and
measures the refresh reduction it actually achieves.

With a path argument it analyses your file instead:

Run:  python examples/analyze_image.py [path/to/image.bin]
"""

import sys

import numpy as np

from repro import SystemConfig, ZeroRefreshSystem
from repro.workloads import analyze_pages, bytes_to_pages, load_dump
from repro.workloads.dumps import PAGE_BYTES


def demo_images():
    rng = np.random.default_rng(7)
    n = 64 * PAGE_BYTES
    int_array = (np.arange(n // 8, dtype=np.uint64) % 1000).tobytes()
    text = bytes(rng.integers(0x20, 0x7F, size=n, dtype=np.uint8))
    noise = rng.bytes(n)
    return {"int-array": int_array, "text": text, "random": noise}


def main() -> None:
    if len(sys.argv) > 1:
        pages = load_dump(sys.argv[1])
        images = {sys.argv[1]: pages}
    else:
        images = {name: bytes_to_pages(blob)
                  for name, blob in demo_images().items()}

    analyses = {}
    for name, pages in images.items():
        analysis = analyze_pages(pages)
        analyses[name] = (analysis, pages)
        print(f"{name:>10s}: {analysis.summary()}")

    best_name, (best, pages) = max(
        analyses.items(), key=lambda kv: kv[1][0].skippable_word_frac
    )
    print(f"\npopulating the simulator with '{best_name}' "
          f"({best.n_pages} pages)...")

    config = SystemConfig.scaled(total_bytes=4 << 20, rows_per_ar=32, seed=1)
    system = ZeroRefreshSystem(config)
    page_ids = np.arange(min(len(pages), system.allocator.total_pages))
    system.controller.populate_pages(page_ids, pages[: len(page_ids)],
                                     notify=False)
    system.engine.run_window(0.0)  # derive status
    stats = system.engine.run_window(system.config.timing.tret_s)
    print(f"measured refresh reduction: {stats.reduction():.1%} "
          f"(per-line upper bound was {best.skippable_word_frac:.1%})")
    # verify the content reads back exactly through the transformation
    got = system.read_page(0)
    assert (got == pages[0]).all()
    print("content round-trips exactly through the transformation.")


if __name__ == "__main__":
    main()
