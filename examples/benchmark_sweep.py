#!/usr/bin/env python
"""Sweep the full benchmark suite (the Fig. 14 experiment, in miniature).

Runs every profile of the SPEC CPU2006 / NPB / TPC-H suite through the
simulator at 100 % allocation and prints the per-benchmark normalised
refresh next to the mixture-implied analytic value, ordered best to
worst — the same series Fig. 14's 100 % bars plot.

Run:  python examples/benchmark_sweep.py [--memory-mb 16] [--windows 2]
"""

import argparse

import numpy as np

from repro import SystemConfig, ZeroRefreshSystem
from repro.analysis import render_table
from repro.workloads import PROFILES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--memory-mb", type=int, default=16)
    parser.add_argument("--windows", type=int, default=2)
    args = parser.parse_args()

    rows = []
    measured = []
    for i, (name, profile) in enumerate(sorted(
            PROFILES.items(), key=lambda kv: -kv[1].expected_reduction())):
        config = SystemConfig.scaled(
            total_bytes=args.memory_mb << 20, rows_per_ar=32, seed=100 + i
        )
        system = ZeroRefreshSystem(config)
        system.populate(profile, allocated_fraction=1.0)
        result = system.run_windows(args.windows)
        measured.append(result.refresh_reduction)
        rows.append([
            name,
            profile.suite,
            result.normalized_refresh,
            1.0 - profile.expected_reduction(),
            f"{result.ipc.speedup_percent:+.1f}%",
        ])
        print(f"  {name}: reduction {result.refresh_reduction:.1%}",
              flush=True)
    print()
    print(render_table(
        ["benchmark", "suite", "norm refresh (sim)",
         "norm refresh (analytic)", "IPC gain"],
        rows,
    ))
    print(f"\nsuite average reduction: {np.mean(measured):.1%} "
          f"(paper Fig. 14: 37.1%)")


if __name__ == "__main__":
    main()
