#!/usr/bin/env python
"""Sweep the full benchmark suite (the Fig. 14 experiment, in miniature).

Runs every profile of the SPEC CPU2006 / NPB / TPC-H suite through the
simulator at 100 % allocation and prints the per-benchmark normalised
refresh next to the mixture-implied analytic value, ordered best to
worst — the same series Fig. 14's 100 % bars plot.

The sweep goes through :mod:`repro.api`'s experiment engine: one
``SimJob`` per benchmark, fanned out over ``--jobs`` worker processes
(default: every core) with results memoised in the on-disk cache when
``--cache`` is given.

Run:  python examples/benchmark_sweep.py [--memory-mb 16] [--windows 2]
"""

import argparse

import numpy as np

import repro.api as api
from repro.analysis import render_table
from repro.experiments import SimJob
from repro.workloads import PROFILES


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--memory-mb", type=int, default=16)
    parser.add_argument("--windows", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--cache", action="store_true",
                        help="memoise results in the on-disk cache")
    args = parser.parse_args()

    ordered = sorted(PROFILES.items(), key=lambda kv: -kv[1].expected_reduction())
    settings = api.default_settings(
        memory_bytes=args.memory_mb << 20,
        windows=args.windows,
        rows_per_ar=32,
        seed=100,
        benchmarks=tuple(name for name, _ in ordered),
    )
    jobs = [SimJob(benchmark=name, allocated_fraction=1.0, seed_offset=i)
            for i, name in enumerate(settings.benchmarks)]

    runner = api.make_runner(jobs=args.jobs, cache=args.cache)
    results = runner.run_jobs("benchmark-sweep", settings, jobs)

    rows = []
    measured = []
    for (name, profile), result in zip(ordered, results):
        measured.append(result.refresh_reduction)
        rows.append([
            name,
            profile.suite,
            result.normalized_refresh,
            1.0 - profile.expected_reduction(),
            f"{result.ipc.speedup_percent:+.1f}%",
        ])
        print(f"  {name}: reduction {result.refresh_reduction:.1%}",
              flush=True)
    print()
    print(render_table(
        ["benchmark", "suite", "norm refresh (sim)",
         "norm refresh (analytic)", "IPC gain"],
        rows,
    ))
    print(f"\nsuite average reduction: {np.mean(measured):.1%} "
          f"(paper Fig. 14: 37.1%)")


if __name__ == "__main__":
    main()
