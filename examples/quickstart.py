#!/usr/bin/env python
"""Quickstart: simulate ZERO-REFRESH on one benchmark.

Builds a capacity-scaled Table II system, fills it with the mcf
workload at the Google data-center utilisation level (70 % allocated),
runs eight retention windows, and reports the headline metrics —
refresh reduction, energy reduction and IPC gain — against conventional
auto-refresh.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, ZeroRefreshSystem
from repro.workloads import benchmark_profile


def main() -> None:
    # A 32 MB stand-in for the paper's 32 GB: all structural ratios
    # (chips, banks, row size, rows per AR command) are preserved, and
    # every reported metric is a ratio, so the scale cancels out.
    config = SystemConfig.scaled(total_bytes=32 << 20, seed=42)
    system = ZeroRefreshSystem(config)

    profile = benchmark_profile("mcf")
    print(f"benchmark: {profile.name} — {profile.description}")
    print(f"mixture-implied reduction at 100% alloc: "
          f"{profile.expected_reduction():.1%}")

    # 70% allocated = the Google-trace scenario; the idle 30% holds
    # zeros thanks to the OS zero-on-free policy.
    system.populate(profile, allocated_fraction=0.70)
    result = system.run_windows(8)

    print()
    print(f"allocated memory:        {result.allocated_fraction:.0%}")
    print(f"normalized refresh ops:  {result.normalized_refresh:.3f}  "
          f"({result.refresh_reduction:.1%} eliminated)")
    print(f"normalized energy:       {result.normalized_energy:.3f}  "
          f"({1 - result.normalized_energy:.1%} saved, overheads included)")
    print(f"normalized IPC:          {result.ipc.normalized_ipc:.3f}  "
          f"({result.ipc.speedup_percent:+.1f}%)")
    print(f"data integrity:          "
          f"{'OK' if system.verify_integrity() else 'VIOLATED'}")

    stats = result.refresh
    print()
    print(f"AR commands: {stats.ar_commands}  "
          f"(dirty: {stats.dirty_ars}, clean: {stats.clean_ars})")
    print(f"row refreshes performed: {stats.groups_refreshed}, "
          f"skipped: {stats.groups_skipped}")
    print(f"status-table traffic: {stats.status_reads} reads, "
          f"{stats.status_writes} writes")


if __name__ == "__main__":
    main()
