#!/usr/bin/env python
"""Regenerate paper figures through the blessed ``repro.api`` path.

Everything the CLI can do is available programmatically: pick
experiments, scale settings, fan work out over processes, and reuse the
on-disk result cache across calls.  A second run of this script (with
``--cache``) serves every simulation point from the cache.

Run:  python examples/paper_figures.py [fig17 fig19 ...] [--quick]
"""

import argparse

import repro.api as api


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("experiments", nargs="*", default=["fig17", "fig19"],
                        help="experiment ids (default: fig17 fig19); "
                             f"known: {', '.join(api.list_experiments())}")
    parser.add_argument("--quick", action="store_true",
                        help="small scale: 16 MB, 2 windows, 9 benchmarks")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--cache", action="store_true",
                        help="memoise results in the on-disk cache")
    args = parser.parse_args()

    settings = api.quick_settings() if args.quick else api.default_settings()
    runner = api.make_runner(jobs=args.jobs, cache=args.cache)
    for experiment_id in args.experiments:
        result = api.run(api.RunRequest(experiment_id, settings=settings),
                         runner=runner)
        print(result.render())
        print()
    hits, misses = runner.stats.cache_hits, runner.stats.cache_misses
    print(f"engine: {runner.stats.jobs} jobs, {hits} cache hits, "
          f"{misses} simulated")


if __name__ == "__main__":
    main()
