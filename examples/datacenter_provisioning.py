#!/usr/bin/env python
"""Data-center scenario study: refresh savings vs. memory utilisation.

The workload the paper's introduction motivates: consolidated servers
are provisioned for peak demand, so large fractions of DRAM sit idle.
This example replays the three cluster-trace utilisation profiles
(Google, Alibaba, Bitbrains) against a mixed tenant workload and shows
how the refresh and energy savings of ZERO-REFRESH grow as utilisation
falls — including a time-varying run that follows a utilisation trace
sample by sample.

Run:  python examples/datacenter_provisioning.py
"""

import numpy as np

from repro import SystemConfig, ZeroRefreshSystem
from repro.analysis import render_table
from repro.workloads import benchmark_profile, paper_traces


def steady_state_study() -> None:
    """Average-utilisation scenarios (Table I levels)."""
    tenant = benchmark_profile("tpch.q5")  # a database tenant
    rows = []
    for name, trace in paper_traces().items():
        config = SystemConfig.scaled(total_bytes=16 << 20, rows_per_ar=32,
                                     seed=1)
        system = ZeroRefreshSystem(config)
        system.populate(tenant, allocated_fraction=trace.mean)
        result = system.run_windows(4)
        rows.append([
            name,
            f"{trace.mean:.0%}",
            result.normalized_refresh,
            result.normalized_energy,
            f"{result.ipc.speedup_percent:+.1f}%",
        ])
    print(render_table(
        ["trace", "allocated", "norm refresh", "norm energy", "IPC"],
        rows,
    ))


def time_varying_study() -> None:
    """Follow a utilisation trace: allocate/free pages between windows."""
    config = SystemConfig.scaled(total_bytes=16 << 20, rows_per_ar=32, seed=2)
    system = ZeroRefreshSystem(config)
    tenant = benchmark_profile("tpch.q1")
    trace = paper_traces()["google"]
    rng = np.random.default_rng(3)

    targets = trace.samples[:12]
    system.populate(tenant, allocated_fraction=float(targets[0]),
                    accesses_per_window=256)
    system.run_windows(1)  # settle the status tables

    print("\nwindow-by-window (Google trace):")
    rows = []
    for i, target in enumerate(targets):
        allocator = system.allocator
        want = int(target * allocator.total_pages)
        have = len(allocator.allocated_pages)
        if want > have:
            grown = allocator.allocate(want - have, system.time_s)
            content = tenant.generate_pages(len(grown), rng)
            system.controller.populate_pages(np.sort(grown), content,
                                             system.time_s, notify=True)
        elif want < have:
            victims = rng.choice(allocator.allocated_pages,
                                 size=have - want, replace=False)
            allocator.free(victims, system.time_s)  # zero-on-free cleanses
        result = system.run_windows(1)
        rows.append([i, f"{target:.0%}", result.normalized_refresh])
    print(render_table(["window", "utilisation", "norm refresh"], rows))
    print(f"\nintegrity: {'OK' if system.verify_integrity() else 'VIOLATED'}")


def main() -> None:
    print("steady-state scenarios (Table I averages):")
    steady_state_study()
    time_varying_study()


if __name__ == "__main__":
    main()
