#!/usr/bin/env python
"""Trace-driven simulation: program trace -> caches -> DRAM -> refresh.

The closest analogue of the paper's execution-driven methodology: a
multi-core demand-access trace is replayed through the Table II cache
hierarchy (per-core L1s over a shared LLC), and only the LLC misses and
dirty writebacks reach the memory controller — where the value
transformation runs — while the refresh engine works underneath.

The example synthesizes a four-core trace over a hot working set, saves
and reloads it (the npz trace format), replays it, and reports cache
hit rates alongside the refresh outcome.

Run:  python examples/trace_driven.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SystemConfig, ZeroRefreshSystem
from repro.cpu.trace import ProgramTrace, TraceDrivenDriver
from repro.workloads import benchmark_profile


def main() -> None:
    config = SystemConfig.scaled(total_bytes=8 << 20, rows_per_ar=32, seed=9)
    system = ZeroRefreshSystem(config)
    profile = benchmark_profile("sphinx3")
    system.populate(profile, allocated_fraction=1.0, accesses_per_window=0)

    # Four cores hammering a 1 MB hot region (the paper runs the same
    # benchmark on every core).
    hot_pages = system.allocator.allocated_pages[256:512]
    rng = np.random.default_rng(11)
    trace = ProgramTrace.generate(
        hot_pages, n_accesses=60_000, num_cores=config.num_cores,
        write_fraction=0.25, rng=rng,
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sphinx3.npz"
        trace.save(path)
        trace = ProgramTrace.load(path)
        print(f"trace: {len(trace)} accesses, {trace.num_cores} cores, "
              f"{trace.is_write.mean():.0%} writes (saved+reloaded via npz)")

    # A scaled-down hierarchy (Table II ratios) so the hot region
    # overflows the LLC and produces dirty writebacks, like the real
    # 8 MB LLC does under multi-GB footprints.
    from repro.cache import CacheHierarchy

    hierarchy = CacheHierarchy(num_cores=config.num_cores,
                               l1_bytes=8 << 10, l1_ways=8,
                               llc_bytes_per_core=128 << 10, llc_ways=32)
    driver = TraceDrivenDriver(system, hierarchy)
    stats = driver.run(trace, n_windows=4)

    print()
    for l1 in driver.hierarchy.l1:
        print(f"{l1.name}: hit rate {l1.hit_rate:.1%}")
    print(f"LLC: hit rate {driver.hierarchy.llc.hit_rate:.1%}, "
          f"{driver.hierarchy.llc.writebacks} writebacks")
    print(f"DRAM traffic: {driver.dram_reads} fills, "
          f"{driver.dram_writes} writebacks "
          f"({(driver.dram_reads + driver.dram_writes) / len(trace):.1%} "
          "of trace accesses)")
    print()
    print(f"normalized refresh over {stats.windows} windows: "
          f"{stats.normalized_refresh():.3f} "
          f"({stats.reduction():.1%} eliminated)")
    print(f"integrity: {'OK' if system.verify_integrity() else 'VIOLATED'}")


if __name__ == "__main__":
    main()
