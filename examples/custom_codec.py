#!/usr/bin/env python
"""Inside the value transformation: follow one cacheline through the
pipeline.

Walks a cacheline of pointer-like values through EBDI, the bit-plane
transposition and the data rotation, printing the intermediate images
so you can see exactly where the discharged bits come from — and shows
the anti-cell complement and the exact round trip, including under a
deliberately wrong cell-type prediction.

Run:  python examples/custom_codec.py
"""

import numpy as np

from repro.transform import (
    BitPlaneTransform,
    CellType,
    CellTypeLayout,
    CellTypePredictor,
    EbdiCodec,
    StageSelection,
    ValueTransformCodec,
)


def show(title: str, words: np.ndarray) -> None:
    print(f"{title}:")
    for i, word in enumerate(words.ravel()):
        print(f"  w{i}: {int(word):016x}")


def main() -> None:
    # A pointer array: eight addresses into the same heap region.
    base = 0x00007F3A_12340000
    line = np.array(
        [[base + 0x40 * i for i in range(8)]], dtype=np.uint64
    )
    show("original cacheline (heap pointers)", line)

    ebdi = EbdiCodec(word_bytes=8, line_bytes=64)
    encoded = ebdi.encode(line, CellType.TRUE)
    show("\nafter EBDI (base + zigzag deltas)", encoded)
    print(f"  -> deltas need {int(ebdi.delta_bit_width(line)[0])} bits; "
          "the high-order bits of every delta word are already zero")

    bitplane = BitPlaneTransform()
    transposed = bitplane.apply(encoded)
    show("\nafter bit-plane transposition", transposed)
    zero_words = int((transposed == 0).sum(axis=1)[0])
    print(f"  -> non-zero content packed into "
          f"{8 - zero_words} of 8 words; {zero_words} words are fully "
          "discharged on a true-cell row")

    # Full codec with rotation and cell-type handling.
    layout = CellTypeLayout(interleave=4)
    predictor = CellTypePredictor.from_layout(layout, num_rows=16)
    codec = ValueTransformCodec(predictor)

    for row in (0, 4):  # row 0 is true-cell, row 4 anti-cell
        kind = layout.cell_type(row).name
        chips = codec.encode_row(line, row)
        discharged = [
            chip for chip in range(8)
            if (chips[chip] == (0 if kind == "TRUE" else
                                np.uint64(0xFFFFFFFFFFFFFFFF))).all()
        ]
        print(f"\nstored in row {row} ({kind}-cell): base word on chip "
              f"{codec.rotation.chip_of_word(0, row)}, discharged chips "
              f"{discharged}")
        recovered = codec.decode_row(chips, row)
        assert (recovered == line).all()
    print("\nround trip exact on both cell types.")

    # Misprediction: flip every prediction; data still survives.
    wrong = CellTypePredictor(1 - predictor.predict_anti(np.arange(16)))
    codec_wrong = ValueTransformCodec(wrong)
    chips = codec_wrong.encode_row(line, 0)
    assert (codec_wrong.decode_row(chips, 0) == line).all()
    print("round trip exact even with a 100% wrong cell-type table "
          "(only the refresh-skip opportunity is lost).")

    # Stage ablation: raw storage for comparison.
    raw_codec = ValueTransformCodec(predictor, stages=StageSelection.none())
    raw_chips = raw_codec.encode_row(line, 0)
    raw_discharged = [c for c in range(8) if not raw_chips[c].any()]
    print(f"\nwithout transformation the same line leaves "
          f"{len(raw_discharged)} chips discharged — the transformation "
          "is what creates the skip opportunity.")


if __name__ == "__main__":
    main()
