"""Bench: regenerate the Sec. IV-B tracking-cost table + ablation."""

import pytest

from repro.experiments import sram_overhead
from repro.experiments.ablations import run_tracking


def test_sram_costs(benchmark, settings, show):
    result = benchmark(sram_overhead.run, settings)
    show(result)
    naive, opt = result.rows[0], result.rows[1]
    assert naive[2] == pytest.approx(337.14, rel=1e-3)
    assert opt[2] == pytest.approx(2.71, rel=1e-3)
    assert naive[2] / opt[2] > 100


def test_tracking_ablation(benchmark, settings, show):
    result = benchmark.pedantic(run_tracking, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    opt, naive = result.rows[0], result.rows[1]
    for a, b in zip(opt[1:], naive[1:]):
        assert abs(a - b) < 0.25  # same skip decisions, cheaper SRAM
