"""Bench: RAIDR's VRT exposure vs ZERO-REFRESH's value-based immunity."""

from repro.experiments.ext_vrt import run


def test_ext_vrt(benchmark, settings, show):
    result = benchmark.pedantic(run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    raidr_rows = [row for row in result.rows if row[0].startswith("RAIDR")]
    unsafe = [row[2] for row in raidr_rows]
    assert unsafe == sorted(unsafe)  # exposure grows with VRT age
    assert unsafe[-1] > 0
    zero_row = result.rows[-1]
    assert zero_row[2] == 0  # value-based skipping has no exposure
