"""Bench: cell-type identification accuracy ablation."""

from repro.experiments.ablations import run_celltype


def test_celltype_ablation(benchmark, settings, show):
    result = benchmark.pedantic(run_celltype, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    for col in range(1, len(result.headers)):
        series = [row[col] for row in result.rows]
        assert series == sorted(series)  # more error -> less skipping
