"""Bench: the hybrid charge+recency extension across capacities."""

from repro.experiments.ext_hybrid import run


def test_ext_hybrid(benchmark, settings, show):
    result = benchmark.pedantic(run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    for row in result.rows:
        smart, zero, hybrid = row[1], row[2], row[3]
        assert hybrid <= zero + 1e-9  # never worse than ZERO-REFRESH
    # hybrid's recency edge is largest where Smart Refresh is strongest
    edge_small = result.rows[0][2] - result.rows[0][3]
    edge_large = result.rows[-1][2] - result.rows[-1][3]
    assert edge_small >= edge_large - 0.02
