"""Bench: regenerate Fig. 19 (Smart Refresh vs ZERO-REFRESH scaling)."""

from repro.experiments import fig19


def test_fig19_scalability(benchmark, settings, show):
    result = benchmark.pedantic(fig19.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    smart = [row[1] for row in result.rows]
    zero = [row[2] for row in result.rows]
    # Smart Refresh fades with capacity; ZERO-REFRESH stays (nearly) flat
    assert smart == sorted(smart)
    assert smart[-1] > 0.85
    assert max(zero) - min(zero) < max(smart) - min(smart)
    # crossover: ZERO-REFRESH wins at large capacity
    assert zero[-1] < smart[-1]
