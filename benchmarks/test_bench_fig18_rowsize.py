"""Bench: regenerate Fig. 18 (row-buffer size sensitivity)."""

from repro.experiments import fig18


def test_fig18_row_size(benchmark, settings, show):
    result = benchmark.pedantic(fig18.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    avg = next(r for r in result.rows if r[0] == "average")
    # crossover direction: smaller rows skip more
    assert avg[1] < avg[2] < avg[3]
