"""Bench: regenerate Fig. 6 (zero fractions at 1 KB and 1 B)."""

from repro.experiments import fig06


def test_fig06_zero_fractions(benchmark, settings, show):
    result = benchmark(fig06.run, settings)
    show(result)
    avg = result.rows[-1]
    assert 0.0 < avg[1] < 0.10   # few fully-zero 1 KB blocks
    assert 0.25 < avg[2] < 0.60  # but many zero bytes
    assert avg[2] > 5 * avg[1]
