"""Microbenchmarks: value-transformation codec throughput.

Not a paper artifact, but the practical cost of simulating it — useful
when sizing full-scale runs.
"""

import numpy as np
import pytest

from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@pytest.fixture(scope="module")
def codec():
    layout = CellTypeLayout(interleave=64)
    predictor = CellTypePredictor.from_layout(layout, 4096)
    return ValueTransformCodec(predictor)


@pytest.fixture(scope="module")
def rows_data():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2**64, size=(512, 64, 8), dtype=np.uint64)


def test_bulk_encode_throughput(benchmark, codec, rows_data):
    rows = np.arange(len(rows_data))
    result = benchmark(codec.encode_rows, rows_data, rows)
    assert result.shape == (512, 8, 64, 1)


def test_bulk_decode_throughput(benchmark, codec, rows_data):
    rows = np.arange(len(rows_data))
    encoded = codec.encode_rows(rows_data, rows)
    result = benchmark(codec.decode_rows, encoded, rows)
    assert (result == rows_data).all()


def test_single_line_roundtrip_latency(benchmark, codec):
    rng = np.random.default_rng(1)
    line = rng.integers(0, 2**64, size=(1, 8), dtype=np.uint64)

    def roundtrip():
        return codec.decode_row(codec.encode_row(line, 5), 5)

    result = benchmark(roundtrip)
    assert (result == line).all()
