"""Bench: compressibility vs skippability across content classes."""

from repro.experiments.abl_compression import run


def test_compression_vs_skippability(benchmark, settings, show):
    result = benchmark(run, settings)
    show(result)
    by_class = {row[0]: row for row in result.rows}
    # zero saturates everything; random defeats everything
    assert by_class["zero"][1] == 64.0
    assert by_class["zero"][3] == 8
    assert by_class["random"][3] == 0
    # the divergence: BDI-incompressible classes can still skip words
    assert by_class["wide"][1] < 1.05 and by_class["wide"][3] >= 2
