"""Bench: regenerate Fig. 5 (utilisation CDFs of the three traces)."""

from repro.experiments import fig05


def test_fig05_utilization_cdfs(benchmark, settings, show):
    result = benchmark(fig05.run, settings)
    show(result)
    by_name = {row[0]: row[1:] for row in result.rows}
    # CDF ordering at mid-utilisation: bitbrains >> google >> alibaba
    assert by_name["bitbrains"][4] > by_name["google"][4] > by_name["alibaba"][4]
