"""Bench: regenerate Fig. 16 (normal vs extended temperature)."""

from repro.experiments import fig16


def test_fig16_temperature(benchmark, settings, show):
    result = benchmark.pedantic(fig16.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    avg = next(r for r in result.rows if r[0] == "average")
    # 64 ms windows see more writes -> equal or slightly less reduction
    assert avg[2] >= avg[1] - 1e-9
    assert avg[2] - avg[1] < 0.10
