"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module that regenerates it via
``pytest benchmarks/ --benchmark-only``.  Simulation-backed experiments
run at the quick scale (16 MB, 2 windows, 9 representative benchmarks)
so the whole harness completes in minutes; pass ``--repro-full`` to run
the paper-scale sweeps instead (32 MB, 8 windows, all 23 benchmarks).

Each bench prints the regenerated table so the harness output doubles
as the reproduction artifact.
"""

import pytest

from repro.experiments import ExperimentSettings


def pytest_addoption(parser):
    parser.addoption(
        "--repro-full",
        action="store_true",
        default=False,
        help="run experiments at full scale (slow) instead of quick scale",
    )


@pytest.fixture(scope="session")
def settings(request):
    if request.config.getoption("--repro-full"):
        return ExperimentSettings()
    return ExperimentSettings.quick()


@pytest.fixture
def show():
    """Print an ExperimentResult table beneath the bench output."""

    def _show(result):
        print()
        print(result.render())
        return result

    return _show
