"""Bench: latency-hiding schedulers vs work-removing skipping."""

from repro.experiments.ext_scheduling import run


def test_ext_scheduling(benchmark, settings, show):
    result = benchmark.pedantic(run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    by_policy = {row[0]: row for row in result.rows}
    base = by_policy["conventional"][3]
    for policy in ("elastic", "pausing", "zero-refresh",
                   "zero-refresh + pausing"):
        assert by_policy[policy][3] < base
    assert (by_policy["zero-refresh + pausing"][3]
            <= min(by_policy["pausing"][3], by_policy["zero-refresh"][3]))
