"""Bench: per-bank vs all-bank AR policy ablation (Sec. IV-A)."""

from repro.experiments.ablations import run_policy


def test_policy_ablation(benchmark, settings, show):
    result = benchmark.pedantic(run_policy, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    assert len(result.rows) == 4
    for row in result.rows:
        assert all(0 < v <= 1.2 for v in row[1:])
