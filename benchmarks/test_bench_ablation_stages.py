"""Bench: pipeline-stage contribution ablation."""

from repro.experiments.ablations import run_stages


def test_stage_ablation(benchmark, settings, show):
    result = benchmark.pedantic(run_stages, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    for col in range(1, len(result.headers)):
        series = [row[col] for row in result.rows]
        assert series[-1] <= series[0]  # full pipeline never worse than raw
