"""Bench: EBDI word-size ablation (8 B vs 4 B)."""

from repro.experiments.ablations import run_wordsize


def test_wordsize_ablation(benchmark, settings, show):
    result = benchmark.pedantic(run_wordsize, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    assert len(result.rows) == 2
    for row in result.rows:
        assert all(0 < v <= 1.0 + 1e-9 for v in row[1:])
