"""Bench: regenerate Fig. 14 (normalised refresh, four scenarios)."""

from repro.experiments import fig14


def test_fig14_refresh_reduction(benchmark, settings, show):
    result = benchmark.pedantic(fig14.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    avg = next(r for r in result.rows if r[0] == "average")
    # who wins: ZERO-REFRESH always beats conventional (norm < 1)
    assert avg[1] < 0.85
    # scenario ordering: more idle memory -> fewer refreshes
    assert avg[1] > avg[2] > avg[3] > avg[4]
    # rough factor at the Bitbrains level: most refreshes eliminated
    assert avg[4] < 0.35
