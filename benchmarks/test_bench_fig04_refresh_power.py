"""Bench: regenerate Fig. 4 (refresh power share vs density)."""

from repro.experiments import fig04


def test_fig04_refresh_power(benchmark, settings, show):
    result = benchmark(fig04.run, settings)
    show(result)
    shares = {(row[0], row[1]): row[4] for row in result.rows}
    assert shares[("extended", "16 Gb")] > 0.5
    assert shares[("normal", "4 Gb")] < shares[("extended", "4 Gb")]
