"""Bench: regenerate Fig. 15 (normalised refresh energy)."""

from repro.experiments import fig15


def test_fig15_energy(benchmark, settings, show):
    result = benchmark.pedantic(fig15.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    avg = next(r for r in result.rows if r[0] == "average")
    assert avg[1] > avg[2] > avg[3] > avg[4]
    assert avg[4] < 0.40
