"""Bench: regenerate Fig. 17 (normalised IPC)."""

from repro.experiments import fig17


def test_fig17_ipc(benchmark, settings, show):
    result = benchmark.pedantic(fig17.run, args=(settings,), rounds=1,
                                iterations=1)
    show(result)
    by_name = {row[0]: row[1] for row in result.rows}
    assert all(v >= 1.0 for v in by_name.values())
    avg = by_name["average"]
    assert 1.01 < avg < 1.12
    if "gemsFDTD" in by_name:
        assert by_name["gemsFDTD"] == max(
            v for k, v in by_name.items() if k != "average"
        )
