"""Bench: regenerate Table I (average allocated memory of traces)."""

import pytest

from repro.experiments import tab01


def test_tab01_trace_means(benchmark, settings, show):
    result = benchmark(tab01.run, settings)
    show(result)
    for row in result.rows:
        assert row[2] == pytest.approx(row[3], abs=0.03)
