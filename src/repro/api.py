"""The blessed public interface for running paper experiments.

One entry path instead of three: ``python -m repro.experiments``,
``run_experiments.py`` and the examples all route through this module.

    >>> import repro.api as api
    >>> api.list_experiments()[:3]
    ['fig04', 'tab01', 'fig05']
    >>> result = api.run_experiment(
    ...     "fig17", settings=api.quick_settings(), jobs=4)
    >>> print(result.render())          # or result.to_json(), .to_csv()

``run_experiment`` executes through the parallel, cache-aware engine
(:mod:`repro.experiments.engine`): work fans out over ``jobs`` worker
processes and every simulation point is memoised in a content-addressed
on-disk cache, so regenerating a figure — or a second figure that
shares simulation points with the first — reuses results instead of
re-simulating.  Pass ``cache=False`` to force fresh simulation, or a
``cache_dir`` to relocate the store (default: ``$REPRO_CACHE_DIR`` or
``.repro-cache``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.experiments import REGISTRY
from repro.experiments.cache import ResultCache
from repro.experiments.engine import Experiment, Runner
from repro.experiments.runner import ExperimentResult, ExperimentSettings

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "Runner",
    "default_settings",
    "get_experiment",
    "list_experiments",
    "make_runner",
    "make_server",
    "quick_settings",
    "run_all",
    "run_experiment",
    "settings_from_dict",
    "version",
]


def version() -> str:
    """The package version, from installed metadata when available.

    Falls back to ``repro.__version__`` for source-tree runs
    (``PYTHONPATH=src``) where no distribution metadata exists.
    """
    try:
        from importlib.metadata import version as metadata_version

        return metadata_version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def settings_from_dict(overrides=None, quick: bool = False) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from a JSON-decoded mapping.

    The wire form used by the serving layer's experiment endpoint;
    see :meth:`ExperimentSettings.from_dict` for the accepted keys.
    """
    return ExperimentSettings.from_dict(overrides, quick=quick)


def make_server(config=None, **overrides):
    """A configured :class:`repro.serve.ReproServer` (not yet started).

    ``overrides`` are :class:`repro.serve.ServeConfig` fields; pass a
    ready config instead to reuse one.  Imported lazily so plain
    experiment runs never pay for the serving stack.
    """
    from repro.serve import ReproServer, ServeConfig

    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        raise ValueError("give a ServeConfig or field overrides, not both")
    return ReproServer(config)


def list_experiments() -> List[str]:
    """Every runnable experiment id, in paper order."""
    return list(REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    """The :class:`Experiment` registered under ``experiment_id``."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def default_settings(**overrides) -> ExperimentSettings:
    """Paper-scale settings (32 MB stand-in, 8 windows, full suite)."""
    return ExperimentSettings(**overrides)


def quick_settings(**overrides) -> ExperimentSettings:
    """CI/bench scale (16 MB, 2 windows, 9 benchmarks)."""
    return ExperimentSettings.quick(**overrides)


def make_runner(
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    watchdog: bool = False,
) -> Runner:
    """A configured engine :class:`Runner`.

    ``jobs=None`` uses every core; ``cache`` accepts ``True`` (default
    location), ``False`` (no caching) or a ready :class:`ResultCache`.
    ``watchdog=True`` runs every job under an invariant watchdog whose
    findings land in the runner's metrics manifest.
    """
    if isinstance(cache, ResultCache):
        store = cache
    elif cache:
        store = ResultCache(cache_dir)
    else:
        store = None
    return Runner(jobs=jobs, cache=store, watchdog=watchdog)


def run_experiment(
    experiment_id: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[Runner] = None,
    probes=None,
    watchdog: bool = False,
) -> ExperimentResult:
    """Run one experiment through the engine and return its result.

    Pass an explicit ``runner`` to share a cache/manifest across
    several calls (the CLI does this for ``all``); otherwise one is
    built from ``jobs``/``cache``/``cache_dir``/``watchdog``.

    ``probes`` installs a :class:`repro.obs.ProbeBus` for the run's
    duration.  The bus is per-process, so an instrumented run without
    an explicit ``runner`` executes in-process (``jobs=1``); per-job
    metric snapshots survive fan-out either way (see
    ``Runner.metrics_manifest``).
    """
    experiment = get_experiment(experiment_id)
    if runner is None:
        if probes is not None:
            jobs = 1
        runner = make_runner(jobs=jobs, cache=cache, cache_dir=cache_dir,
                             watchdog=watchdog)
    if probes is None:
        return runner.run_experiment(experiment, settings)
    from repro.obs import use_probes

    with use_probes(probes):
        return runner.run_experiment(experiment, settings)


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[Runner] = None,
    probes=None,
    watchdog: bool = False,
) -> Dict[str, ExperimentResult]:
    """Run every registered experiment; results keyed by id."""
    if runner is None:
        if probes is not None:
            jobs = 1
        runner = make_runner(jobs=jobs, cache=cache, cache_dir=cache_dir,
                             watchdog=watchdog)
    return {
        experiment_id: run_experiment(experiment_id, settings,
                                      runner=runner, probes=probes)
        for experiment_id in REGISTRY
    }
