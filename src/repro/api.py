"""The blessed public interface for running paper experiments.

One entry path instead of three: ``python -m repro.experiments``,
``run_experiments.py``, the examples and the serving daemon all route
through this module — and since the run-lifecycle redesign they all
describe a run the same way, with a :class:`RunRequest`:

    >>> import repro.api as api
    >>> api.list_experiments()[:3]
    ['fig04', 'tab01', 'fig05']
    >>> result = api.run(api.RunRequest(
    ...     "fig17", settings=api.quick_settings(), jobs=4))
    >>> print(result.render())          # or result.to_json(), .to_csv()

Execution goes through the parallel, cache-aware, fault-tolerant
engine (:mod:`repro.experiments.engine`): work fans out over ``jobs``
worker processes, every simulation point is memoised in a
content-addressed on-disk cache, and every run journals its progress
so a killed run resumes instead of re-simulating::

    >>> result = api.run(api.RunRequest("fig17", jobs=4))
    >>> # ... the process dies 90% through ...
    >>> token = api.make_runner().last_run_id  # or read it off the journal
    >>> result = api.run(api.RunRequest("fig17", jobs=4, resume=token))

Pass ``cache=False`` to force fresh simulation, or a ``cache_dir`` to
relocate the store (default: ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
Retry/timeout policy, fault injection for chaos tests, and resume
tokens are all fields on :class:`RunRequest` — see
:mod:`repro.experiments.lifecycle` for the field-by-field contract.

**Deprecated paths.**  The pre-redesign kwarg entry points —
:func:`run_experiment` and :func:`run_all` — still work but are thin
shims over :func:`run`: they build the equivalent :class:`RunRequest`
and emit a :class:`DeprecationWarning`.  New code should construct
:class:`RunRequest` directly.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Union

from repro.experiments import REGISTRY, SCENARIOS
from repro.experiments.cache import ResultCache
from repro.experiments.engine import Experiment, RetryPolicy, Runner
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import (
    RunRequest,
    build_runner,
    execute,
    execute_all,
    resolve_jobs,
)
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.scenarios.executor import adhoc_sweep_spec
from repro.scenarios.spec import ScenarioSpec, SweepAxis, spec_digest

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RunRequest",
    "Runner",
    "ScenarioSpec",
    "SweepAxis",
    "adhoc_sweep_spec",
    "default_settings",
    "fsck_store",
    "gc_store",
    "get_experiment",
    "get_scenario",
    "inspect_run",
    "list_experiments",
    "list_scenarios",
    "make_runner",
    "make_server",
    "quick_settings",
    "run",
    "run_all",
    "run_experiment",
    "settings_from_dict",
    "spec_digest",
    "version",
]


def version() -> str:
    """The package version, from installed metadata when available.

    Falls back to ``repro.__version__`` for source-tree runs
    (``PYTHONPATH=src``) where no distribution metadata exists.
    """
    try:
        from importlib.metadata import version as metadata_version

        return metadata_version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def settings_from_dict(overrides=None, quick: bool = False) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from a JSON-decoded mapping.

    The wire form used by the serving layer's experiment endpoint;
    see :meth:`ExperimentSettings.from_dict` for the accepted keys.
    """
    return ExperimentSettings.from_dict(overrides, quick=quick)


def make_server(config=None, **overrides):
    """A configured :class:`repro.serve.ReproServer` (not yet started).

    ``overrides`` are :class:`repro.serve.ServeConfig` fields; pass a
    ready config instead to reuse one.  Imported lazily so plain
    experiment runs never pay for the serving stack.
    """
    from repro.serve import ReproServer, ServeConfig

    if config is None:
        config = ServeConfig(**overrides)
    elif overrides:
        raise ValueError("give a ServeConfig or field overrides, not both")
    return ReproServer(config)


def list_experiments() -> List[str]:
    """Every runnable experiment id, in paper order."""
    return list(REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    """The :class:`Experiment` registered under ``experiment_id``."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        ) from None


def list_scenarios() -> Dict[str, str]:
    """Registered scenario ids mapped to their one-line descriptions."""
    return {scenario_id: spec.description
            for scenario_id, spec in SCENARIOS.items()}


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """The :class:`ScenarioSpec` registered under ``scenario_id``.

    Specs are pure data: serialize with ``to_json()``, tweak the dict,
    rebuild with ``ScenarioSpec.from_dict`` and run the variant via
    ``run(RunRequest(spec=...))``.
    """
    try:
        return SCENARIOS[scenario_id]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(
            f"unknown scenario {scenario_id!r}; known ids: {known}"
        ) from None


def default_settings(**overrides) -> ExperimentSettings:
    """Paper-scale settings (32 MB stand-in, 8 windows, full suite)."""
    return ExperimentSettings(**overrides)


def quick_settings(**overrides) -> ExperimentSettings:
    """CI/bench scale (16 MB, 2 windows, 9 benchmarks)."""
    return ExperimentSettings.quick(**overrides)


def make_runner(
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    watchdog: bool = False,
    *,
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    journal: bool = True,
    span_flush_every: Optional[int] = None,
    backend=None,
    workers: Optional[int] = None,
    worker_address: Optional[str] = None,
) -> Runner:
    """A configured engine :class:`Runner`.

    ``jobs=None`` uses every core; ``cache`` accepts ``True`` (default
    location), ``False`` (no caching) or a ready :class:`ResultCache`.
    ``watchdog=True`` runs every job under an invariant watchdog whose
    findings land in the runner's metrics manifest.  ``backend``
    selects the execution vehicle (``"serial"`` | ``"pool"`` |
    ``"cluster"``; default derives from ``jobs``) — a cluster runner
    spawns ``workers`` local workers or binds ``worker_address`` for
    external ones, and should be released with ``Runner.close()``.
    The remaining knobs mirror :class:`RunRequest`'s lifecycle policy
    fields.
    """
    return build_runner(
        jobs=jobs, cache=cache, cache_dir=cache_dir, watchdog=watchdog,
        timeout_s=timeout_s, retry=retry, faults=faults, journal=journal,
        span_flush_every=span_flush_every, backend=backend,
        workers=workers, worker_address=worker_address,
    )


def fsck_store(cache_dir: Optional[os.PathLike] = None, *,
               repair: bool = False) -> dict:
    """Verify every durable artifact under the cache dir.

    Walks cache entries, journals, span stores and the serve-inflight
    snapshot, classifying damage (``truncated`` / ``bit_flipped`` /
    ``wrong_schema`` / ``orphan_tmp``).  With ``repair=True`` damaged
    files are quarantined to ``<cache>/lost+found/`` (JSONL stores
    with intact records are rewritten to just those records) so the
    next run regenerates what was lost.  Returns the report dict the
    ``repro fsck`` CLI prints; ``report["ok"]`` is ``False`` while
    unrepaired damage remains.
    """
    from repro.experiments.cache import default_cache_dir
    from repro.store.fsck import fsck

    root = cache_dir if cache_dir is not None else default_cache_dir()
    return fsck(root, repair=repair)


def gc_store(cache_dir: Optional[os.PathLike] = None, *,
             max_bytes: Optional[int] = None,
             max_age_s: Optional[float] = None,
             keep_runs: Optional[int] = None,
             dry_run: bool = False) -> dict:
    """Apply a retention policy to the durable store.

    Prunes cache entries (by age, then oldest-first to ``max_bytes``),
    run journals and span stores (by age and ``keep_runs``), and stale
    lock files — never touching state referenced by an in-progress
    run's advisory lock.  Returns the sweep report dict the
    ``repro gc`` CLI prints.
    """
    from repro.experiments.cache import default_cache_dir
    from repro.store.gc import GCPolicy, collect

    root = cache_dir if cache_dir is not None else default_cache_dir()
    policy = GCPolicy(max_bytes=max_bytes, max_age_s=max_age_s,
                      keep_runs=keep_runs)
    return collect(root, policy, dry_run=dry_run)


def inspect_run(run_id: str,
                cache_dir: Optional[os.PathLike] = None) -> dict:
    """Everything recorded about one run, as a JSON-able document.

    Joins the run's journal, span store and cached per-job metrics
    into the ``repro inspect`` document (state, job counts, cache hit
    ratio, per-phase breakdown, retries, slowest jobs, critical path,
    timeline).  ``run_id`` is the resume token printed on stderr after
    every cached run (also in ``--json`` output and the serving
    layer's ``X-Repro-Run-Id`` header).  Raises
    :class:`repro.obs.inspect.UnknownRunError` for ids with no journal
    and no span store.
    """
    from repro.experiments.cache import default_cache_dir
    from repro.obs.inspect import inspect_run as _inspect

    root = cache_dir if cache_dir is not None else default_cache_dir()
    return _inspect(root, run_id)


def run(request: RunRequest, *, runner: Optional[Runner] = None) -> ExperimentResult:
    """Run one experiment described by a :class:`RunRequest`.

    The blessed entry point: the CLI, the serving layer and the
    deprecated kwarg shims below all land here.  Pass a shared
    ``runner`` to reuse one cache/manifest across several requests.
    """
    return execute(request, runner=runner)


def _deprecated_kwargs_request(
    experiment_id: str,
    settings: Optional[ExperimentSettings],
    jobs: Optional[int],
    cache: Union[bool, ResultCache],
    cache_dir: Optional[os.PathLike],
    probes,
    watchdog: bool,
) -> RunRequest:
    return RunRequest(
        experiment_id=experiment_id,
        settings=settings,
        jobs=resolve_jobs(jobs, probes),
        cache=cache,
        cache_dir=cache_dir,
        probes=probes,
        watchdog=watchdog,
    )


def run_experiment(
    experiment_id: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[Runner] = None,
    probes=None,
    watchdog: bool = False,
) -> ExperimentResult:
    """Deprecated kwarg shim over :func:`run`.

    .. deprecated::
        Build a :class:`RunRequest` and call :func:`run` instead —
        the request object also carries the resume/retry/timeout
        policy this signature never grew.  Note the ``probes`` rule:
        an instrumented run executes in-process (``jobs`` is coerced
        to ``1``, with a :class:`RuntimeWarning` when that overrides
        an explicit value); per-job metric snapshots survive fan-out
        either way (see ``Runner.metrics_manifest``).
    """
    warnings.warn(
        "repro.api.run_experiment(**kwargs) is deprecated; build a "
        "repro.api.RunRequest and call repro.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    request = _deprecated_kwargs_request(
        experiment_id, settings, jobs, cache, cache_dir, probes, watchdog
    )
    return execute(request, runner=runner)


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    runner: Optional[Runner] = None,
    probes=None,
    watchdog: bool = False,
) -> Dict[str, ExperimentResult]:
    """Deprecated kwarg shim: run every experiment; results keyed by id.

    .. deprecated::
        Use ``repro.experiments.lifecycle.execute_all(RunRequest(...))``
        (or :func:`run` per experiment with a shared ``runner``).  One
        shared :class:`Runner` — honoring ``watchdog``, ``cache_dir``
        and the rest of the policy — executes the whole sweep, so the
        cache and metrics manifest are resolved once, not per call.
    """
    warnings.warn(
        "repro.api.run_all(**kwargs) is deprecated; use "
        "repro.experiments.lifecycle.execute_all(RunRequest(...)) or "
        "repro.api.run() with a shared runner",
        DeprecationWarning,
        stacklevel=2,
    )
    defaults = _deprecated_kwargs_request(
        next(iter(REGISTRY)), settings, jobs, cache, cache_dir, probes, watchdog
    )
    return execute_all(defaults, runner=runner)
