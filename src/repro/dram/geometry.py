"""Rank/chip/bank/row geometry and address decomposition.

The paper's simulated memory (Table II) is 32 GB with 8 chips, 8 banks
and a 4 KB (rank-level) row buffer.  A *logical row* spans the same row
index in all chips of the rank — 4 KB split into eight 512 B *chip
rows*.  An auto-refresh command covers ``rows_per_ar`` consecutive
logical rows of one bank (128 at 32 GB: ``32 GB / 8192 / 8 banks /
4 KB``); the discharged-status table tracks one bit per logical row.

Because every reported metric is a ratio against the conventional
baseline, the model can run with far fewer rows than 32 GB as long as
the *ratios* are preserved — rows per AR command, chips, banks, row
size.  :meth:`DramGeometry.scaled` builds such configurations.

Address decomposition maps a line-granularity physical address to
``(bank, row, line-in-row)`` with rows interleaved round-robin across
banks (consecutive rows land in different banks), the mapping the paper
inherits from its DRAMSim2 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class DramGeometry:
    """Structural parameters of one DRAM rank.

    Attributes mirror Table II; ``rows_per_bank`` is the scaling knob.
    """

    num_chips: int = 8
    num_banks: int = 8
    rows_per_bank: int = 1024
    row_bytes: int = 4096
    line_bytes: int = 64
    word_bytes: int = 8
    rows_per_ar: int = 128
    cell_interleave: int = 512

    def __post_init__(self):
        if self.row_bytes % (self.num_chips * self.word_bytes) != 0:
            raise ValueError("row size must split evenly over chips and words")
        if self.line_bytes % self.word_bytes != 0:
            raise ValueError("line size must be a multiple of the word size")
        if self.row_bytes % self.line_bytes != 0:
            raise ValueError("row size must be a multiple of the line size")
        if self.rows_per_bank % self.rows_per_ar != 0:
            raise ValueError("rows_per_bank must be a multiple of rows_per_ar")
        if self.rows_per_ar % self.num_chips != 0:
            raise ValueError(
                "rows_per_ar must be a multiple of num_chips so rotation "
                "blocks do not straddle AR sets"
            )
        if (self.line_bytes // self.word_bytes) % self.num_chips != 0:
            raise ValueError("words per line must spread evenly over chips")

    # ------------------------------------------------------------------
    # derived sizes
    # ------------------------------------------------------------------
    @property
    def lines_per_row(self) -> int:
        """Cachelines in one logical (rank-level) row."""
        return self.row_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def words_per_line_per_chip(self) -> int:
        return self.words_per_line // self.num_chips

    @property
    def chip_row_bytes(self) -> int:
        """Bytes one chip contributes to a logical row."""
        return self.row_bytes // self.num_chips

    @property
    def words_per_chip_row(self) -> int:
        return self.chip_row_bytes // self.word_bytes

    @property
    def total_rows(self) -> int:
        return self.rows_per_bank * self.num_banks

    @property
    def total_bytes(self) -> int:
        return self.total_rows * self.row_bytes

    @property
    def total_lines(self) -> int:
        return self.total_bytes // self.line_bytes

    @property
    def ar_sets_per_bank(self) -> int:
        """Auto-refresh sets (one AR command each) per bank per window."""
        return self.rows_per_bank // self.rows_per_ar

    @property
    def page_bytes(self) -> int:
        """OS page size; one 4 KB page == one logical row by default."""
        return 4096

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_config(cls) -> "DramGeometry":
        """The full 32 GB Table II geometry (do not allocate its content!)."""
        rows_per_bank = (32 << 30) // 4096 // 8
        return cls(rows_per_bank=rows_per_bank)

    @classmethod
    def scaled(cls, total_bytes: int, **overrides) -> "DramGeometry":
        """Geometry with the paper's ratios at a reduced capacity.

        ``total_bytes`` must give a whole number of AR sets per bank
        (i.e. be a multiple of ``num_banks * rows_per_ar * row_bytes``,
        4 MB with the defaults).
        """
        rows_per_ar = overrides.pop("rows_per_ar", 128)
        probe = cls(rows_per_bank=rows_per_ar, rows_per_ar=rows_per_ar,
                    **overrides)
        denom = probe.num_banks * probe.row_bytes * rows_per_ar
        if total_bytes % denom != 0:
            raise ValueError(f"total_bytes must be a multiple of {denom}")
        rows_per_bank = total_bytes // (probe.num_banks * probe.row_bytes)
        return cls(
            rows_per_bank=rows_per_bank,
            num_chips=probe.num_chips,
            num_banks=probe.num_banks,
            row_bytes=probe.row_bytes,
            line_bytes=probe.line_bytes,
            word_bytes=probe.word_bytes,
            rows_per_ar=rows_per_ar,
            cell_interleave=probe.cell_interleave,
        )

    # ------------------------------------------------------------------
    # address decomposition (line granularity)
    # ------------------------------------------------------------------
    def decompose_line(self, line_addr) -> Tuple:
        """Map global line index -> (bank, row, line-in-row).

        Accepts scalars or numpy arrays.  Consecutive logical rows are
        interleaved round-robin across banks.
        """
        line_addr = np.asarray(line_addr)
        if (line_addr < 0).any() or (line_addr >= self.total_lines).any():
            raise ValueError("line address out of range")
        global_row, line_in_row = np.divmod(line_addr, self.lines_per_row)
        row, bank = np.divmod(global_row, self.num_banks)
        return bank, row, line_in_row

    def compose_line(self, bank, row, line_in_row):
        """Inverse of :meth:`decompose_line`."""
        bank = np.asarray(bank)
        row = np.asarray(row)
        line_in_row = np.asarray(line_in_row)
        if (bank < 0).any() or (bank >= self.num_banks).any():
            raise ValueError("bank out of range")
        if (row < 0).any() or (row >= self.rows_per_bank).any():
            raise ValueError("row out of range")
        if (line_in_row < 0).any() or (line_in_row >= self.lines_per_row).any():
            raise ValueError("line-in-row out of range")
        return (row * self.num_banks + bank) * self.lines_per_row + line_in_row

    def decompose_byte(self, byte_addr) -> Tuple:
        """Map byte address -> (bank, row, line-in-row, byte-in-line)."""
        byte_addr = np.asarray(byte_addr)
        line_addr, offset = np.divmod(byte_addr, self.line_bytes)
        bank, row, line_in_row = self.decompose_line(line_addr)
        return bank, row, line_in_row, offset

    def ar_set_of_row(self, row) -> np.ndarray:
        """AR set index covering a (bank-local) row."""
        return np.asarray(row) // self.rows_per_ar

    def rows_of_ar_set(self, ar_set: int) -> np.ndarray:
        """Bank-local rows covered by AR set ``ar_set`` (ascending)."""
        if not 0 <= ar_set < self.ar_sets_per_bank:
            raise ValueError("AR set out of range")
        start = ar_set * self.rows_per_ar
        return np.arange(start, start + self.rows_per_ar)
