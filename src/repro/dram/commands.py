"""Command-level DRAM timing model (the DRAMSim2-ish substrate).

The refresh engine counts *what* is refreshed; this module models *when*
commands may legally issue.  It implements the JEDEC-style constraints
of Table II for a single rank:

* ``tRCD`` — ACT -> column command (RD/WR) to the same bank;
* ``tRAS`` — ACT -> PRE to the same bank;
* ``tRP``  — PRE -> ACT to the same bank (derived: tRC - tRAS);
* ``tRC``  — ACT -> ACT to the same bank;
* ``tRRD`` — ACT -> ACT to *different* banks;
* ``tFAW`` — at most four ACTs per rolling tFAW window (rank);
* ``tRFC`` — REF -> any command to the refreshed scope.

:class:`CommandTimer` validates and timestamps a command stream (used
by tests as a protocol checker); :class:`BankTimingState` exposes the
earliest legal issue time so a scheduler can plan.  Latencies feed the
bandwidth model: the row-buffer-aware access latency of a demand read
is what the refresh engine's skipping shortens in practice.
"""

from __future__ import annotations

import collections
import enum
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.dram.timing import TimingParams


class Command(enum.Enum):
    """DRAM commands relevant to the model."""

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"  # per-bank auto refresh


class TimingViolation(Exception):
    """A command was issued before its earliest legal time."""


@dataclass
class IssuedCommand:
    command: Command
    bank: int
    row: Optional[int]
    time_ns: float


@dataclass
class BankTimingState:
    """Earliest-legal-time bookkeeping for one bank."""

    last_act_ns: float = float("-inf")
    last_pre_ns: float = float("-inf")
    ref_done_ns: float = float("-inf")
    open_row: Optional[int] = None

    def earliest_act(self, timing: TimingParams) -> float:
        trp = timing.trc_ns - timing.tras_ns
        return max(
            self.last_act_ns + timing.trc_ns,
            self.last_pre_ns + trp,
            self.ref_done_ns,
        )

    def earliest_column(self, timing: TimingParams) -> float:
        if self.open_row is None:
            return float("inf")  # needs an ACT first
        return max(self.last_act_ns + timing.trcd_ns, self.ref_done_ns)

    def earliest_pre(self, timing: TimingParams) -> float:
        if self.open_row is None:
            return max(self.last_pre_ns, self.ref_done_ns)
        return max(self.last_act_ns + timing.tras_ns, self.ref_done_ns)


class CommandTimer:
    """Validates a command stream against the Table II constraints.

    ``issue`` raises :class:`TimingViolation` when a command arrives
    before its earliest legal time; ``earliest`` answers what that time
    is, so a scheduler can plan instead of guessing.
    """

    def __init__(self, timing: TimingParams, num_banks: int = 8):
        self.timing = timing
        self.num_banks = num_banks
        self.banks = [BankTimingState() for _ in range(num_banks)]
        self.last_act_any_ns = float("-inf")
        self._act_times: Deque[float] = collections.deque(maxlen=4)
        self.history: List[IssuedCommand] = []

    # ------------------------------------------------------------------
    def earliest(self, command: Command, bank: int) -> float:
        state = self.banks[bank]
        if command is Command.ACT:
            t = max(state.earliest_act(self.timing),
                    self.last_act_any_ns + self.timing.trrd_ns)
            if len(self._act_times) == 4:
                t = max(t, self._act_times[0] + self.timing.tfaw_ns)
            return t
        if command in (Command.RD, Command.WR):
            return state.earliest_column(self.timing)
        if command is Command.PRE:
            return state.earliest_pre(self.timing)
        if command is Command.REF:
            # per-bank REF needs the bank precharged
            if state.open_row is not None:
                return float("inf")
            return max(state.last_pre_ns, state.ref_done_ns)
        raise ValueError(f"unknown command {command}")

    def issue(self, command: Command, bank: int, time_ns: float,
              row: Optional[int] = None) -> IssuedCommand:
        """Issue a command, enforcing every constraint."""
        if not 0 <= bank < self.num_banks:
            raise ValueError("bank out of range")
        legal = self.earliest(command, bank)
        if time_ns < legal - 1e-9:
            raise TimingViolation(
                f"{command.value} to bank {bank} at {time_ns:.1f} ns; "
                f"earliest legal is {legal:.1f} ns"
            )
        state = self.banks[bank]
        if command is Command.ACT:
            if state.open_row is not None:
                raise TimingViolation(
                    f"ACT to bank {bank} with row {state.open_row} open"
                )
            if row is None:
                raise ValueError("ACT needs a row")
            state.last_act_ns = time_ns
            state.open_row = row
            self.last_act_any_ns = time_ns
            self._act_times.append(time_ns)
        elif command in (Command.RD, Command.WR):
            if row is not None and row != state.open_row:
                raise TimingViolation(
                    f"{command.value} to row {row} but row "
                    f"{state.open_row} is open"
                )
        elif command is Command.PRE:
            state.last_pre_ns = time_ns
            state.open_row = None
        elif command is Command.REF:
            state.ref_done_ns = time_ns + self.timing.trfc_ns
        issued = IssuedCommand(command, bank, row, time_ns)
        self.history.append(issued)
        return issued

    # ------------------------------------------------------------------
    def access_latency_ns(self, bank: int, row: int, time_ns: float) -> float:
        """First-order demand-read latency at ``time_ns``.

        Row-buffer hit: just tRCD-equivalent column access.  Miss with a
        row open: PRE + ACT + RD.  Bank refreshing: wait for tRFC first
        — the component ZERO-REFRESH's skipping removes.
        """
        state = self.banks[bank]
        trp = self.timing.trc_ns - self.timing.tras_ns
        wait = max(0.0, state.ref_done_ns - time_ns)
        if state.open_row == row:
            return wait + self.timing.trcd_ns
        if state.open_row is None:
            return wait + self.timing.trcd_ns + self.timing.trcd_ns
        return wait + trp + self.timing.trcd_ns + self.timing.trcd_ns
