"""Per-bank storage, charge-state derivation and activation bookkeeping.

A :class:`Bank` stores the *bus-level* words of every chip row — the
bits as they travel on the data bus, after the CPU-side value
transformation.  Whether a stored bit corresponds to a charged or
discharged cell depends on the row's cell type (see
:mod:`repro.transform.celltype`): a chip row is *discharged* when all
its stored bits equal the cell type's discharged read value (all 0 for
true-cell rows, all 1 for anti-cell rows).

The bank also keeps, per logical row:

* ``last_refresh`` — the most recent time the row's cells were
  recharged, either by a refresh operation or by a row activation
  (reads and writes open the row through the sense amplifiers, which
  restores the charge — the property Smart Refresh exploits).
* a *dirty* flag — content changed since the discharged status was last
  derived, consumed by the refresh engine when it renews the
  discharged-status table.

The wire-OR discharged detector of Sec. IV-B is modelled by
:meth:`Bank.detect_discharged`, which the refresh engine invokes only
for rows it is refreshing anyway (detection is free during refresh).
"""

from __future__ import annotations

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout
from repro.transform.ebdi import word_dtype


class Bank:
    """One DRAM bank: (rows, chips, lines-per-row, words-per-line-per-chip).

    Parameters
    ----------
    geometry:
        Rank geometry shared by every bank.
    layout:
        Ground-truth true/anti cell layout of this bank's rows.
    index:
        Bank number within the rank (for diagnostics).
    """

    def __init__(self, geometry: DramGeometry, layout: CellTypeLayout, index: int = 0):
        self.geometry = geometry
        self.layout = layout
        self.index = index
        dtype = word_dtype(geometry.word_bytes)
        self._full = dtype.type((1 << (geometry.word_bytes * 8)) - 1)
        self.data = np.zeros(
            (
                geometry.rows_per_bank,
                geometry.num_chips,
                geometry.lines_per_row,
                geometry.words_per_line_per_chip,
            ),
            dtype=dtype,
        )
        # Charge bookkeeping is per (row, chip): with staggered refresh
        # counters the chip slices of one logical row are refreshed at
        # different steps (Sec. IV-C).
        self.last_refresh = np.zeros(
            (geometry.rows_per_bank, geometry.num_chips), dtype=np.float64
        )
        self.dirty = np.ones(geometry.rows_per_bank, dtype=bool)
        self._anti_rows = (
            layout.cell_types(np.arange(geometry.rows_per_bank)).astype(bool)
        )
        self._spared = np.zeros(geometry.rows_per_bank, dtype=bool)
        self.write_count = 0
        self.read_count = 0

    # ------------------------------------------------------------------
    # data access (bus-level words)
    # ------------------------------------------------------------------
    def write_line(self, row: int, line_in_row: int, chip_words: np.ndarray,
                   time_s: float = 0.0) -> None:
        """Store one cacheline's per-chip words into a row.

        ``chip_words`` has shape ``(num_chips, words_per_line_per_chip)``
        — the output of one line slice of
        :meth:`repro.transform.codec.ValueTransformCodec.encode_row`.
        Activating the row recharges it, so ``last_refresh`` advances.
        """
        self.data[row, :, line_in_row, :] = chip_words
        self._touch(row, time_s)
        self.write_count += 1

    def read_line(self, row: int, line_in_row: int, time_s: float = 0.0) -> np.ndarray:
        """Read one cacheline's per-chip words (activation recharges the row)."""
        self._touch_clean(row, time_s)
        self.read_count += 1
        return self.data[row, :, line_in_row, :].copy()

    def write_row(self, row: int, chip_data: np.ndarray, time_s: float = 0.0) -> None:
        """Store a whole logical row: shape (chips, lines_per_row, words)."""
        self.data[row] = chip_data
        self._touch(row, time_s)
        self.write_count += self.geometry.lines_per_row

    def write_line_range(self, row: int, start_line: int, chip_data: np.ndarray,
                         time_s: float = 0.0) -> None:
        """Store a run of lines within a row (partial-row pages).

        ``chip_data`` has shape (chips, n_lines, words-per-line-per-chip).
        """
        n_lines = chip_data.shape[1]
        self.data[row, :, start_line:start_line + n_lines, :] = chip_data
        self._touch(row, time_s)
        self.write_count += n_lines

    def read_row(self, row: int, time_s: float = 0.0) -> np.ndarray:
        """Read a whole logical row (chips, lines_per_row, words)."""
        self._touch_clean(row, time_s)
        self.read_count += self.geometry.lines_per_row
        return self.data[row].copy()

    def write_rows_bulk(self, rows: np.ndarray, chip_data: np.ndarray,
                        time_s: float = 0.0) -> None:
        """Vectorised multi-row write used for workload population."""
        self.data[rows] = chip_data
        self.dirty[rows] = True
        self.last_refresh[rows] = time_s
        self.write_count += len(rows) * self.geometry.lines_per_row

    def _touch(self, row: int, time_s: float) -> None:
        self.dirty[row] = True
        np.maximum(self.last_refresh[row], time_s, out=self.last_refresh[row])

    def _touch_clean(self, row: int, time_s: float) -> None:
        """Row activation without content change (reads recharge too)."""
        np.maximum(self.last_refresh[row], time_s, out=self.last_refresh[row])

    # ------------------------------------------------------------------
    # charge state
    # ------------------------------------------------------------------
    def is_anti_row(self, row: int) -> bool:
        return bool(self._anti_rows[row])

    def spare_row(self, row: int) -> None:
        """Mark a row as used by row sparing; refresh skip is disabled
        for spared rows (paper Sec. IV-B)."""
        self._spared[row] = True

    def detect_discharged(self, rows: np.ndarray) -> np.ndarray:
        """Wire-OR detector: is each logical row fully discharged?

        A logical row counts as discharged only if *every chip's* row
        slice is discharged.  Spared rows always report charged.
        Returns a bool array aligned with ``rows``.
        """
        return self.detect_discharged_per_chip(rows).all(axis=1)

    def detect_discharged_per_chip(self, rows: np.ndarray) -> np.ndarray:
        """Per-(row, chip) discharged status; shape (n, num_chips).

        A chip slice is discharged when every stored bit equals the
        row's discharged read value: 0 for true-cell rows, 1 for
        anti-cell rows.
        """
        rows = np.asarray(rows)
        content = self.data[rows]
        target = np.where(self._anti_rows[rows], self._full, 0).astype(self.data.dtype)
        flat = content.reshape(len(rows), self.geometry.num_chips, -1)
        discharged = (flat == target[:, None, None]).all(axis=2)
        discharged[self._spared[rows]] = False
        return discharged

    # ------------------------------------------------------------------
    # refresh bookkeeping
    # ------------------------------------------------------------------
    def refresh_slices(self, rows: np.ndarray, chips: np.ndarray,
                       time_s: float) -> None:
        """Recharge specific (row, chip) slices (staggered refresh steps)."""
        self.last_refresh[np.asarray(rows), np.asarray(chips)] = time_s

    def refresh_rows(self, rows: np.ndarray, time_s: float) -> None:
        """Recharge whole rows across all chips."""
        self.last_refresh[np.asarray(rows), :] = time_s

    def overdue_slices(self, time_s: float, tret_s: float) -> np.ndarray:
        """(row, chip) index pairs overdue for refresh; shape (n, 2).

        A small relative tolerance absorbs floating-point drift in the
        simulated clock: a slice refreshed exactly one window ago is on
        time, not overdue.
        """
        deadline = tret_s * (1.0 + 1e-9)
        return np.argwhere(time_s - self.last_refresh > deadline)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Copy of all mutable bank state (geometry/layout are config).

        Arrays are copied on capture so one checkpoint can be restored
        multiple times regardless of what the live bank does meanwhile.
        """
        return {
            "data": self.data.copy(),
            "last_refresh": self.last_refresh.copy(),
            "dirty": self.dirty.copy(),
            "spared": self._spared.copy(),
            "write_count": self.write_count,
            "read_count": self.read_count,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output, in place.

        ``np.copyto`` keeps the existing arrays (and every alias a
        controller or tracker may hold) instead of rebinding them.
        """
        np.copyto(self.data, state["data"])
        np.copyto(self.last_refresh, state["last_refresh"])
        np.copyto(self.dirty, state["dirty"])
        np.copyto(self._spared, state["spared"])
        self.write_count = int(state["write_count"])
        self.read_count = int(state["read_count"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bank(index={self.index}, rows={self.geometry.rows_per_bank}, "
            f"chips={self.geometry.num_chips})"
        )
