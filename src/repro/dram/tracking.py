"""Discharged-row tracking hardware (paper Sec. IV-B).

Three structures are modelled:

:class:`NaiveSramTracker`
    The rejected strawman: one status bit per logical row held in a
    DIMM-side SRAM array, updated on *every* memory write.  At 32 GB /
    4 KB rows that is >8.3 M bits — a 1 MB SRAM burning 337.14 mW of
    leakage (CACTI 6.5, 32 nm).  Kept as the cost baseline for the
    tracking ablation.

:class:`DischargedStatusTable`
    ZERO-REFRESH's table: the same one-bit-per-row status, but stored in
    a reserved corner of DRAM itself.  It is only read or written at
    refresh time — one ``rows_per_ar``-bit vector (the paper's 16 B
    buffer for 128 rows) per AR command — so its DRAM traffic is tiny
    and is accounted per access for the energy model.

:class:`AccessBitTable`
    The coarse SRAM filter that makes the DRAM-resident table cheap:
    one bit per AR set records "some row in this set was written since
    its last refresh".  Only 8 KB of SRAM at 32 GB (2.71 mW, 0.076 mm²
    per CACTI).  An AR whose bit is clear trusts the stored status
    vector; an AR whose bit is set refreshes everything, re-derives the
    status with the wire-OR detector, and writes the vector back once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import DramGeometry


@dataclass
class TrackingCosts:
    """Storage footprint of a tracking structure, for the energy model."""

    sram_bits: int = 0
    dram_bits: int = 0

    @property
    def sram_bytes(self) -> float:
        return self.sram_bits / 8

    @property
    def dram_bytes(self) -> float:
        return self.dram_bits / 8


class AccessBitTable:
    """One SRAM bit per (bank, AR set): written-since-last-refresh filter."""

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self._bits = np.zeros(
            (geometry.num_banks, geometry.ar_sets_per_bank), dtype=bool
        )
        self.sets_observed = 0

    def note_write(self, bank: int, row: int) -> None:
        """Record a memory write to ``row`` of ``bank``."""
        self._bits[bank, row // self.geometry.rows_per_ar] = True

    def note_writes(self, banks: np.ndarray, rows: np.ndarray) -> None:
        """Vectorised :meth:`note_write`."""
        sets = np.asarray(rows) // self.geometry.rows_per_ar
        self._bits[np.asarray(banks), sets] = True

    def test_and_clear(self, bank: int, ar_set: int) -> bool:
        """Consume the bit for an AR command (reads then clears it)."""
        self.sets_observed += 1
        value = bool(self._bits[bank, ar_set])
        self._bits[bank, ar_set] = False
        return value

    def peek(self, bank: int, ar_set: int) -> bool:
        return bool(self._bits[bank, ar_set])

    def state_dict(self) -> dict:
        """Checkpointable state: the bit array and its access counter."""
        return {"bits": self._bits.copy(), "sets_observed": self.sets_observed}

    def load_state(self, state: dict) -> None:
        np.copyto(self._bits, state["bits"])
        self.sets_observed = int(state["sets_observed"])

    @property
    def costs(self) -> TrackingCosts:
        """SRAM bits required: one per AR set (8 KB at 32 GB / 8 banks)."""
        return TrackingCosts(sram_bits=self._bits.size)


class DischargedStatusTable:
    """Per-refresh-group discharged status, stored in DRAM.

    The table holds one bit per refresh group (= per logical row); the
    refresh engine reads or writes it in ``rows_per_ar``-bit vectors,
    one DRAM access per AR command, staged through the 16 B charge-state
    register of Fig. 7.  ``reads`` / ``writes`` count those DRAM
    accesses for the energy model.
    """

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        # All rows start unknown/charged: never skip before first derivation.
        self._status = np.zeros(
            (geometry.num_banks, geometry.ar_sets_per_bank, geometry.rows_per_ar),
            dtype=bool,
        )
        self.reads = 0
        self.writes = 0

    def read_vector(self, bank: int, ar_set: int) -> np.ndarray:
        """Fetch the status vector for one AR command (one DRAM read)."""
        self.reads += 1
        return self._status[bank, ar_set].copy()

    def write_vector(self, bank: int, ar_set: int, status: np.ndarray) -> None:
        """Write back a renewed status vector (one DRAM write)."""
        status = np.asarray(status, dtype=bool)
        if status.shape != (self.geometry.rows_per_ar,):
            raise ValueError(
                f"status vector must have {self.geometry.rows_per_ar} bits"
            )
        self.writes += 1
        self._status[bank, ar_set] = status

    def peek(self, bank: int, ar_set: int) -> np.ndarray:
        """Inspect without counting an access (tests/diagnostics)."""
        return self._status[bank, ar_set].copy()

    def discharged_fraction(self) -> float:
        """Fraction of groups currently marked discharged."""
        return float(self._status.mean())

    def state_dict(self) -> dict:
        """Checkpointable state: status bits plus the access counters."""
        return {"status": self._status.copy(), "reads": self.reads,
                "writes": self.writes}

    def load_state(self, state: dict) -> None:
        np.copyto(self._status, state["status"])
        self.reads = int(state["reads"])
        self.writes = int(state["writes"])

    @property
    def costs(self) -> TrackingCosts:
        """DRAM bits consumed (1 MB equivalent at 32 GB) plus the 16 B
        charge-state staging register per rank."""
        return TrackingCosts(
            sram_bits=self.geometry.rows_per_ar,  # the staging register
            dram_bits=self._status.size,
        )


class NaiveSramTracker:
    """Strawman tracker: full per-row status in SRAM, updated per write.

    Every memory write triggers a content check of the written row and
    an SRAM update; ``updates`` counts them.  Functionally it yields the
    same skip decisions as the optimised design, at >100x the SRAM
    leakage (see :mod:`repro.energy.sram`).
    """

    def __init__(self, geometry: DramGeometry):
        self.geometry = geometry
        self._status = np.zeros(
            (geometry.num_banks, geometry.rows_per_bank), dtype=bool
        )
        self.updates = 0

    def note_write(self, bank, row: int, discharged: bool) -> None:
        """Update the row's bit after a write (content already checked)."""
        self._status[bank, row] = discharged
        self.updates += 1

    def is_discharged(self, bank: int, row: int) -> bool:
        return bool(self._status[bank, row])

    def vector(self, bank: int, ar_set: int) -> np.ndarray:
        rows = self.geometry.rows_of_ar_set(ar_set)
        return self._status[bank, rows].copy()

    def set_vector(self, bank: int, ar_set: int, status: np.ndarray) -> None:
        rows = self.geometry.rows_of_ar_set(ar_set)
        self._status[bank, rows] = status

    def state_dict(self) -> dict:
        """Checkpointable state: status bits plus the update counter."""
        return {"status": self._status.copy(), "updates": self.updates}

    def load_state(self, state: dict) -> None:
        np.copyto(self._status, state["status"])
        self.updates = int(state["updates"])

    @property
    def costs(self) -> TrackingCosts:
        """SRAM bits: one per logical row (1 MB at 32 GB)."""
        return TrackingCosts(sram_bits=self._status.size)
