"""Per-bank auto-refresh engine with charge-aware skipping (paper Sec. IV).

The engine walks the refresh schedule of one rank: every bank receives
``ar_sets_per_bank`` auto-refresh commands per retention window, each
covering ``rows_per_ar`` *refresh groups*.

**Staggered refresh counters (Sec. IV-C, Fig. 8).**  Each chip's
internal refresh counter is initialised to its chip number, so at
refresh step ``n`` chip ``j`` refreshes bank-local row::

    block_base(n) + (j + n) mod num_chips,
    block_base(n) = (n // num_chips) * num_chips

A refresh *group* — the chip rows recharged by one step — is therefore
a diagonal across the chips.  Combined with the per-row rotation of the
data-rotation stage (word ``w`` of row ``R`` lives on chip
``(R + w) mod num_chips``), every group covers a single *word position*
of all cachelines it touches: groups are word-homogeneous, so groups of
discharged words are skippable as a unit.

**Skip protocol (Sec. IV-B).**  One status bit per group lives in the
DRAM-resident :class:`~repro.dram.tracking.DischargedStatusTable`; a
per-AR-set bit in the SRAM :class:`~repro.dram.tracking.AccessBitTable`
records intervening writes.

* access bit set -> refresh every group, re-derive the status of all
  covered rows with the wire-OR detector (free during refresh), write
  the vector back to DRAM once (one DRAM write), clear the bit;
* access bit clear -> read the vector (one DRAM read), skip groups
  whose bit says discharged, refresh the rest.

``mode='conventional'`` turns the engine into the DDRx baseline (no
skipping); ``mode='naive'`` consults a per-write-maintained
:class:`~repro.dram.tracking.NaiveSramTracker` instead of the
access-bit protocol (the tracking ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import TimingParams
from repro.dram.tracking import (
    AccessBitTable,
    DischargedStatusTable,
    NaiveSramTracker,
)
from repro.obs.invariants import get_watchdog
from repro.obs.probes import NULL_PROBES

MODES = ("zero-refresh", "conventional", "naive")
POLICIES = ("per-bank", "all-bank")


class RefreshCounters:
    """Per-chip staggered refresh counters (Fig. 8).

    ``staggered=False`` models conventional counters where every chip
    refreshes the same row index at each step.
    """

    def __init__(self, num_chips: int, staggered: bool = True):
        self.num_chips = num_chips
        self.staggered = staggered

    def rows_for_step(self, step: int) -> np.ndarray:
        """Bank-local row refreshed by each chip at ``step``; shape (chips,)."""
        chips = np.arange(self.num_chips)
        if not self.staggered:
            return np.full(self.num_chips, step)
        block_base = (step // self.num_chips) * self.num_chips
        return block_base + (chips + step) % self.num_chips

    def rows_for_steps(self, steps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rows_for_step`; shape (chips, len(steps))."""
        steps = np.asarray(steps)
        if not self.staggered:
            return np.broadcast_to(steps, (self.num_chips, len(steps))).copy()
        chips = np.arange(self.num_chips)[:, None]
        block_base = (steps // self.num_chips) * self.num_chips
        return block_base + (chips + steps) % self.num_chips

    def step_of_row(self, chip: int, row: int) -> int:
        """Refresh step at which ``chip`` recharges ``row`` (inverse map)."""
        if not self.staggered:
            return row
        block_base = (row // self.num_chips) * self.num_chips
        offset = (row - chip) % self.num_chips
        return block_base + offset


@dataclass
class RefreshStats:
    """Counters accumulated by the refresh engine.

    A *group refresh* recharges ``num_chips`` chip rows — the refresh
    work of one logical row, the unit in which the paper reports
    "refresh operations".
    """

    ar_commands: int = 0
    groups_refreshed: int = 0
    groups_skipped: int = 0
    dirty_ars: int = 0
    clean_ars: int = 0
    status_reads: int = 0
    status_writes: int = 0
    windows: int = 0
    rank_busy_groups: int = 0
    """Rank-level busy work in group units.

    Per-bank AR blocks only the target bank, so this equals
    ``groups_refreshed``.  All-bank AR blocks the whole rank until the
    *slowest* bank finishes, so each command contributes
    ``num_banks * max_over_banks(refreshed)`` — the quantity the
    bank-availability model converts into stall time (Sec. IV-A)."""

    @property
    def groups_total(self) -> int:
        return self.groups_refreshed + self.groups_skipped

    def normalized_refresh(self) -> float:
        """Refresh operations relative to the conventional baseline."""
        if self.groups_total == 0:
            return 1.0
        return self.groups_refreshed / self.groups_total

    def reduction(self) -> float:
        """Fraction of refresh operations eliminated."""
        return 1.0 - self.normalized_refresh()

    def normalized_busy(self) -> float:
        """Rank busy time relative to the conventional baseline."""
        if self.groups_total == 0:
            return 1.0
        return self.rank_busy_groups / self.groups_total

    def merged_with(self, other: "RefreshStats") -> "RefreshStats":
        return RefreshStats(
            ar_commands=self.ar_commands + other.ar_commands,
            groups_refreshed=self.groups_refreshed + other.groups_refreshed,
            groups_skipped=self.groups_skipped + other.groups_skipped,
            dirty_ars=self.dirty_ars + other.dirty_ars,
            clean_ars=self.clean_ars + other.clean_ars,
            status_reads=self.status_reads + other.status_reads,
            status_writes=self.status_writes + other.status_writes,
            windows=self.windows + other.windows,
            rank_busy_groups=self.rank_busy_groups + other.rank_busy_groups,
        )

    @classmethod
    def aggregate_concurrent(
        cls, parts: "Sequence[RefreshStats]", windows: int
    ) -> "RefreshStats":
        """Merge stats of refresh domains that ran *simultaneously*.

        Independent domains (DIMM ranks, channels) each simulate the
        same retention windows in parallel, so their counters add but
        their windows overlap: the aggregate covers ``windows`` windows
        of wall time, not the concatenated sum ``merged_with`` would
        report.  Returns a fresh instance; no input is mutated.
        """
        merged = cls()
        for part in parts:
            merged = merged.merged_with(part)
        merged.windows = windows
        return merged


class RefreshEngine:
    """Issues per-bank AR commands and applies charge-aware skipping.

    The engine natively satisfies the :class:`repro.sim.scheme.RefreshScheme`
    protocol: ``run_window`` is the scheme interface, and
    :attr:`capabilities` declares what it needs from a driver.  Plain
    charge-aware engines only observe *writes* (through the device's
    write observers); subclasses that skip on access recency set
    :attr:`wants_access_events` so drivers replay demand reads too.
    """

    wants_access_events = False
    """Whether drivers must replay demand reads as row activations."""

    def __init__(
        self,
        device: DramDevice,
        timing: Optional[TimingParams] = None,
        mode: str = "zero-refresh",
        staggered: bool = True,
        policy: str = "per-bank",
        access_bits: Optional[AccessBitTable] = None,
        status_table: Optional[DischargedStatusTable] = None,
        naive_tracker: Optional[NaiveSramTracker] = None,
        probes=None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        self.policy = policy
        self.probes = probes if probes is not None else NULL_PROBES
        self.watchdog = get_watchdog()
        self.device = device
        self.geometry: DramGeometry = device.geometry
        self.timing = timing or TimingParams()
        self.mode = mode
        self.counters = RefreshCounters(self.geometry.num_chips, staggered)
        self.stats = RefreshStats()
        if mode == "zero-refresh":
            self.access_bits = access_bits or AccessBitTable(self.geometry)
            self.status_table = status_table or DischargedStatusTable(self.geometry)
            device.add_write_observer(self.access_bits.note_write)
            self.naive_tracker = None
        elif mode == "naive":
            self.access_bits = None
            self.status_table = None
            self.naive_tracker = naive_tracker or NaiveSramTracker(self.geometry)
            device.add_write_observer(self._naive_on_write)
        else:
            self.access_bits = None
            self.status_table = None
            self.naive_tracker = None

    # ------------------------------------------------------------------
    @property
    def capabilities(self):
        """This engine's :class:`~repro.sim.scheme.SchemeCapabilities`."""
        from repro.sim.scheme import SchemeCapabilities

        return SchemeCapabilities(
            wants_access_events=self.wants_access_events,
            checkpointable=True,
        )

    # ------------------------------------------------------------------
    # checkpointing (the Checkpointable capability)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Everything needed to resume this engine bit-identically.

        Covers the engine's counters, the device's charge/content state
        and whichever tracking structures the mode carries.  Geometry,
        timing and policy are construction-time config and are recorded
        only to validate the restore target.
        """
        state = {
            "mode": self.mode,
            "policy": self.policy,
            "stats": dict(vars(self.stats)),
            "device": self.device.state_dict(),
        }
        if self.access_bits is not None:
            state["access_bits"] = self.access_bits.state_dict()
        if self.status_table is not None:
            state["status_table"] = self.status_table.state_dict()
        if self.naive_tracker is not None:
            state["naive_tracker"] = self.naive_tracker.state_dict()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`checkpoint_state` output into this engine."""
        if state.get("mode") != self.mode or state.get("policy") != self.policy:
            raise ValueError(
                f"checkpoint is for mode={state.get('mode')!r} "
                f"policy={state.get('policy')!r}, engine is "
                f"mode={self.mode!r} policy={self.policy!r}"
            )
        self.stats = RefreshStats(**state["stats"])
        self.device.load_state(state["device"])
        if self.access_bits is not None:
            self.access_bits.load_state(state["access_bits"])
        if self.status_table is not None:
            self.status_table.load_state(state["status_table"])
        if self.naive_tracker is not None:
            self.naive_tracker.load_state(state["naive_tracker"])

    # ------------------------------------------------------------------
    def _naive_on_write(self, bank: int, row: int) -> None:
        """Naive tracker: re-derive affected status bits on every write.

        A write to one row changes the charge of its slice in every
        chip, touching ``num_chips`` diagonal refresh groups, so the
        naive design has to re-check and update all of them — per
        write.  (This hidden read cost is part of why the paper rejects
        the design; the counter below feeds the ablation.)
        """
        ar_set = row // self.geometry.rows_per_ar
        self.naive_tracker.set_vector(
            bank, ar_set, self.derive_group_status(bank, ar_set)
        )
        self.naive_tracker.updates += 1

    # ------------------------------------------------------------------
    def group_steps(self, ar_set: int) -> np.ndarray:
        """Refresh steps covered by one AR command."""
        start = ar_set * self.geometry.rows_per_ar
        return np.arange(start, start + self.geometry.rows_per_ar)

    def derive_group_status(self, bank: int, ar_set: int) -> np.ndarray:
        """Wire-OR-derived discharged bit per group of the AR set.

        Group ``k`` is discharged iff every chip's covered row slice is
        discharged.  Because groups are diagonals, this indexes the
        per-chip detector output by the staggered row matrix.
        """
        steps = self.group_steps(ar_set)
        rows_matrix = self.counters.rows_for_steps(steps)  # (chips, k)
        set_rows = self.geometry.rows_of_ar_set(ar_set)
        per_chip = self.device.banks[bank].detect_discharged_per_chip(set_rows)
        rel = rows_matrix - set_rows[0]
        chips = np.arange(self.geometry.num_chips)[:, None]
        return per_chip[rel, chips].all(axis=0)

    # ------------------------------------------------------------------
    def process_ar(self, bank: int, ar_set: int, time_s: float,
                   track_busy: bool = True) -> int:
        """Handle one AR command for one bank; returns groups refreshed.

        With the per-bank policy (``track_busy=True``) the command's
        work directly blocks only its bank; the all-bank path calls
        this per bank with ``track_busy=False`` and accounts the
        rank-blocking time itself.
        """
        if self.mode == "conventional":
            refreshed = self._refresh_groups(
                bank, ar_set, np.ones(self.geometry.rows_per_ar, dtype=bool), time_s
            )
        elif self.mode == "naive":
            set_rows = self.geometry.rows_of_ar_set(ar_set)
            bank_obj = self.device.banks[bank]
            if bank_obj.dirty[set_rows].any():
                # Rows whose content predates the tracker (initial
                # population): derive their status from the detector,
                # as the per-write checks would have done.
                self.naive_tracker.set_vector(
                    bank, ar_set, self.derive_group_status(bank, ar_set)
                )
                bank_obj.dirty[set_rows] = False
            group_status = self.naive_tracker.vector(bank, ar_set)
            refreshed = self._refresh_groups(bank, ar_set, ~group_status, time_s)
            skipped = int(group_status.sum())
            self.stats.groups_skipped += skipped
            self.probes.count("refresh.groups_skipped", skipped)
        else:
            refreshed = self._process_zero_refresh(bank, ar_set, time_s)
        self.stats.ar_commands += 1
        self.probes.count("refresh.ar_commands")
        if self.probes.tracing:
            self.probes.event("refresh.ar", bank=bank, ar_set=ar_set,
                              t=time_s, refreshed=refreshed, mode=self.mode)
        if track_busy:
            self.stats.rank_busy_groups += refreshed
        return refreshed

    def _process_zero_refresh(self, bank: int, ar_set: int, time_s: float) -> int:
        set_rows = self.geometry.rows_of_ar_set(ar_set)
        # A set is dirty when a write raised its access bit, or when its
        # rows carry content the table has never described (bank-side
        # dirty flags cover population that happened before this engine
        # attached its write observer).
        dirty = self.access_bits.test_and_clear(bank, ar_set)
        dirty = dirty or bool(self.device.banks[bank].dirty[set_rows].any())
        if dirty:
            # Dirty set: refresh everything, renew the status vector.
            self.stats.dirty_ars += 1
            self.probes.count("refresh.dirty_ars")
            refreshed = self._refresh_groups(
                bank, ar_set, np.ones(self.geometry.rows_per_ar, dtype=bool), time_s
            )
            status = self.derive_group_status(bank, ar_set)
            self.status_table.write_vector(bank, ar_set, status)
            self.stats.status_writes += 1
            self.probes.count("refresh.status_writes")
            if self.probes.tracing:
                self.probes.event("refresh.status_renewal", bank=bank,
                                  ar_set=ar_set, t=time_s,
                                  discharged=int(status.sum()))
            self.device.banks[bank].dirty[set_rows] = False
        else:
            # Clean set: trust the stored vector, skip discharged groups.
            self.stats.clean_ars += 1
            self.probes.count("refresh.clean_ars")
            status = self.status_table.read_vector(bank, ar_set)
            self.stats.status_reads += 1
            self.probes.count("refresh.status_reads")
            refreshed = self._refresh_groups(bank, ar_set, ~status, time_s)
            skipped = int(status.sum())
            self.stats.groups_skipped += skipped
            self.probes.count("refresh.groups_skipped", skipped)
            if self.watchdog.enabled:
                self._watchdog_clean_skip(bank, ar_set, status, ~status,
                                          time_s)
        return refreshed

    def _watchdog_clean_skip(self, bank: int, ar_set: int,
                             status: np.ndarray, refresh_mask: np.ndarray,
                             time_s: float) -> None:
        """Evidence for the clean-path skip invariants (watchdog runs only).

        Called after the groups were refreshed, which is safe because a
        refresh only recharges cells — it never changes stored data, so
        :meth:`derive_group_status` still reflects the pre-refresh truth.
        """
        self.watchdog.check(
            "refresh.no_discharged_refresh",
            not bool((refresh_mask & status).any()),
            bank=bank, ar_set=ar_set, t=round(time_s, 6),
        )
        truth = self.derive_group_status(bank, ar_set)
        self.watchdog.check(
            "refresh.skip_safety",
            not bool((status & ~truth).any()),
            bank=bank, ar_set=ar_set, t=round(time_s, 6),
            marked_discharged=int(status.sum()),
            actually_charged=int((status & ~truth).sum()),
        )

    def _refresh_groups(self, bank: int, ar_set: int, refresh_mask: np.ndarray,
                        time_s: float) -> int:
        """Recharge the chip slices of every group selected by the mask."""
        steps = self.group_steps(ar_set)[refresh_mask]
        if len(steps):
            rows_matrix = self.counters.rows_for_steps(steps)  # (chips, n)
            if self.probes.enabled:
                # per-group charge lifetime: time since the longest-idle
                # chip slice of each group was last recharged (read
                # before refresh_slices overwrites the timestamps)
                chip_col = np.arange(self.geometry.num_chips)[:, None]
                last = self.device.banks[bank].last_refresh[
                    rows_matrix, chip_col
                ]
                self.probes.observe_many(
                    "refresh.row_charge_lifetime_s",
                    time_s - last.min(axis=0),
                )
            chips = np.repeat(
                np.arange(self.geometry.num_chips), rows_matrix.shape[1]
            )
            self.device.banks[bank].refresh_slices(
                rows_matrix.ravel(), chips, time_s
            )
        refreshed = int(refresh_mask.sum())
        self.stats.groups_refreshed += refreshed
        self.probes.count("refresh.groups_refreshed", refreshed)
        return refreshed

    # ------------------------------------------------------------------
    def run_window(self, start_time_s: float = 0.0,
                   write_hook=None) -> RefreshStats:
        """Run one full retention window of AR commands for all banks.

        Commands are evenly spaced: each bank gets one AR per
        ``tRET / ar_sets_per_bank``, with banks offset from each other
        (per-bank refresh).  ``write_hook(t0, t1)``, if given, is called
        before each AR slot with the simulated time span of the slot so
        a driver can inject the memory traffic that falls inside it.

        Returns the stats delta for this window.
        """
        before = RefreshStats(**vars(self.stats))
        geometry = self.geometry
        cadence = self.timing.tret_s / geometry.ar_sets_per_bank
        offset = cadence / geometry.num_banks
        previous = start_time_s
        for ar_set in range(geometry.ar_sets_per_bank):
            if self.policy == "all-bank":
                # One rank-level command: every bank refreshes the set
                # simultaneously; the rank stays blocked until the bank
                # with the most surviving refreshes finishes (Sec. IV-A:
                # per-bank skipping inside an all-bank command needs the
                # slowest bank to complete).
                t = start_time_s + ar_set * cadence
                if write_hook is not None:
                    write_hook(previous, t)
                worst = 0
                for bank in range(geometry.num_banks):
                    refreshed = self.process_ar(bank, ar_set, t,
                                                track_busy=False)
                    worst = max(worst, refreshed)
                self.stats.rank_busy_groups += worst * geometry.num_banks
                previous = t
                continue
            for bank in range(geometry.num_banks):
                t = start_time_s + ar_set * cadence + bank * offset
                if write_hook is not None:
                    write_hook(previous, t)
                self.process_ar(bank, ar_set, t)
                previous = t
        if write_hook is not None:
            write_hook(previous, start_time_s + self.timing.tret_s)
        self.stats.windows += 1
        after = RefreshStats(**vars(self.stats))
        delta = RefreshStats(
            ar_commands=after.ar_commands - before.ar_commands,
            groups_refreshed=after.groups_refreshed - before.groups_refreshed,
            groups_skipped=after.groups_skipped - before.groups_skipped,
            dirty_ars=after.dirty_ars - before.dirty_ars,
            clean_ars=after.clean_ars - before.clean_ars,
            status_reads=after.status_reads - before.status_reads,
            status_writes=after.status_writes - before.status_writes,
            windows=1,
            rank_busy_groups=after.rank_busy_groups - before.rank_busy_groups,
        )
        if self.watchdog.enabled:
            # conservation: every group in the schedule is either
            # refreshed or deliberately skipped, exactly once per window
            expected = (geometry.num_banks * geometry.ar_sets_per_bank
                        * geometry.rows_per_ar)
            self.watchdog.check(
                "refresh.window_conservation",
                delta.groups_total == expected,
                groups_total=delta.groups_total, expected=expected,
                t=round(start_time_s, 6),
            )
        return delta
