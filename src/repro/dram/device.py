"""A DRAM rank: banks plus the bus-level read/write interface.

:class:`DramDevice` owns one :class:`~repro.dram.bank.Bank` per bank and
fans writes out to registered *write observers* — the access-bit table
of the optimised tracking design, or the naive SRAM tracker, depending
on configuration.  The device works purely in the stored-bit domain;
value transformation happens in the memory controller above it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.dram.bank import Bank
from repro.dram.geometry import DramGeometry
from repro.transform.celltype import CellTypeLayout

WriteObserver = Callable[[int, int], None]
"""Callback ``(bank, row)`` invoked after each line or row write."""


class DramDevice:
    """One rank of DRAM built from :class:`DramGeometry`.

    Parameters
    ----------
    geometry:
        Structural parameters.
    layout:
        Ground-truth true/anti cell layout, shared by all banks (the
        block-regular layout of Sec. II-B).  Pass ``layouts`` for
        per-bank variation instead.
    """

    def __init__(
        self,
        geometry: DramGeometry,
        layout: Optional[CellTypeLayout] = None,
        layouts: Optional[Sequence[CellTypeLayout]] = None,
    ):
        self.geometry = geometry
        if layouts is None:
            layout = layout or CellTypeLayout(interleave=geometry.cell_interleave)
            layouts = [layout] * geometry.num_banks
        if len(layouts) != geometry.num_banks:
            raise ValueError("need one layout per bank")
        self.banks: List[Bank] = [
            Bank(geometry, layouts[b], index=b) for b in range(geometry.num_banks)
        ]
        self._write_observers: List[WriteObserver] = []
        self._access_observers: List[WriteObserver] = []

    # ------------------------------------------------------------------
    def add_write_observer(self, observer: WriteObserver) -> None:
        """Register a callback invoked as ``observer(bank, row)`` on writes."""
        self._write_observers.append(observer)

    def add_access_observer(self, observer: WriteObserver) -> None:
        """Register a callback fired on *any* row activation (reads and
        writes) — what access-recency schemes like Smart Refresh see."""
        self._access_observers.append(observer)

    def _notify(self, bank: int, row: int) -> None:
        for observer in self._write_observers:
            observer(bank, row)
        for observer in self._access_observers:
            observer(bank, row)

    def _notify_access(self, bank: int, row: int) -> None:
        for observer in self._access_observers:
            observer(bank, row)

    # ------------------------------------------------------------------
    def write_line(self, bank: int, row: int, line_in_row: int,
                   chip_words: np.ndarray, time_s: float = 0.0) -> None:
        """Write one transformed cacheline (per-chip words) to the array."""
        self.banks[bank].write_line(row, line_in_row, chip_words, time_s)
        self._notify(bank, row)

    def read_line(self, bank: int, row: int, line_in_row: int,
                  time_s: float = 0.0) -> np.ndarray:
        data = self.banks[bank].read_line(row, line_in_row, time_s)
        self._notify_access(bank, row)
        return data

    def write_row(self, bank: int, row: int, chip_data: np.ndarray,
                  time_s: float = 0.0) -> None:
        self.banks[bank].write_row(row, chip_data, time_s)
        self._notify(bank, row)

    def write_line_range(self, bank: int, row: int, start_line: int,
                         chip_data: np.ndarray, time_s: float = 0.0) -> None:
        """Write a run of lines within one row (partial-row pages)."""
        self.banks[bank].write_line_range(row, start_line, chip_data, time_s)
        self._notify(bank, row)

    def read_row(self, bank: int, row: int, time_s: float = 0.0) -> np.ndarray:
        data = self.banks[bank].read_row(row, time_s)
        self._notify_access(bank, row)
        return data

    def populate_rows(self, bank: int, rows: np.ndarray, chip_data: np.ndarray,
                      time_s: float = 0.0, notify: bool = True) -> None:
        """Bulk row fill for workload population.

        ``chip_data`` has shape ``(len(rows), chips, lines, words)``.
        With ``notify=False`` the fill models pre-existing content that
        settled before the measured windows (no access bits raised) —
        the first refresh pass then derives its status from scratch
        because rows start dirty.
        """
        self.banks[bank].write_rows_bulk(rows, chip_data, time_s)
        if notify:
            for row in np.asarray(rows):
                self._notify(bank, int(row))

    # ------------------------------------------------------------------
    @property
    def total_writes(self) -> int:
        return sum(bank.write_count for bank in self.banks)

    @property
    def total_reads(self) -> int:
        return sum(bank.read_count for bank in self.banks)

    def discharged_row_fraction(self) -> float:
        """Fraction of logical rows currently fully discharged."""
        rows = np.arange(self.geometry.rows_per_bank)
        total = 0
        for bank in self.banks:
            total += int(bank.detect_discharged(rows).sum())
        return total / self.geometry.total_rows

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: every bank's mutable state.

        Observers are deliberately *not* serialized — they are wiring,
        re-registered at construction time, and restoring into a live
        device must keep its existing callbacks attached.
        """
        return {"banks": [bank.state_dict() for bank in self.banks]}

    def load_state(self, state: dict) -> None:
        bank_states = state["banks"]
        if len(bank_states) != len(self.banks):
            raise ValueError(
                f"checkpoint has {len(bank_states)} banks, device has "
                f"{len(self.banks)}"
            )
        for bank, bank_state in zip(self.banks, bank_states):
            bank.load_state(bank_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DramDevice(banks={self.geometry.num_banks}, "
            f"rows_per_bank={self.geometry.rows_per_bank})"
        )
