"""Cell decay and data-integrity validation.

A DRAM cell's capacitor leaks: a *charged* cell that is not recharged
within the retention window loses its value, while a *discharged* cell
has nothing to lose — the physical property the whole paper rests on
(Sec. I).  :class:`RetentionTracker` models that decay against the
per-(row, chip) recharge timestamps the banks maintain, and is used by

* integrity tests, proving that ZERO-REFRESH's skipping never lets a
  charged cell go overdue, and
* failure-injection tests, showing that a *broken* tracker (e.g. one
  that skips charged rows) visibly corrupts data in this model.

Decay is applied lazily: :meth:`RetentionTracker.decay` scans for
overdue chip slices and, for each, drives every cell to the discharged
state (stored bits become the row's discharged read value).  Slices
that were already fully discharged decay to themselves — skipping them
is safe by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dram.device import DramDevice


@dataclass
class DecayEvent:
    """A chip slice that went overdue while holding charge (data loss)."""

    bank: int
    row: int
    chip: int
    time_s: float


@dataclass
class DecayReport:
    """Outcome of one decay scan."""

    overdue_slices: int = 0
    corrupted: List[DecayEvent] = field(default_factory=list)

    @property
    def data_loss(self) -> bool:
        return bool(self.corrupted)


class RetentionTracker:
    """Applies capacitor decay to a device and reports integrity."""

    def __init__(self, device: DramDevice, tret_s: float):
        if tret_s <= 0:
            raise ValueError("retention window must be positive")
        self.device = device
        self.tret_s = tret_s

    def overdue(self, time_s: float) -> List[Tuple[int, int, int]]:
        """(bank, row, chip) slices beyond the retention window."""
        result = []
        for bank_idx, bank in enumerate(self.device.banks):
            for row, chip in bank.overdue_slices(time_s, self.tret_s):
                result.append((bank_idx, int(row), int(chip)))
        return result

    def decay(self, time_s: float) -> DecayReport:
        """Decay every overdue slice; report those that held charge.

        Overdue slices are driven to the fully-discharged pattern and
        their timestamps reset (a decayed cell is stable).  A slice that
        contained any charged cell is recorded as corrupted.
        """
        report = DecayReport()
        for bank_idx, bank in enumerate(self.device.banks):
            pairs = bank.overdue_slices(time_s, self.tret_s)
            if not len(pairs):
                continue
            rows = pairs[:, 0]
            per_chip = bank.detect_discharged_per_chip(rows)
            for (row, chip), discharged_row in zip(pairs, per_chip):
                report.overdue_slices += 1
                if not discharged_row[chip]:
                    report.corrupted.append(
                        DecayEvent(bank_idx, int(row), int(chip), time_s)
                    )
                target = bank._full if bank.is_anti_row(int(row)) else 0
                bank.data[int(row), int(chip)] = target
                bank.last_refresh[int(row), int(chip)] = time_s
        return report

    def verify_no_loss(self, time_s: float) -> bool:
        """True when no charged slice is overdue at ``time_s``."""
        for bank_idx, bank in enumerate(self.device.banks):
            pairs = bank.overdue_slices(time_s, self.tret_s)
            if not len(pairs):
                continue
            rows = pairs[:, 0]
            per_chip = bank.detect_discharged_per_chip(rows)
            for (row, chip), discharged_row in zip(pairs, per_chip):
                if not discharged_row[chip]:
                    return False
        return True
