"""Structural DRAM model for ZERO-REFRESH (paper Secs. II and IV).

The model is bit-accurate where it matters for the paper's claims:

* :mod:`repro.dram.timing` — retention window, refresh cadence
  (tREFI / tRFC) and the Table II timing/current parameters, including
  the normal (64 ms) and extended (32 ms) temperature modes.
* :mod:`repro.dram.geometry` — rank/chip/bank/row/line geometry and
  address decomposition; refresh-set and rotation-block layout.
* :mod:`repro.dram.bank` — per-bank storage of bus-level (stored-bit)
  words, per-chip-row charge state derivation, and retention
  timestamps.
* :mod:`repro.dram.device` — a rank of banks with the read/write
  interface used by the memory controller.
* :mod:`repro.dram.refresh` — the per-bank auto-refresh engine with
  staggered per-chip refresh counters (Fig. 8) and charge-aware skip.
* :mod:`repro.dram.tracking` — the discharged-status table (stored in
  DRAM) plus the coarse SRAM access-bit table (Sec. IV-B), and the
  naive all-SRAM tracker used as the cost baseline.
* :mod:`repro.dram.retention` — cell decay and data-integrity checking
  used by the failure-injection tests.
"""

from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandTimer, TimingViolation
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshCounters, RefreshEngine
from repro.dram.retention import RetentionTracker
from repro.dram.timing import TemperatureMode, TimingParams
from repro.dram.variation import RetentionProfile, VrtProcess
from repro.dram.tracking import (
    AccessBitTable,
    DischargedStatusTable,
    NaiveSramTracker,
)

__all__ = [
    "AccessBitTable",
    "Bank",
    "Command",
    "CommandTimer",
    "RetentionProfile",
    "TimingViolation",
    "VrtProcess",
    "DischargedStatusTable",
    "DramDevice",
    "DramGeometry",
    "NaiveSramTracker",
    "RefreshCounters",
    "RefreshEngine",
    "RetentionTracker",
    "TemperatureMode",
    "TimingParams",
]
