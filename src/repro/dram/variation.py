"""Retention-time variation and VRT (paper Secs. I, II-D).

Retention-aware schemes (VRA, RAIDR) exploit that only a tiny fraction
of cells retain for barely 64 ms while the vast majority last much
longer.  Their Achilles heel is *Variable Retention Time* (VRT): cells
spontaneously toggle between a long- and a short-retention state
(metastable traps), so a retention profile measured once goes stale —
the criticism the paper levels at this line of work (and the reason
AVATAR continuously scrubs).

This module provides the physical substrate both for the RAIDR baseline
and for the VRT-risk analysis:

* :class:`RetentionProfile` — per-row retention times.  Following the
  measurement literature, the *cell* tail is log-normal with a small
  weak-cell population; a row's retention is its weakest cell's, which
  concentrates rows near the guardband while leaving most comfortably
  above it.
* :class:`VrtProcess` — a Poisson process of per-row VRT flips; a flip
  re-draws the row's retention, possibly dropping a "strong" row below
  the period its bin guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class RetentionProfile:
    """Per-row retention times (seconds) of one memory."""

    row_retention_s: np.ndarray

    def __post_init__(self):
        if (self.row_retention_s <= 0).any():
            raise ValueError("retention times must be positive")

    def __len__(self) -> int:
        return len(self.row_retention_s)

    @property
    def weak_fraction(self) -> float:
        """Fraction of rows below 2x the 64 ms base period."""
        return float((self.row_retention_s < 0.128).mean())

    def rows_below(self, period_s: float) -> np.ndarray:
        """Rows whose retention cannot sustain ``period_s``."""
        return np.flatnonzero(self.row_retention_s < period_s)

    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        num_rows: int,
        cells_per_row: int = 32768,
        median_cell_s: float = 30.0,
        sigma: float = 0.6,
        weak_cell_fraction: float = 2e-7,
        weak_scale_s: float = 0.15,
        rng: Optional[np.random.Generator] = None,
        floor_s: float = 0.064,
    ) -> "RetentionProfile":
        """Draw a profile with a realistic weak-cell tail.

        The bulk cell population is log-normal (median ~10 s); a rare
        exponential weak population models the short-retention tail the
        64 ms standard guards against.  A row's retention is the
        minimum over its cells, computed via the closed-form minimum of
        the mixture rather than materialising every cell.  ``floor_s``
        asserts the standard guarantee: no row below 64 ms ships.
        """
        rng = rng or np.random.default_rng()
        # P(row has >=1 weak cell) with per-cell prob p:
        p_weak_row = 1.0 - (1.0 - weak_cell_fraction) ** cells_per_row
        has_weak = rng.random(num_rows) < p_weak_row
        # Bulk: minimum of many lognormals ~ left tail; sample via the
        # probability-integral transform of the min: U^(1/n) quantile.
        u = rng.random(num_rows) ** (1.0 / cells_per_row)
        from scipy import stats

        bulk_min = stats.lognorm.ppf(1.0 - u, s=sigma,
                                     scale=median_cell_s)
        weak = floor_s + rng.exponential(weak_scale_s, size=num_rows)
        retention = np.where(has_weak, np.minimum(weak, bulk_min), bulk_min)
        return cls(row_retention_s=np.maximum(retention, floor_s))


class VrtProcess:
    """Poisson VRT flips re-drawing per-row retention over time."""

    def __init__(self, profile: RetentionProfile,
                 flips_per_row_per_hour: float = 1e-4,
                 rng: Optional[np.random.Generator] = None):
        if flips_per_row_per_hour < 0:
            raise ValueError("flip rate cannot be negative")
        self.retention_s = profile.row_retention_s.copy()
        self.rate_per_s = flips_per_row_per_hour / 3600.0
        self.rng = rng or np.random.default_rng()
        self.total_flips = 0

    def advance(self, dt_s: float) -> np.ndarray:
        """Advance time; returns the rows that flipped.

        A flipped row re-draws retention from the weak-tail regime with
        probability 1/2 (trap captured) or relaxes back to a strong
        value — the two-state telegraph behaviour observed in VRT
        studies.
        """
        p_flip = 1.0 - np.exp(-self.rate_per_s * dt_s)
        flipped = np.flatnonzero(self.rng.random(len(self.retention_s)) < p_flip)
        if len(flipped):
            to_weak = self.rng.random(len(flipped)) < 0.5
            weak_vals = 0.064 + self.rng.exponential(0.15, size=len(flipped))
            strong_vals = self.rng.lognormal(np.log(5.0), 0.8,
                                             size=len(flipped))
            self.retention_s[flipped] = np.where(
                to_weak, weak_vals, np.maximum(strong_vals, 0.064)
            )
            self.total_flips += len(flipped)
        return flipped

    def unsafe_rows(self, assigned_period_s: np.ndarray) -> np.ndarray:
        """Rows whose *current* retention is below their refresh period."""
        return np.flatnonzero(self.retention_s < assigned_period_s)
