"""DRAM timing, temperature modes and Table II parameters.

The refresh cadence follows Sec. II-C of the paper: the full capacity
must be refreshed once per retention window ``tRET`` (64 ms at normal
temperature, 32 ms above 85 C), split over ``AR_COMMANDS_PER_WINDOW`` =
8192 auto-refresh commands, one every ``tREFI = tRET / 8192``
(7.8 us at 64 ms).  Each command keeps the target busy for ``tRFC``.

Current (IDD) parameters come straight from Table II and feed the
Micron-calculator-style power model in :mod:`repro.energy.dram_power`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

AR_COMMANDS_PER_WINDOW = 8192
"""Auto-refresh commands per retention window (DDRx standard)."""


class TemperatureMode(enum.Enum):
    """Operating temperature range and the matching retention window."""

    NORMAL = "normal"  # <= 85 C, tRET = 64 ms
    EXTENDED = "extended"  # > 85 C, tRET = 32 ms

    @property
    def tret_s(self) -> float:
        """Retention window in seconds (paper Sec. II-C)."""
        return 0.064 if self is TemperatureMode.NORMAL else 0.032

    @classmethod
    def parse(cls, value) -> "TemperatureMode":
        """The mode named by ``value`` (mode, name or value string).

        The one blessed wire-to-enum path: settings overrides, scenario
        specs and CLI ``--set``/``--axis`` values all resolve
        temperatures here, so an invalid name fails the same way
        everywhere — a ``ValueError`` listing the valid mode names.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            names = ", ".join(mode.name for mode in cls)
            raise ValueError(
                f"unknown temperature {value!r}; valid TemperatureMode "
                f"names: {names} (case-insensitive)"
            ) from None


@dataclass(frozen=True)
class CurrentParams:
    """DDR4 IDD currents in mA (Table II)."""

    idd0: float = 23.0  # one-bank activate-precharge
    idd1: float = 30.0  # one-bank activate-read-precharge
    idd2p: float = 7.0  # precharge power-down standby
    idd2n: float = 12.0  # precharge standby
    idd3n: float = 8.0  # active standby (Table II lists IDD3)
    idd4w: float = 58.0  # burst write
    idd4r: float = 60.0  # burst read
    idd5: float = 120.0  # burst refresh
    idd6: float = 8.0  # self refresh
    idd7: float = 105.0  # bank interleave read

    vdd: float = 1.2  # DDR4 supply voltage (V)


@dataclass(frozen=True)
class TimingParams:
    """Memory timing in nanoseconds (Table II) plus the refresh cadence.

    ``trfc_ns`` is the per-command refresh busy time.  Table II lists
    tRFC = 28 ns for the simulated per-bank refresh configuration; real
    all-bank DDR4 values (260-550 ns depending on density) are used by
    the capacity sweep in :mod:`repro.energy.dram_power`.
    """

    tras_ns: float = 28.0
    trcd_ns: float = 11.0
    trrd_ns: float = 5.0
    tfaw_ns: float = 24.0
    trfc_ns: float = 28.0
    trc_ns: float = 39.0  # tRAS + tRP
    clock_ghz: float = 1.2  # DDR4-2400 -> 1.2 GHz command clock
    temperature: TemperatureMode = TemperatureMode.EXTENDED
    currents: CurrentParams = field(default_factory=CurrentParams)

    @property
    def tret_s(self) -> float:
        """Retention window (seconds) for the current temperature mode."""
        return self.temperature.tret_s

    @property
    def trefi_s(self) -> float:
        """Interval between auto-refresh commands (seconds)."""
        return self.tret_s / AR_COMMANDS_PER_WINDOW

    @property
    def trefi_ns(self) -> float:
        return self.trefi_s * 1e9

    def per_bank_trefi_s(self, num_banks: int) -> float:
        """Per-bank AR cadence: commands arrive ``num_banks`` x as often
        (paper Sec. II-C, per-bank refresh)."""
        return self.trefi_s / num_banks

    def with_temperature(self, temperature: TemperatureMode) -> "TimingParams":
        """Copy with a different temperature mode."""
        return TimingParams(
            tras_ns=self.tras_ns,
            trcd_ns=self.trcd_ns,
            trrd_ns=self.trrd_ns,
            tfaw_ns=self.tfaw_ns,
            trfc_ns=self.trfc_ns,
            trc_ns=self.trc_ns,
            clock_ghz=self.clock_ghz,
            temperature=temperature,
            currents=self.currents,
        )
