"""``repro worker``: connect to a coordinator and run its jobs.

One process, one job at a time.  The loop is: ``hello`` → ``welcome``
→ (``job`` → ``result``/``error``)* → ``shutdown``/EOF.  A daemon
thread heartbeats at the coordinator's advertised cadence so a
long-running simulation does not look like a dead worker; a lock
serializes heartbeats against result frames on the shared socket.

Jobs run through the same bootstrap as every other backend —
:func:`repro.experiments.worker.run_job_in_worker` — so the probe
snapshot, attempt span and fault semantics are identical to the pool's.
A ``kill`` fault SIGKILLs *this* process mid-job, which is exactly the
live-worker-death the chaos driver and the cluster backend's
requeue/steal path are proven against.

The hello frame carries this worker's code-version fingerprint (the
same one cache keys embed); the coordinator refuses a mismatched
worker at join time, because results computed by different code cached
under the coordinator's content addresses would be silent wrong data —
exactly the corruption class no checksum can catch.

Failed jobs ship an ``error`` frame carrying the exception's type name
and message; the worker itself survives and takes the next lease.
Spans ship back only on success (the coordinator fabricates
failed-attempt spans), keeping cluster span trees byte-identical to
``--jobs 1``.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
from typing import List, Optional

from repro.cluster.protocol import (
    FrameReader,
    decode_payload,
    encode_payload,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.experiments.worker import run_job_in_worker

__all__ = ["main", "serve_forever"]


def _run_one(frame: dict) -> dict:
    """Execute one job frame; build the reply frame."""
    task = frame.get("task")
    try:
        settings = decode_payload(frame["settings"])
        job = decode_payload(frame["job"])
        fault = (decode_payload(frame["fault"])
                 if frame.get("fault") else None)
        outcome = run_job_in_worker(
            settings, job,
            watchdog=bool(frame.get("watchdog")),
            fault=fault,
            span_wire=frame.get("span_wire"),
            attempt=int(frame.get("attempt", 1)),
        )
    except BaseException as exc:  # noqa: BLE001 - ships to the runner
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "type": "error",
            "task": task,
            "error_type": type(exc).__name__,
            "error": str(exc),
        }
    return {"type": "result", "task": task,
            "payload": encode_payload(outcome)}


def _heartbeat_loop(sock: socket.socket, lock: threading.Lock,
                    interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            with lock:
                send_frame(sock, {"type": "heartbeat"})
        except OSError:
            return


def serve_forever(address: str) -> int:
    """Connect to ``address`` and run jobs until shutdown/EOF."""
    family, connect_arg = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.connect(connect_arg)
    lock = threading.Lock()
    stop = threading.Event()
    reader = FrameReader()
    try:
        from repro.experiments.cache import code_version

        with lock:
            send_frame(sock, {
                "type": "hello",
                "pid": os.getpid(),
                "host": socket.gethostname(),
                # the coordinator refuses a fingerprint mismatch:
                # results computed by different code must never be
                # cached under this coordinator's content addresses
                "code_version": code_version(),
            })
        welcome = recv_frame(sock, reader)
        if welcome is None or welcome.get("type") != "welcome":
            print("repro worker: no welcome from coordinator",
                  file=sys.stderr)
            return 1
        interval_s = float(welcome.get("heartbeat_s", 0.2))
        beat = threading.Thread(
            target=_heartbeat_loop, args=(sock, lock, interval_s, stop),
            daemon=True,
        )
        beat.start()
        while True:
            frame = recv_frame(sock, reader)
            if frame is None or frame.get("type") == "shutdown":
                return 0
            if frame.get("type") != "job":
                continue
            reply = _run_one(frame)
            with lock:
                send_frame(sock, reply)
    except OSError:
        # coordinator went away mid-conversation; nothing to clean up —
        # every completed job was already shipped
        return 0
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Join a repro cluster and execute simulation jobs.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="ADDR",
        help="coordinator address: HOST:PORT for TCP, otherwise a "
             "unix socket path",
    )
    args = parser.parse_args(argv)
    return serve_forever(args.connect)


if __name__ == "__main__":  # pragma: no cover - python -m repro.cluster.worker
    sys.exit(main())
