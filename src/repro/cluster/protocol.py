"""The cluster wire protocol: length-prefixed JSON frames.

Every message between coordinator and worker is one *frame*: a 4-byte
big-endian length followed by that many bytes of UTF-8 JSON.  JSON
keeps the envelope debuggable (``socat`` a worker and read it); the
Python-native values that JSON cannot carry — ``ExperimentSettings``,
:class:`~repro.experiments.engine.SimJob`, armed
:class:`~repro.experiments.faults.FaultSpec`\\ s, result tuples — ride
in designated fields as base64-wrapped pickles via
:func:`encode_payload`/:func:`decode_payload`.  Span wire contexts and
attempt numbers are plain JSON already and stay readable.

Frame vocabulary (``type`` field):

=============  =========  ==================================================
type           direction  fields
=============  =========  ==================================================
``hello``      w → c      ``pid``, ``host``
``welcome``    c → w      ``worker_id``, ``heartbeat_s``
``heartbeat``  w → c      (none — receipt renews the lease)
``job``        c → w      ``task``, ``settings``*, ``job``*, ``watchdog``,
                          ``fault``*, ``span_wire``, ``attempt``
``result``     w → c      ``task``, ``payload``* (the 5-tuple
                          ``(result, snapshot, wall_s, pid, spans)``)
``error``      w → c      ``task``, ``error_type``, ``error``
``shutdown``   c → w      (none)
=============  =========  ==================================================

Starred fields are pickle payloads.  Pickle is safe here because both
ends are the same trusted codebase on a private socket — the protocol
is an execution fan-out, not a public API.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "FrameError",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "parse_address",
    "recv_frame",
    "send_frame",
]

_LEN = struct.Struct(">I")

MAX_FRAME_BYTES = 64 << 20
"""Upper bound on one frame; a larger prefix means a corrupt stream."""


class FrameError(ValueError):
    """The byte stream is not a well-formed frame sequence."""


def encode_payload(obj) -> str:
    """An opaque Python value as a JSON-safe string (pickle + base64)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(data: str):
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


def encode_frame(frame: dict) -> bytes:
    """One frame as wire bytes (length prefix + JSON body)."""
    body = json.dumps(frame, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds "
                         f"{MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def send_frame(sock: socket.socket, frame: dict) -> None:
    """Write one frame to a (blocking) socket."""
    sock.sendall(encode_frame(frame))


class FrameReader:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever ``recv`` returned; it hands back every complete
    frame and buffers the remainder — the coordinator's non-blocking
    reads and the worker's blocking reads share this one parser.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        self._buf.extend(data)
        frames: List[dict] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise FrameError(f"frame prefix {length} exceeds "
                                 f"{MAX_FRAME_BYTES}")
            end = _LEN.size + length
            if len(self._buf) < end:
                return frames
            body = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                frame = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
            if not isinstance(frame, dict) or "type" not in frame:
                raise FrameError(f"frame is not a typed object: {frame!r}")
            frames.append(frame)


def recv_frame(sock: socket.socket,
               reader: Optional[FrameReader] = None) -> Optional[dict]:
    """Block until one frame arrives; ``None`` on clean EOF.

    With a shared ``reader``, bytes beyond the first frame stay
    buffered for the next call.
    """
    reader = reader if reader is not None else FrameReader()
    pending = reader.feed(b"")
    while not pending:
        data = sock.recv(65536)
        if not data:
            return None
        pending = reader.feed(data)
    # feed() drained the buffer into `pending`; push extras back
    frame = pending[0]
    for extra in pending[1:]:
        reader._buf.extend(encode_frame(extra))
    return frame


def parse_address(
    address: Union[str, Path],
) -> Tuple[int, Union[Tuple[str, int], str]]:
    """A user-facing address string as ``(family, connect/bind arg)``.

    ``host:port`` means TCP (``socket.AF_INET``); anything else is a
    unix-domain socket path.  Returns the family and the address value
    ``socket.socket(family).connect/bind`` accepts.
    """
    text = str(address)
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit() and "/" not in host:
        return socket.AF_INET, (host or "127.0.0.1", int(port))
    return socket.AF_UNIX, text
