"""``repro.cluster``: distributed multi-worker execution.

The engine's third :class:`~repro.experiments.backends.ExecutionBackend`:
a coordinator schedules :class:`~repro.experiments.engine.SimJob`\\ s to
N worker processes — spawned locally or connected over TCP/unix sockets
via ``repro worker --connect`` — with lease-based heartbeats and
requeue/work-stealing when a worker dies mid-job.  Results, journals,
merged metrics and span trees come out byte-identical to ``--jobs 1``;
see DESIGN.md's "Distributed execution" section for the protocol and
the determinism argument.

Layout
------
:mod:`repro.cluster.protocol`
    Length-prefixed JSON frames, opaque pickle payloads, addresses.
:mod:`repro.cluster.coordinator`
    The scheduler side: accept workers, lease jobs, detect loss.
:mod:`repro.cluster.worker`
    The worker side: connect, heartbeat, run jobs, ship results.
:mod:`repro.cluster.backend`
    :class:`ClusterBackend`, the engine-facing adapter.
"""

from repro.cluster.backend import ClusterBackend

__all__ = ["ClusterBackend"]
