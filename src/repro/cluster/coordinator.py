"""The coordinator: accept workers, lease jobs out, notice loss.

This is deliberately *transport and liveness only*.  Scheduling policy
— which job goes next, retry/backoff bookkeeping, quarantine — lives in
:class:`repro.cluster.backend.ClusterBackend`, which drives this class
through three calls: :meth:`poll` (pump sockets, collect events),
:meth:`send_job` (lease one task to one worker) and :meth:`drop_worker`
(evict a stuck one).  Events come back as plain tuples:

``("joined", worker_id)``
    A worker completed the hello/welcome handshake.
``("result", worker_id, task, frame)``
    The worker finished its leased task; ``frame`` is the raw
    ``result`` frame (payload still encoded).
``("error", worker_id, task, error_type, message)``
    The task raised; the worker survives and is idle again.
``("lost", worker_id, task_or_None)``
    The worker died (EOF, protocol garbage) or its lease expired —
    no heartbeat within ``lease_timeout_s``.  Its task, if any, needs
    requeueing; that decision is the backend's.

**Leases.**  Every frame a worker sends — results, errors, dedicated
heartbeats — renews its lease.  A worker that goes silent for
``lease_timeout_s`` is presumed dead and evicted; a SIGKILLed worker
is usually caught faster via EOF.  Workers heartbeat from a side
thread, so a long-running job does not starve its own lease.

**Spawn mode.**  With no address, the coordinator listens on a unix
socket in a private temp dir and spawns ``spawn_target`` local workers
(``python -m repro.cluster.worker --connect <sock>``), respawning
replacements while work remains (``cluster.respawns``).  Spawned
processes are matched to their connections by the pid in the hello
frame.  With an address, it binds there and waits for external
``repro worker --connect`` processes — it never spawns, and a lost
external worker is simply gone.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.cluster.protocol import (
    FrameError,
    FrameReader,
    parse_address,
    send_frame,
)
from repro.obs import get_probes

__all__ = ["Coordinator", "WorkerHandle"]

_ACCEPT_BACKLOG = 16


class WorkerHandle:
    """One connected worker: socket, lease clock, current task."""

    def __init__(self, worker_id: int, sock: socket.socket):
        self.worker_id = worker_id
        self.sock: Optional[socket.socket] = sock
        self.reader = FrameReader()
        self.joined = False
        self.last_beat = 0.0
        self.task: Optional[str] = None
        self.pid: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "joined" if self.joined else "connecting"
        return (f"WorkerHandle({self.worker_id}, {state}, "
                f"task={self.task!r})")


class Coordinator:
    """Own the listening socket, the worker fleet and its leases."""

    def __init__(
        self,
        address: Optional[str] = None,
        *,
        spawn_target: int = 0,
        heartbeat_s: float = 0.2,
        lease_timeout_s: Optional[float] = None,
        clock=time.monotonic,
    ):
        if address is None and spawn_target < 1:
            raise ValueError("give an address to bind or a spawn_target")
        self.address = address
        self.spawn_target = spawn_target
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = (
            lease_timeout_s if lease_timeout_s is not None
            else max(10.0 * heartbeat_s, 2.0)
        )
        self._clock = clock
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._workers: Dict[int, WorkerHandle] = {}
        self._procs: List[subprocess.Popen] = []
        self._next_id = 1
        self._spawned_total = 0
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> str:
        """Bind, listen, and (in spawn mode) launch the local fleet.

        Returns the address workers should connect to.
        """
        if self.address is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            self.address = str(Path(self._tmpdir.name) / "cluster.sock")
            family, bind_arg = socket.AF_UNIX, self.address
        else:
            family, bind_arg = parse_address(self.address)
        self._listener = socket.socket(family, socket.SOCK_STREAM)
        if family == socket.AF_INET:
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
        self._listener.bind(bind_arg)
        self._listener.listen(_ACCEPT_BACKLOG)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ,
                                data=None)
        for _ in range(self.spawn_target):
            self._spawn_worker()
        return self.address

    def close(self) -> None:
        """Shut the fleet down: polite frames first, SIGKILL last."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._workers.values()):
            if handle.sock is not None:
                try:
                    send_frame(handle.sock, {"type": "shutdown"})
                except OSError:
                    pass
            self._disconnect(handle)
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for proc in self._procs:
            if proc.poll() is not None:
                continue
            try:
                proc.terminate()
                proc.wait(timeout=2.0)
            except (OSError, subprocess.TimeoutExpired):
                try:
                    proc.kill()
                    proc.wait(timeout=2.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        self._procs.clear()
        self._workers.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # ------------------------------------------------------------------
    # fleet state
    # ------------------------------------------------------------------
    def idle_workers(self) -> List[int]:
        """Joined workers with no leased task, in join order."""
        return [h.worker_id for h in self._workers.values()
                if h.joined and h.sock is not None and h.task is None]

    def worker_count(self) -> int:
        """How many workers have joined and still hold a socket."""
        return sum(1 for h in self._workers.values()
                   if h.joined and h.sock is not None)

    # ------------------------------------------------------------------
    # scheduling interface
    # ------------------------------------------------------------------
    def send_job(self, worker_id: int, frame: dict) -> bool:
        """Lease one job frame to one idle worker.

        Returns ``False`` (and evicts the worker, with no event) when
        the send fails — the caller requeues the task.
        """
        handle = self._workers.get(worker_id)
        if handle is None or handle.sock is None or not handle.joined:
            return False
        try:
            send_frame(handle.sock, frame)
        except OSError:
            self._disconnect(handle)
            get_probes().count("cluster.worker_lost")
            return False
        handle.task = frame["task"]
        return True

    def drop_worker(self, worker_id: int) -> None:
        """Evict a worker (over-budget task) with no event; kill its
        process when it is one we spawned — a worker we cannot reclaim
        must not keep running against the same cache."""
        handle = self._workers.get(worker_id)
        if handle is None:
            return
        pid = handle.pid
        self._disconnect(handle)
        for proc in self._procs:
            if proc.pid == pid and proc.poll() is None:
                try:
                    proc.kill()
                except OSError:
                    pass

    def poll(self, timeout: float) -> List[Tuple]:
        """Pump the sockets once; return the events that surfaced."""
        events: List[Tuple] = []
        if self._selector is None:
            raise RuntimeError("Coordinator.poll before start()")
        for key, _ in self._selector.select(timeout):
            if key.data is None:
                self._accept()
            else:
                self._service(key.data, events)
        self._check_leases(events)
        self._reap_and_respawn()
        return events

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            handle = WorkerHandle(self._next_id, sock)
            self._next_id += 1
            handle.last_beat = self._clock()
            self._workers[handle.worker_id] = handle
            self._selector.register(sock, selectors.EVENT_READ, data=handle)

    def _service(self, handle: WorkerHandle, events: List[Tuple]) -> None:
        try:
            data = handle.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            self._lose(handle, events)
            return
        try:
            frames = handle.reader.feed(data)
        except FrameError:
            self._lose(handle, events)
            return
        handle.last_beat = self._clock()
        for frame in frames:
            kind = frame.get("type")
            if kind == "hello":
                handle.pid = frame.get("pid")
                # Store-integrity gate: cache keys embed the
                # coordinator's code fingerprint, so a worker running
                # different code would cache silently wrong payloads
                # under our keys.  A hello that declares a fingerprint
                # must match; legacy hellos without one still join.
                declared = frame.get("code_version")
                if declared is not None and declared != self._code_version():
                    get_probes().count("cluster.version_skew_rejects")
                    try:
                        send_frame(handle.sock, {
                            "type": "shutdown",
                            "reason": "code version skew",
                        })
                    except OSError:
                        pass
                    self._lose(handle, events)
                    return
                try:
                    send_frame(handle.sock, {
                        "type": "welcome",
                        "worker_id": handle.worker_id,
                        "heartbeat_s": self.heartbeat_s,
                    })
                except OSError:
                    self._lose(handle, events)
                    return
                handle.joined = True
                events.append(("joined", handle.worker_id))
            elif kind == "heartbeat":
                pass  # the recv above already renewed the lease
            elif kind == "result":
                task = frame.get("task")
                handle.task = None
                events.append(("result", handle.worker_id, task, frame))
            elif kind == "error":
                task = frame.get("task")
                handle.task = None
                events.append((
                    "error", handle.worker_id, task,
                    str(frame.get("error_type", "RuntimeError")),
                    str(frame.get("error", "")),
                ))

    @staticmethod
    def _code_version() -> str:
        from repro.experiments.cache import code_version

        return code_version()

    def _lose(self, handle: WorkerHandle, events: List[Tuple]) -> None:
        """EOF/garbage/expiry: evict and surface the orphaned task."""
        if handle.sock is None:
            return
        task = handle.task
        joined = handle.joined
        self._disconnect(handle)
        get_probes().count("cluster.worker_lost")
        if joined:
            events.append(("lost", handle.worker_id, task))

    def _disconnect(self, handle: WorkerHandle) -> None:
        sock = handle.sock
        if sock is None:
            return
        handle.sock = None
        handle.task = None
        if self._selector is not None:
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
        try:
            sock.close()
        except OSError:
            pass
        self._workers.pop(handle.worker_id, None)

    def _check_leases(self, events: List[Tuple]) -> None:
        now = self._clock()
        for handle in list(self._workers.values()):
            if handle.sock is None:
                continue
            if now - handle.last_beat > self.lease_timeout_s:
                get_probes().count("cluster.lease_expiries")
                pid = handle.pid
                self._lose(handle, events)
                for proc in self._procs:
                    if proc.pid == pid and proc.poll() is None:
                        # leaseless but alive: a hung worker we must
                        # not leave running against the same queue
                        try:
                            proc.kill()
                        except OSError:
                            pass

    def _reap_and_respawn(self) -> None:
        """Keep the spawned fleet at target strength while open.

        In spawn mode every worker is one of ``_procs``, so the live
        count is simply the processes still running; a SIGKILLed
        worker is reaped here and replaced (``cluster.respawns``).
        """
        if self._closed or self.spawn_target < 1:
            return
        self._procs = [p for p in self._procs if p.poll() is None]
        for _ in range(self.spawn_target - len(self._procs)):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (f"{src_root}{os.pathsep}{prior}" if prior
                             else src_root)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker",
             "--connect", str(self.address)],
            env=env,
        )
        self._procs.append(proc)
        self._spawned_total += 1
        if self._spawned_total > self.spawn_target:
            get_probes().count("cluster.respawns")
