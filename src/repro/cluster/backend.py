""":class:`ClusterBackend`: the engine-facing side of ``repro.cluster``.

Implements the :class:`~repro.experiments.backends.ExecutionBackend`
protocol over a :class:`~repro.cluster.coordinator.Coordinator`.  The
scheduling loop mirrors the pool backend's bookkeeping call-for-call —
``_armed_fault`` then ``_attempt_args`` per submission, ``_complete`` /
``_note_failure`` / crash-and-quarantine per outcome — which is the
determinism argument: the runner observes the same sequence of
decisions in plan order whatever transport carried the job, so results,
journal lines, merged metrics and span trees come out byte-identical
to ``--jobs 1``.

Worker loss (EOF or lease expiry) is accounted exactly like a pool
``BrokenProcessPool``: the orphaned job takes a worker-crash on its
record (``engine.worker_crashes``) and is requeued
(``cluster.requeues``) — usually onto a *different* worker, counted as
``cluster.steals`` — until :attr:`RetryPolicy.max_worker_crashes`
quarantines it with the same error string the pool would have used.
Remote exceptions are rebuilt with their original type name so the
failure strings the journal and spans record match serial execution
byte for byte.

The coordinator (and its spawned fleet) persists across ``execute``
calls — a sweep reuses warm workers — and is released by
:meth:`close` (``Runner.close()`` / the CLI's ``finally``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.cluster.coordinator import Coordinator
from repro.cluster.protocol import decode_payload, encode_payload
from repro.obs import get_probes

__all__ = ["ClusterBackend", "RemoteJobError"]


class RemoteJobError(RuntimeError):
    """Base for exceptions rebuilt from a worker's ``error`` frame.

    Subclasses are synthesized per incoming type name, so
    ``type(exc).__name__`` — which the retry bookkeeping embeds in
    journal lines and span attributes — matches what an in-process
    execution of the same failure would have produced.
    """


def _rebuild_exception(error_type: str, message: str) -> RemoteJobError:
    name = error_type if error_type.isidentifier() else "RemoteJobError"
    return type(name, (RemoteJobError,), {})(message)


class ClusterBackend:
    """Schedule the pending jobs over a worker fleet."""

    name = "cluster"

    _TICK_S = 0.05

    def __init__(
        self,
        workers: Optional[int] = None,
        address: Optional[str] = None,
        *,
        heartbeat_s: float = 0.2,
        lease_timeout_s: Optional[float] = None,
        stall_timeout_s: float = 60.0,
    ):
        self.workers = max(1, workers if workers is not None else 2)
        self.address = address
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = lease_timeout_s
        self.stall_timeout_s = stall_timeout_s
        self._coordinator: Optional[Coordinator] = None
        self._task_seq = itertools.count(1)

    # ------------------------------------------------------------------
    def _ensure_coordinator(self) -> Coordinator:
        if self._coordinator is None:
            coordinator = Coordinator(
                self.address,
                spawn_target=0 if self.address is not None else self.workers,
                heartbeat_s=self.heartbeat_s,
                lease_timeout_s=self.lease_timeout_s,
            )
            coordinator.start()
            self._coordinator = coordinator
        return self._coordinator

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    # ------------------------------------------------------------------
    def execute(self, runner, settings, pending, results, metrics,
                timings) -> None:
        coordinator = self._ensure_coordinator()
        bus = get_probes()
        jobs = dict(pending)
        settings_payload = encode_payload(settings)
        queue: List[str] = list(jobs)
        not_before: Dict[str, float] = {}
        assigned: Dict[str, Tuple[str, int, float]] = {}
        last_worker: Dict[str, int] = {}
        stolen_candidates: set = set()
        last_progress = runner._clock()

        while queue or assigned:
            now = runner._clock()
            for worker_id in coordinator.idle_workers():
                key = self._pop_ready(queue, not_before, now)
                if key is None:
                    break
                fault = runner._armed_fault(key, in_process=False)
                wire, attempt = runner._attempt_args(key)
                task = str(next(self._task_seq))
                frame = {
                    "type": "job",
                    "task": task,
                    "settings": settings_payload,
                    "job": encode_payload(jobs[key]),
                    "watchdog": bool(runner.watchdog),
                    "fault": encode_payload(fault) if fault else None,
                    "span_wire": wire,
                    "attempt": attempt,
                }
                if not coordinator.send_job(worker_id, frame):
                    # the send itself failed: the attempt never started,
                    # so hand the consumed try back (the pool's dead-
                    # submit path does the same)
                    runner._tries[key] -= 1
                    queue.insert(0, key)
                    continue
                if key in stolen_candidates and \
                        last_worker.get(key) != worker_id:
                    bus.count("cluster.steals")
                stolen_candidates.discard(key)
                last_worker[key] = worker_id
                assigned[task] = (key, worker_id, now)

            bus.gauge("cluster.queue_depth", float(len(queue)))
            bus.gauge("cluster.workers", float(coordinator.worker_count()))

            for event in coordinator.poll(self._TICK_S):
                kind = event[0]
                if kind == "joined":
                    last_progress = runner._clock()
                    continue
                if kind == "result":
                    _, _, task, frame = event
                    entry = assigned.pop(task, None)
                    if entry is None:
                        continue  # a task we already timed out
                    key = entry[0]
                    result, snapshot, wall_s, worker_pid, spans = (
                        decode_payload(frame["payload"])
                    )
                    runner._complete(key, result, snapshot, wall_s,
                                     worker_pid, results, metrics, timings,
                                     spans)
                    last_progress = runner._clock()
                elif kind == "error":
                    _, _, task, error_type, message = event
                    entry = assigned.pop(task, None)
                    if entry is None:
                        continue
                    key = entry[0]
                    exc = _rebuild_exception(error_type, message)
                    backoff = runner._note_failure(key, jobs[key], exc)
                    if backoff is not None:
                        not_before[key] = runner._clock() + backoff
                        queue.append(key)
                    last_progress = runner._clock()
                elif kind == "lost":
                    _, worker_id, task = event
                    entry = assigned.pop(task, None) if task else None
                    if entry is None:
                        continue  # an idle worker died; respawn handles it
                    key = entry[0]
                    runner.stats.worker_crashes += 1
                    bus.count("engine.worker_crashes")
                    runner._record_failed_attempt(
                        key, "worker process crashed")
                    crashes = runner._crashes[key] = (
                        runner._crashes.get(key, 0) + 1
                    )
                    if crashes >= runner.retry.max_worker_crashes:
                        runner._quarantine(
                            key, jobs[key],
                            error=(f"worker process crashed {crashes}x "
                                   f"running this job"),
                        )
                    else:
                        bus.count("cluster.requeues")
                        stolen_candidates.add(key)
                        queue.append(key)
                    last_progress = runner._clock()

            if runner.timeout_s is not None:
                now = runner._clock()
                for task, (key, worker_id, t0) in list(assigned.items()):
                    if now - t0 <= runner.timeout_s:
                        continue
                    del assigned[task]
                    runner.stats.timeouts += 1
                    bus.count("engine.job_timeouts")
                    exc = TimeoutError(
                        f"job exceeded per-job timeout of "
                        f"{runner.timeout_s}s"
                    )
                    backoff = runner._note_failure(key, jobs[key], exc)
                    # the worker is stuck past its budget; evict it (a
                    # spawned replacement joins via the respawn loop)
                    coordinator.drop_worker(worker_id)
                    if backoff is not None:
                        not_before[key] = runner._clock() + backoff
                        queue.append(key)
                    last_progress = runner._clock()

            if runner._clock() - last_progress > self.stall_timeout_s:
                raise RuntimeError(
                    f"cluster made no progress for "
                    f"{self.stall_timeout_s:.0f}s "
                    f"({coordinator.worker_count()} workers connected, "
                    f"{len(queue)} queued, {len(assigned)} assigned)"
                )

        bus.gauge("cluster.queue_depth", 0.0)
        bus.gauge("cluster.workers", float(coordinator.worker_count()))

    @staticmethod
    def _pop_ready(queue: List[str], not_before: Dict[str, float],
                   now: float) -> Optional[str]:
        """The first queued key whose backoff window has passed."""
        for index, key in enumerate(queue):
            if not_before.get(key, 0.0) <= now:
                del queue[index]
                return key
        return None
