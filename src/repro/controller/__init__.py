"""Memory controller: the CPU-side home of ZERO-REFRESH (paper Fig. 7).

The controller sits between the last-level cache and the DRAM device.
Every cacheline that leaves the LLC passes through the value
transformation pipeline on its way to memory, and through the inverse
on its way back:

* :mod:`repro.controller.mapping` — physical-address decomposition into
  (bank, row, line) coordinates and page-to-row mapping for the OS
  model.
* :mod:`repro.controller.memctrl` — :class:`MemoryController`, the
  read/write front end that drives the codec and the device, counting
  EBDI operations for the energy model.
* :mod:`repro.controller.scheduler` — refresh/bandwidth interference
  accounting: how much bank-unavailable time each refresh policy costs,
  feeding the IPC model.
"""

from repro.controller.mapping import AddressMapper
from repro.controller.memctrl import MemoryController
from repro.controller.refresh_scheduling import (
    BaselineRefreshStall,
    ElasticRefreshQueue,
    RefreshPausingModel,
    zero_refresh_stall,
)
from repro.controller.scheduler import BankAvailabilityModel

__all__ = [
    "AddressMapper",
    "BankAvailabilityModel",
    "BaselineRefreshStall",
    "ElasticRefreshQueue",
    "MemoryController",
    "RefreshPausingModel",
    "zero_refresh_stall",
]
