"""Memory controller front end: transformed reads and writes.

:class:`MemoryController` is what the cache hierarchy and the OS model
talk to.  Every write runs the value-transformation pipeline before the
bits reach the device; every read runs the inverse, so the rest of the
system only ever sees original values.  The controller also keeps the
operation counts the energy model needs:

* ``ebdi_ops`` — one per line read *and* write (the EBDI module sits on
  both paths, paper Sec. VI-B);
* line/page read/write counts for DRAM activity power.

Page-level helpers (:meth:`write_page`, :meth:`zero_pages`) exist
because the OS model and workload population work in pages; they use
the codec's bulk interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.controller.mapping import AddressMapper
from repro.dram.device import DramDevice
from repro.obs.invariants import get_watchdog
from repro.obs.probes import NULL_PROBES
from repro.transform.codec import ValueTransformCodec


class MemoryController:
    """Front end combining the codec, the mapper and the device."""

    def __init__(self, device: DramDevice, codec: ValueTransformCodec,
                 mapper: Optional[AddressMapper] = None, probes=None):
        geometry = device.geometry
        if codec.line_bytes != geometry.line_bytes:
            raise ValueError("codec and geometry disagree on line size")
        if codec.num_chips != geometry.num_chips:
            raise ValueError("codec and geometry disagree on chip count")
        self.device = device
        self.codec = codec
        self.geometry = geometry
        self.mapper = mapper or AddressMapper(geometry)
        self.probes = probes if probes is not None else NULL_PROBES
        self.watchdog = get_watchdog()
        self.ebdi_ops = 0
        self.line_reads = 0
        self.line_writes = 0

    # ------------------------------------------------------------------
    # line interface (cacheline granularity)
    # ------------------------------------------------------------------
    def write_line(self, line_addr: int, line: np.ndarray, time_s: float = 0.0) -> None:
        """Transform and store one cacheline.

        ``line`` holds ``words_per_line`` unsigned words (the logical,
        untransformed value).
        """
        bank, row, line_in_row = self.mapper.line_location(line_addr)
        chip_words = self.codec.encode_row(line.reshape(1, -1), int(row))[:, 0, :]
        self.device.write_line(int(bank), int(row), int(line_in_row),
                               chip_words, time_s)
        self.ebdi_ops += 1
        self.line_writes += 1
        self.probes.count("ctrl.ebdi_ops")
        self.probes.count("ctrl.line_writes")

    def read_line(self, line_addr: int, time_s: float = 0.0) -> np.ndarray:
        """Fetch and untransform one cacheline."""
        bank, row, line_in_row = self.mapper.line_location(line_addr)
        chip_words = self.device.read_line(int(bank), int(row), int(line_in_row),
                                           time_s)
        self.ebdi_ops += 1
        self.line_reads += 1
        self.probes.count("ctrl.ebdi_ops")
        self.probes.count("ctrl.line_reads")
        return self.codec.decode_row(chip_words[:, None, :], int(row))[0]

    def write_lines(self, line_addrs: np.ndarray, lines: np.ndarray,
                    time_s: float = 0.0) -> None:
        """Transform and store a batch of cachelines (vectorised).

        ``line_addrs`` is ``(n,)`` and ``lines`` is ``(n, words)``; all
        lines are written at the same simulated time (within-window
        traffic is fed span by span).  The transformation's
        row-independent stages run once over the whole batch.
        """
        line_addrs = np.asarray(line_addrs)
        lines = np.asarray(lines)
        if len(line_addrs) == 0:
            return
        banks, rows, lines_in_row = self.mapper.line_location(line_addrs)
        banks = np.atleast_1d(banks)
        rows = np.atleast_1d(rows)
        lines_in_row = np.atleast_1d(lines_in_row)
        if self.watchdog.enabled:
            # spot-check the codec inverse pair on the batch's first line
            sample = lines[:1]
            row0 = int(rows[0])
            decoded = self.codec.decode_row(
                self.codec.encode_row(sample, row0), row0
            )
            self.watchdog.check(
                "codec.round_trip",
                bool(np.array_equal(decoded, sample)),
                row=row0, t=round(time_s, 6),
            )
        transformed = lines
        if self.codec.stages.ebdi:
            from repro.transform.celltype import CellType

            transformed = self.codec.ebdi.encode(transformed, CellType.TRUE)
        if self.codec.stages.bitplane:
            transformed = self.codec.bitplane.apply(transformed)
        if self.probes.enabled:
            # zero fraction after value transformation (before the
            # celltype complement, which flips anti rows to all-ones):
            # the quantity Sec. V's discharged-row detection feeds on
            self.probes.observe(
                "codec.encoded_zero_fraction",
                float((transformed == 0).mean()),
            )
        if self.codec.stages.celltype_aware:
            anti = self.codec.predictor.predict_anti(rows)
            if anti.any():
                transformed = transformed.copy()
                transformed[anti] = np.invert(transformed[anti])
        rotation = self.codec.rotation
        num_chips = self.geometry.num_chips
        # Word-slot gather table per rotation class (row % num_chips).
        slot_table = np.stack(
            [
                np.stack([rotation.words_of_chip(chip, rot)
                          for chip in range(num_chips)])
                for rot in range(num_chips)
            ]
        )  # (rots, chips, words_per_chip)
        rot_of_row = rows % num_chips if rotation.rotate else np.zeros_like(rows)
        for i in range(len(line_addrs)):
            chip_words = transformed[i, slot_table[int(rot_of_row[i])]]
            self.device.write_line(int(banks[i]), int(rows[i]),
                                   int(lines_in_row[i]), chip_words, time_s)
        self.ebdi_ops += len(line_addrs)
        self.line_writes += len(line_addrs)
        self.probes.count("ctrl.ebdi_ops", len(line_addrs))
        self.probes.count("ctrl.line_writes", len(line_addrs))
        if self.probes.tracing:
            self.probes.event("ctrl.write_batch", n=len(line_addrs), t=time_s)

    # ------------------------------------------------------------------
    # page interface (used by the OS model and workload population)
    # ------------------------------------------------------------------
    def write_page(self, page: int, lines: np.ndarray, time_s: float = 0.0,
                   notify: bool = True) -> None:
        """Write a full page (``lines_per_page`` x ``words_per_line``).

        A page spans one row with 4 KB rows, two with 2 KB rows; each
        backing row gets its slice of the page's lines.
        """
        banks, rows = self._page_location(page)
        lines_per_row = self.geometry.lines_per_row
        offset = int(self.mapper.page_line_offset(page))
        for i, (bank, row) in enumerate(zip(banks, rows)):
            row_lines = lines[i * lines_per_row:(i + 1) * lines_per_row]
            chip_data = self.codec.encode_row(row_lines, int(row))
            if len(row_lines) == lines_per_row and notify:
                self.device.write_row(int(bank), int(row), chip_data, time_s)
            elif len(row_lines) == lines_per_row:
                self.device.populate_rows(int(bank), np.array([row]),
                                          chip_data[None], time_s, notify=False)
            else:
                # Page smaller than the row (8 KB rows): write its slice.
                self.device.write_line_range(int(bank), int(row), offset,
                                             chip_data, time_s)
        self.ebdi_ops += self.geometry.lines_per_page
        self.line_writes += self.geometry.lines_per_page
        self.probes.count("ctrl.ebdi_ops", self.geometry.lines_per_page)
        self.probes.count("ctrl.line_writes", self.geometry.lines_per_page)

    def read_page(self, page: int, time_s: float = 0.0) -> np.ndarray:
        banks, rows = self._page_location(page)
        offset = int(self.mapper.page_line_offset(page))
        parts = []
        for bank, row in zip(banks, rows):
            chip_data = self.device.read_row(int(bank), int(row), time_s)
            decoded = self.codec.decode_row(chip_data, int(row))
            if len(decoded) > self.geometry.lines_per_page:
                decoded = decoded[offset:offset + self.geometry.lines_per_page]
            parts.append(decoded)
        self.ebdi_ops += self.geometry.lines_per_page
        self.line_reads += self.geometry.lines_per_page
        self.probes.count("ctrl.ebdi_ops", self.geometry.lines_per_page)
        self.probes.count("ctrl.line_reads", self.geometry.lines_per_page)
        return np.concatenate(parts, axis=0)

    def _assemble_shared_rows(self, pages: np.ndarray, page_lines: np.ndarray):
        """Merge page batches into full-row batches when rows hold
        several pages.  Returns (anchor_pages, row_lines) where each
        anchor page identifies its row and ``row_lines`` carries the
        row's full line content (absent page slices zero-filled)."""
        ppr = self.mapper.pages_per_row
        lpp = self.geometry.lines_per_page
        row_ids = pages // ppr
        unique_rows = np.unique(row_ids)
        out = np.zeros(
            (len(unique_rows), self.geometry.lines_per_row,
             self.geometry.words_per_line),
            dtype=self.codec.dtype,
        )
        row_pos = {int(r): i for i, r in enumerate(unique_rows)}
        for i, page in enumerate(pages):
            slot = int(page % ppr)
            out[row_pos[int(page // ppr)], slot * lpp:(slot + 1) * lpp] = (
                page_lines[i]
            )
        return unique_rows * ppr, out

    def _page_location(self, page: int):
        """Backing (banks, rows) of one page, always 1-D arrays."""
        banks, rows = self.mapper.page_rows(page)
        return np.atleast_1d(banks), np.atleast_1d(rows)

    def zero_page(self, page: int, time_s: float = 0.0) -> None:
        """OS page cleansing: fill a page with zeros (Sec. III-B)."""
        lines = np.zeros(
            (self.geometry.lines_per_page, self.geometry.words_per_line),
            dtype=self.codec.dtype,
        )
        self.write_page(page, lines, time_s)

    def zero_pages(self, pages: np.ndarray, time_s: float = 0.0) -> None:
        for page in np.asarray(pages).ravel():
            self.zero_page(int(page), time_s)

    # ------------------------------------------------------------------
    # bulk population (initial workload contents)
    # ------------------------------------------------------------------
    def populate_pages(self, pages: np.ndarray, page_lines: np.ndarray,
                       time_s: float = 0.0, notify: bool = False) -> None:
        """Fill many pages at once using the codec's bulk path.

        ``page_lines`` has shape ``(n_pages, lines_per_page,
        words_per_line)``.  With ``notify=False`` (default) the fill
        models content that existed before measurement starts: access
        bits stay clear and the first refresh window derives status from
        the bank-side dirty flags.  EBDI op counts are *not* charged for
        unnotified population.
        """
        pages = np.asarray(pages)
        page_lines = np.asarray(page_lines)
        if self.mapper.pages_per_row > 1:
            # Pages smaller than rows (8 KB rows): assemble full rows,
            # zero-filling row slices whose page is not in this batch
            # (population starts from cleansed memory, so absent slices
            # are zero by definition).
            pages, page_lines = self._assemble_shared_rows(pages, page_lines)
        banks, rows = self.mapper.page_rows(pages)
        banks = np.ravel(np.atleast_1d(banks))
        rows = np.ravel(np.atleast_1d(rows))
        row_lines = page_lines.reshape(
            len(rows), self.geometry.lines_per_row, self.geometry.words_per_line
        )
        encoded = self.codec.encode_rows(row_lines, rows)
        for bank in np.unique(banks):
            idx = np.flatnonzero(banks == bank)
            self.device.populate_rows(int(bank), rows[idx], encoded[idx],
                                      time_s, notify=notify)
        if notify:
            self.ebdi_ops += pages.size * self.geometry.lines_per_page
            self.line_writes += pages.size * self.geometry.lines_per_page
            self.probes.count("ctrl.ebdi_ops",
                              pages.size * self.geometry.lines_per_page)
            self.probes.count("ctrl.line_writes",
                              pages.size * self.geometry.lines_per_page)
