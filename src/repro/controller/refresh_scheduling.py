"""Latency-hiding refresh schedulers (paper Sec. II-D, "other related
work").

Orthogonal to *reducing* refreshes, prior work hides their latency by
choosing *when* to issue them:

* **Elastic Refresh** (Stuecheli et al., MICRO 2010) — postpone an AR
  while demand requests are pending, up to the JEDEC debt limit of 8
  postponed commands, and catch up in idle phases;
* **Refresh Pausing** (Nair et al., HPCA 2013) — abort an in-progress
  AR at a row boundary when a demand request arrives, resume later.

Both leave the refresh *count* unchanged — they trade scheduling
freedom for stall time, whereas ZERO-REFRESH removes the work itself.
:class:`ElasticRefreshQueue` and :class:`RefreshPausingModel` compute
the demand-visible stall per policy from an arrival process, and the
``ext-scheduling`` experiment lines them up against charge-aware
skipping.

The models are first-order/analytical (M/D/1-style collision
accounting), matching the granularity of the IPC model they feed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import AR_COMMANDS_PER_WINDOW, TimingParams

JEDEC_MAX_POSTPONED = 8
"""DDRx allows up to eight AR commands to be postponed (tREFI debt)."""


@dataclass(frozen=True)
class StallReport:
    """Demand-visible refresh stall accounting for one policy."""

    policy: str
    collision_probability: float
    mean_stall_ns: float  # expected stall per demand access

    @property
    def stall_per_access_ns(self) -> float:
        return self.collision_probability * self.mean_stall_ns


class BaselineRefreshStall:
    """Conventional on-schedule AR: every collision waits the residual tRFC."""

    def __init__(self, timing: TimingParams):
        self.timing = timing

    @property
    def trefi_ns(self) -> float:
        return self.timing.tret_s / AR_COMMANDS_PER_WINDOW * 1e9

    def report(self, busy_fraction: Optional[float] = None) -> StallReport:
        duty = (busy_fraction if busy_fraction is not None
                else self.timing.trfc_ns / self.trefi_ns)
        return StallReport(
            policy="conventional",
            collision_probability=duty,
            mean_stall_ns=self.timing.trfc_ns / 2.0,  # residual, uniform
        )


class ElasticRefreshQueue:
    """Elastic Refresh: defer ARs during busy phases, drain when idle.

    A two-state (busy/idle) traffic model: demand arrives in busy
    phases covering ``busy_time_fraction`` of time.  ARs falling in a
    busy phase are postponed (up to the JEDEC debt of 8); with
    sufficient idle time they all drain invisibly, so only the overflow
    beyond the debt limit stalls demand.
    """

    def __init__(self, timing: TimingParams,
                 max_postponed: int = JEDEC_MAX_POSTPONED):
        if max_postponed < 0:
            raise ValueError("max_postponed cannot be negative")
        self.timing = timing
        self.max_postponed = max_postponed
        self.baseline = BaselineRefreshStall(timing)

    def hidden_fraction(self, busy_time_fraction: float,
                        mean_busy_ars: float = 4.0) -> float:
        """Fraction of busy-phase ARs the debt window absorbs.

        With busy phases spanning ``mean_busy_ars`` AR periods on
        average (geometric), the debt of ``max_postponed`` covers the
        whole phase unless the phase runs long: P(phase > debt).
        """
        if not 0.0 <= busy_time_fraction <= 1.0:
            raise ValueError("busy_time_fraction must be in [0, 1]")
        if self.max_postponed == 0:
            return 0.0
        p_continue = 1.0 - 1.0 / mean_busy_ars
        overflow = p_continue**self.max_postponed
        return 1.0 - overflow

    def report(self, busy_time_fraction: float,
               mean_busy_ars: float = 4.0) -> StallReport:
        base = self.baseline.report()
        hidden = self.hidden_fraction(busy_time_fraction, mean_busy_ars)
        # Only ARs that hit a busy phase could stall; the debt hides
        # `hidden` of those entirely.
        collision = base.collision_probability * busy_time_fraction * (
            1.0 - hidden
        )
        return StallReport(
            policy="elastic",
            collision_probability=collision,
            mean_stall_ns=base.mean_stall_ns,
        )


class RefreshPausingModel:
    """Refresh Pausing: abort an in-flight AR at the next row boundary.

    A demand access colliding with an AR waits only until the current
    row's refresh completes (one row interval) instead of the residual
    tRFC; the paused remainder finishes later in idle time.
    """

    def __init__(self, timing: TimingParams, rows_per_ar: int = 128):
        if rows_per_ar < 1:
            raise ValueError("rows_per_ar must be positive")
        self.timing = timing
        self.rows_per_ar = rows_per_ar
        self.baseline = BaselineRefreshStall(timing)

    @property
    def pause_granularity_ns(self) -> float:
        """Worst extra wait: one row's share of the AR burst."""
        return self.timing.trfc_ns / self.rows_per_ar

    def report(self, busy_time_fraction: float = 1.0) -> StallReport:
        base = self.baseline.report()
        return StallReport(
            policy="pausing",
            collision_probability=base.collision_probability
            * busy_time_fraction,
            mean_stall_ns=self.pause_granularity_ns / 2.0,
        )


def zero_refresh_stall(timing: TimingParams,
                       normalized_refresh: float) -> StallReport:
    """ZERO-REFRESH's stall: the busy time itself shrinks."""
    base = BaselineRefreshStall(timing).report()
    return StallReport(
        policy="zero-refresh",
        collision_probability=base.collision_probability
        * normalized_refresh,
        mean_stall_ns=base.mean_stall_ns,
    )
