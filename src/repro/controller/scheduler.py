"""Refresh interference accounting (feeds the IPC model, Fig. 17).

While a bank refreshes it cannot serve demand accesses; the fraction of
time a bank is unavailable is what degrades performance.  With per-bank
auto refresh each bank receives one AR command every
``tREFI_pb = tRET / AR_COMMANDS_PER_WINDOW * num_banks``... precisely:
commands arrive ``num_banks`` times as often but target one bank, so a
*given* bank is busy for ``tRFC`` once per ``tRET /
ar_sets_per_window`` of its own schedule.

ZERO-REFRESH shortens the busy time of an AR command in proportion to
the groups actually refreshed: a command that skips everything still
pays a small fixed cost (the status-vector read), modelled as
``status_overhead_fraction`` of tRFC.

:class:`BankAvailabilityModel` turns refresh statistics into a
bank-unavailability fraction for the baseline and for a measured run,
which :mod:`repro.cpu.core` converts into IPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.refresh import RefreshStats
from repro.dram.timing import AR_COMMANDS_PER_WINDOW, TimingParams


@dataclass(frozen=True)
class BankAvailabilityModel:
    """Computes the unavailable-time fraction a refresh policy imposes.

    ``status_overhead_fraction`` is the residual busy time of a fully
    skipped AR command relative to tRFC (one row read for the status
    vector out of ``rows_per_ar`` row refreshes — about 1/128).
    """

    timing: TimingParams
    num_banks: int = 8
    status_overhead_fraction: float = 1.0 / 128.0

    @property
    def trefi_per_bank_s(self) -> float:
        """Time between two AR commands arriving at the *same* bank."""
        return self.timing.tret_s / AR_COMMANDS_PER_WINDOW

    @property
    def baseline_unavailability(self) -> float:
        """Fraction of time a bank is refresh-busy under conventional AR."""
        return (self.timing.trfc_ns * 1e-9) / self.trefi_per_bank_s

    def unavailability(self, stats: RefreshStats) -> float:
        """Refresh-busy fraction given measured skip statistics.

        Busy time scales with the refreshed-group fraction, plus the
        status overhead on AR commands that consulted the DRAM table.
        """
        if stats.groups_total == 0:
            return self.baseline_unavailability
        # rank_busy_groups reflects the refresh policy: per-bank AR
        # blocks one bank per command, all-bank AR blocks the whole rank
        # until its slowest bank finishes (Sec. IV-A).
        work = (stats.normalized_busy() if stats.rank_busy_groups
                else stats.normalized_refresh())
        if stats.ar_commands:
            overhead = (
                self.status_overhead_fraction
                * (stats.status_reads + stats.status_writes)
                / stats.ar_commands
            )
        else:
            overhead = 0.0
        return self.baseline_unavailability * min(1.0, work + overhead)

    def bandwidth_recovered(self, stats: RefreshStats) -> float:
        """Fraction of total bank time returned to demand accesses."""
        return self.baseline_unavailability - self.unavailability(stats)
