"""Physical-address mapping between the OS view and DRAM coordinates.

The OS allocates 4 KB pages; with the Table II geometry one page is
exactly one logical row, and consecutive pages interleave across banks
(the row-interleaved mapping of :mod:`repro.dram.geometry`).  The
mapper is the single place that knows this correspondence, so the OS
model, the controller and the experiments all agree on it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dram.geometry import DramGeometry


class AddressMapper:
    """Maps lines and pages to (bank, row[, line-in-row]) coordinates."""

    def __init__(self, geometry: DramGeometry):
        if (geometry.page_bytes % geometry.row_bytes != 0
                and geometry.row_bytes % geometry.page_bytes != 0):
            raise ValueError("page and row sizes must nest evenly")
        self.geometry = geometry
        # Exactly one of these is > 1 (both are 1 for 4 KB pages on 4 KB
        # rows): 2 KB rows give two rows per page, 8 KB rows give two
        # pages per row.
        self.rows_per_page = max(1, geometry.page_bytes // geometry.row_bytes)
        self.pages_per_row = max(1, geometry.row_bytes // geometry.page_bytes)

    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        return self.geometry.total_bytes // self.geometry.page_bytes

    def line_location(self, line_addr) -> Tuple:
        """Line address -> (bank, row, line-in-row)."""
        return self.geometry.decompose_line(line_addr)

    def line_address(self, bank, row, line_in_row):
        """Inverse of :meth:`line_location`."""
        return self.geometry.compose_line(bank, row, line_in_row)

    # ------------------------------------------------------------------
    def page_rows(self, page) -> Tuple[np.ndarray, np.ndarray]:
        """Page index -> (banks, rows) of the logical rows backing it.

        With 4 KB rows each page maps to one (bank, row) pair; with
        2 KB rows a page spans two rows (trailing axis of size 2); with
        8 KB rows two pages share one row (use :meth:`page_line_offset`
        to locate the page inside it).
        """
        page = np.asarray(page)
        if (page < 0).any() or (page >= self.total_pages).any():
            raise ValueError("page index out of range")
        if self.rows_per_page > 1:
            global_rows = (
                page[..., None] * self.rows_per_page
                + np.arange(self.rows_per_page)
            )
        else:
            global_rows = page // self.pages_per_row
        banks = global_rows % self.geometry.num_banks
        rows = global_rows // self.geometry.num_banks
        return banks, rows

    def page_line_offset(self, page) -> np.ndarray:
        """First line-in-row of a page inside its (possibly shared) row."""
        page = np.asarray(page)
        return (page % self.pages_per_row) * self.geometry.lines_per_page

    def page_of_row(self, bank: int, row: int) -> int:
        """First page backed by a (bank, row) pair."""
        global_row = row * self.geometry.num_banks + bank
        if self.rows_per_page > 1:
            return global_row // self.rows_per_page
        return global_row * self.pages_per_row

    def page_lines(self, page: int) -> np.ndarray:
        """Global line addresses belonging to a page (ascending)."""
        if not 0 <= page < self.total_pages:
            raise ValueError("page index out of range")
        start = page * self.geometry.lines_per_page
        return np.arange(start, start + self.geometry.lines_per_page)
