"""Energy modelling: DDR4 device power, SRAM costs, system accounting.

* :mod:`repro.energy.dram_power` — Micron-calculator-style DDR4 power
  model from the Table II IDD currents (drives Fig. 4).
* :mod:`repro.energy.sram` — CACTI-anchored SRAM leakage/area estimates
  (the Sec. IV-B 337.14 mW vs 2.71 mW comparison).
* :mod:`repro.energy.accounting` — refresh-path energy of a run
  including all ZERO-REFRESH overheads (drives Fig. 15).
"""

from repro.energy.accounting import EBDI_ENERGY_PJ, EnergyAccountant, EnergyReport
from repro.energy.dram_power import (
    TRFC_BY_DENSITY_GBIT,
    DevicePowerBreakdown,
    DramPowerModel,
)
from repro.energy.sram import SramEstimate, SramModel

__all__ = [
    "DevicePowerBreakdown",
    "DramPowerModel",
    "EBDI_ENERGY_PJ",
    "EnergyAccountant",
    "EnergyReport",
    "SramEstimate",
    "SramModel",
    "TRFC_BY_DENSITY_GBIT",
]
