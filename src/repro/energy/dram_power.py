"""DDR4 power model in the style of the Micron system-power calculator.

The paper's Fig. 4 uses Micron's DDR4 spreadsheet to show the refresh
share of total device power growing with density: at the extended
temperature rate (32 ms) a 16 Gb device spends more than half its power
refreshing.  This module reimplements the calculator's arithmetic from
the IDD currents of Table II:

* background power — precharge standby (IDD2N) / active standby
  (IDD3N) weighted by the active fraction;
* activate/precharge power — IDD0 minus the standby floor, scaled by
  the row-cycle duty factor;
* read/write burst power — (IDD4R − IDD3N) and (IDD4W − IDD3N) scaled
  by bus utilisation (the paper fixes 8 % read, 2 % write cycles);
* refresh power — (IDD5 − IDD3N) scaled by the refresh duty factor
  ``tRFC / tREFI``, where tRFC grows with device density and tREFI
  halves at extended temperature.

Densities map to standard DDR4 tRFC1 values; beyond 16 Gb the JEDEC
trend is extrapolated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.timing import AR_COMMANDS_PER_WINDOW, CurrentParams, TemperatureMode

TRFC_BY_DENSITY_GBIT: Dict[int, float] = {
    1: 110.0,
    2: 160.0,
    4: 260.0,
    8: 350.0,
    16: 550.0,
    32: 880.0,  # JEDEC-trend extrapolation
    64: 1400.0,  # JEDEC-trend extrapolation
}
"""All-bank tRFC1 (ns) per DDR4 device density."""


@dataclass(frozen=True)
class DevicePowerBreakdown:
    """Per-device power components in mW."""

    background_mw: float
    activate_mw: float
    read_mw: float
    write_mw: float
    refresh_mw: float

    @property
    def total_mw(self) -> float:
        return (
            self.background_mw
            + self.activate_mw
            + self.read_mw
            + self.write_mw
            + self.refresh_mw
        )

    @property
    def refresh_share(self) -> float:
        """Fraction of total device power spent refreshing (Fig. 4's y-axis)."""
        return self.refresh_mw / self.total_mw if self.total_mw else 0.0


class DramPowerModel:
    """Micron-calculator style DDR4 device power model."""

    def __init__(self, currents: CurrentParams = CurrentParams()):
        self.currents = currents

    # ------------------------------------------------------------------
    def trfc_ns(self, density_gbit: int) -> float:
        """All-bank tRFC for a device density (interpolating if needed)."""
        table = TRFC_BY_DENSITY_GBIT
        if density_gbit in table:
            return table[density_gbit]
        known = sorted(table)
        if density_gbit < known[0] or density_gbit > known[-1]:
            raise ValueError(f"density {density_gbit} Gb outside supported range")
        import numpy as np

        return float(np.interp(density_gbit, known, [table[k] for k in known]))

    def trefi_ns(self, temperature: TemperatureMode) -> float:
        return temperature.tret_s / AR_COMMANDS_PER_WINDOW * 1e9

    # ------------------------------------------------------------------
    def device_power(
        self,
        density_gbit: int,
        temperature: TemperatureMode = TemperatureMode.NORMAL,
        read_cycle_fraction: float = 0.08,
        write_cycle_fraction: float = 0.02,
        active_fraction: float = 0.3,
        row_cycle_duty: float = 0.05,
        refresh_scale: float = 1.0,
    ) -> DevicePowerBreakdown:
        """Power breakdown of one device.

        ``refresh_scale`` multiplies the refresh duty factor: 1.0 is the
        conventional schedule; a ZERO-REFRESH run passes its normalised
        refresh count to shrink this component.
        """
        c = self.currents
        vdd = c.vdd
        background = (
            c.idd2n * (1.0 - active_fraction) + c.idd3n * active_fraction
        ) * vdd
        standby_floor = c.idd3n
        activate = max(0.0, c.idd0 - standby_floor) * vdd * row_cycle_duty
        read = max(0.0, c.idd4r - standby_floor) * vdd * read_cycle_fraction
        write = max(0.0, c.idd4w - standby_floor) * vdd * write_cycle_fraction
        refresh_duty = self.trfc_ns(density_gbit) / self.trefi_ns(temperature)
        # Denser devices refresh more banks/rows per command, so the
        # burst-refresh current grows with density (Micron datasheets
        # show roughly a 2x IDD5B step from 4 Gb to 16 Gb).  Table II's
        # IDD5 is anchored at the 8 Gb point.
        idd5_eff = c.idd5 * (density_gbit / 8.0) ** 0.3
        refresh = (
            max(0.0, idd5_eff - standby_floor) * vdd * refresh_duty * refresh_scale
        )
        return DevicePowerBreakdown(
            background_mw=background,
            activate_mw=activate,
            read_mw=read,
            write_mw=write,
            refresh_mw=refresh,
        )

    # ------------------------------------------------------------------
    def refresh_energy_per_row_nj(self, trfc_ns: float, rows_per_ar: int,
                                  num_chips: int = 8) -> float:
        """Energy of refreshing one logical row (all chips), in nJ.

        One AR command keeps each chip at IDD5 for tRFC and covers
        ``rows_per_ar`` rows, so the per-row share is the command energy
        divided by the row count.
        """
        c = self.currents
        per_chip_nj = max(0.0, c.idd5 - c.idd3n) * c.vdd * trfc_ns * 1e-3
        return per_chip_nj * num_chips / rows_per_ar
