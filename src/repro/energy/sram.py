"""SRAM leakage and area estimates (CACTI 6.5 anchor points).

The paper justifies the DRAM-resident status table by CACTI numbers at
32 nm (Sec. IV-B):

* the naive 1 MB per-row table leaks **337.14 mW**;
* the optimised 8 KB access-bit table leaks **2.71 mW** and occupies
  **0.076 mm²**.

This model interpolates between (and mildly extrapolates beyond) those
anchors in log-log space, which matches CACTI's near-linear
leakage-vs-capacity behaviour over this range, so any scaled geometry
in the repository gets a defensible SRAM cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

ANCHOR_SMALL_BYTES = 8 << 10  # 8 KB
ANCHOR_SMALL_LEAKAGE_MW = 2.71
ANCHOR_SMALL_AREA_MM2 = 0.076
ANCHOR_LARGE_BYTES = 1 << 20  # 1 MB
ANCHOR_LARGE_LEAKAGE_MW = 337.14


@dataclass(frozen=True)
class SramEstimate:
    """Leakage and area of one SRAM array."""

    capacity_bytes: int
    leakage_mw: float
    area_mm2: float


class SramModel:
    """Log-log interpolation through the paper's CACTI anchor points."""

    def __init__(self):
        self._exponent = math.log(
            ANCHOR_LARGE_LEAKAGE_MW / ANCHOR_SMALL_LEAKAGE_MW
        ) / math.log(ANCHOR_LARGE_BYTES / ANCHOR_SMALL_BYTES)

    def leakage_mw(self, capacity_bytes: float) -> float:
        """Standby leakage power of an SRAM array (32 nm)."""
        if capacity_bytes <= 0:
            return 0.0
        ratio = capacity_bytes / ANCHOR_SMALL_BYTES
        return ANCHOR_SMALL_LEAKAGE_MW * ratio**self._exponent

    def area_mm2(self, capacity_bytes: float) -> float:
        """Area, scaled linearly from the 8 KB anchor."""
        if capacity_bytes <= 0:
            return 0.0
        return ANCHOR_SMALL_AREA_MM2 * capacity_bytes / ANCHOR_SMALL_BYTES

    def estimate(self, capacity_bytes: float) -> SramEstimate:
        return SramEstimate(
            capacity_bytes=int(capacity_bytes),
            leakage_mw=self.leakage_mw(capacity_bytes),
            area_mm2=self.area_mm2(capacity_bytes),
        )
