"""Whole-system refresh-energy accounting (paper Fig. 15).

Fig. 15 compares the refresh energy of ZERO-REFRESH — *including* the
overheads of its extra components — against conventional auto-refresh.
The components the paper charges (Sec. VI-B):

* row refreshes actually performed (per-row share of an AR command's
  IDD5 burst);
* the EBDI module at **15 pJ per operation** (Vivado estimate), on both
  reads and writes;
* the access-bit SRAM's standby leakage (CACTI: 2.71 mW for 8 KB at the
  32 GB scale), integrated over the measured duration;
* reads/writes of the DRAM-resident discharged-status table, one row
  access per AR command that consulted or renewed it.

:class:`EnergyAccountant` turns refresh statistics plus controller
counters into an :class:`EnergyReport`, whose ``normalized()`` value is
exactly what Fig. 15 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshStats
from repro.dram.timing import TimingParams
from repro.energy.dram_power import DramPowerModel
from repro.energy.sram import SramModel
from repro.obs.probes import NULL_PROBES

EBDI_ENERGY_PJ = 15.0
"""Energy per EBDI encode/decode operation (paper Sec. VI-B, Vivado)."""


@dataclass(frozen=True)
class EnergyReport:
    """Refresh-path energy of one run, in nanojoules."""

    refresh_nj: float
    ebdi_nj: float
    sram_leakage_nj: float
    status_access_nj: float
    baseline_refresh_nj: float
    duration_s: float

    @property
    def overhead_nj(self) -> float:
        return self.ebdi_nj + self.sram_leakage_nj + self.status_access_nj

    @property
    def total_nj(self) -> float:
        return self.refresh_nj + self.overhead_nj

    def normalized(self) -> float:
        """Total refresh-path energy relative to the conventional baseline."""
        if self.baseline_refresh_nj == 0:
            return 1.0
        return self.total_nj / self.baseline_refresh_nj

    def reduction(self) -> float:
        return 1.0 - self.normalized()


class EnergyAccountant:
    """Computes :class:`EnergyReport` from run statistics."""

    def __init__(
        self,
        geometry: DramGeometry,
        timing: TimingParams,
        power_model: DramPowerModel = None,
        sram_model: SramModel = None,
        reference_geometry: DramGeometry = None,
        probes=None,
    ):
        self.geometry = geometry
        self.timing = timing
        self.power = power_model or DramPowerModel(timing.currents)
        self.sram = sram_model or SramModel()
        self.probes = probes if probes is not None else NULL_PROBES
        # Overhead structures are sized for the deployment-scale memory
        # (32 GB in the paper); a capacity-scaled simulation still pays
        # the scaled cost so the ratio stays faithful.
        self.reference_geometry = reference_geometry or geometry

    # ------------------------------------------------------------------
    @property
    def row_refresh_nj(self) -> float:
        """Energy to refresh one logical row (all chips)."""
        return self.power.refresh_energy_per_row_nj(
            trfc_ns=self.timing.trfc_ns,
            rows_per_ar=self.geometry.rows_per_ar,
            num_chips=self.geometry.num_chips,
        )

    @property
    def status_row_access_nj(self) -> float:
        """One status-vector read/write costs one extra row operation.

        The 16 B vector lives in a reserved row and is accessed inside
        the AR burst, so its energy is one more row operation at the
        engine's per-row cost — under 1 % of the 128 row refreshes each
        access governs, matching the paper's claim that table accesses
        barely dent the savings.
        """
        return self.row_refresh_nj

    def access_bit_sram_bytes(self) -> float:
        """Access-bit SRAM capacity at the reference scale (8 KB at 32 GB)."""
        ref = self.reference_geometry
        return ref.num_banks * ref.ar_sets_per_bank / 8.0

    # ------------------------------------------------------------------
    def report(self, stats: RefreshStats, ebdi_ops: int = 0,
               duration_s: float = None) -> EnergyReport:
        """Account a run.

        ``stats`` are the measured refresh statistics; ``ebdi_ops``
        comes from the memory controller; ``duration_s`` defaults to
        the windows actually simulated.
        """
        if duration_s is None:
            duration_s = stats.windows * self.timing.tret_s
        refresh_nj = stats.groups_refreshed * self.row_refresh_nj
        baseline_nj = stats.groups_total * self.row_refresh_nj
        ebdi_nj = ebdi_ops * EBDI_ENERGY_PJ * 1e-3
        leak_mw = self.sram.leakage_mw(self.access_bit_sram_bytes())
        # Scale leakage charged to this run by the simulated fraction of
        # the reference capacity (per-byte leakage share).
        scale = self.geometry.total_bytes / self.reference_geometry.total_bytes
        sram_nj = leak_mw * scale * duration_s * 1e6  # mW * s = mJ -> nJ: *1e6
        status_nj = (stats.status_reads + stats.status_writes) * self.status_row_access_nj
        report = EnergyReport(
            refresh_nj=refresh_nj,
            ebdi_nj=ebdi_nj,
            sram_leakage_nj=sram_nj,
            status_access_nj=status_nj,
            baseline_refresh_nj=baseline_nj,
            duration_s=duration_s,
        )
        self.probes.count("energy.refresh_nj", report.refresh_nj)
        self.probes.count("energy.overhead_nj", report.overhead_nj)
        self.probes.gauge("energy.normalized_total", report.normalized())
        if self.probes.tracing:
            self.probes.event(
                "energy.report", duration_s=duration_s,
                refresh_nj=report.refresh_nj, ebdi_nj=report.ebdi_nj,
                sram_leakage_nj=report.sram_leakage_nj,
                status_access_nj=report.status_access_nj,
                baseline_refresh_nj=report.baseline_refresh_nj,
            )
        return report
