"""Advisory file locks and the concurrent-run protocol.

Two processes pointed at one ``--cache-dir`` used to race freely: both
would derive the same deterministic run id, open the same journal, and
interleave lines.  The protocol here closes that hole with the weakest
tool that works — advisory ``fcntl.flock`` locks held for the duration
of a run:

* :class:`FileLock` wraps one lock file.  ``flock`` locks die with the
  process (the kernel releases them when the last descriptor closes),
  so a SIGKILLed run leaves no stale lock to clean up — the property
  the chaos driver's kill phases depend on.  On platforms without
  ``fcntl`` a best-effort ``O_EXCL`` + pid-liveness fallback applies.
* :func:`acquire_run_id` allocates a run id under lock: the requested
  id if its lock is free, otherwise the first free ``<id>.2``,
  ``<id>.3``, ... — so concurrent runs sharing a cache complete with
  disjoint run ids and journals that never interleave.

Cache *puts* deliberately stay lock-free: content-addressed entries
make concurrent rename wins idempotent (both writers produced the same
bytes for the same key), and the put path records a last-writer-wins
audit event instead of serializing the hot path.

Lock files live under ``<cache>/locks/`` and are plain empty files;
retention GC (:mod:`repro.store.gc`) probes them to find in-progress
runs whose state must never be pruned, and sweeps the stale ones.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback path
    fcntl = None

from repro.experiments.cache import stable_digest

_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def locks_dir(cache_root: Union[str, Path]) -> Path:
    return Path(cache_root) / "locks"


def run_lock_path(cache_root: Union[str, Path], run_id: str) -> Path:
    """The lock file guarding ``run_id``; unsafe ids are hashed."""
    if not run_id or not all(ch in _SAFE for ch in run_id):
        run_id = "x" + stable_digest("run-lock", run_id)[:24]
    return locks_dir(cache_root) / f"{run_id}.lock"


class FileLock:
    """One advisory, process-exclusive lock on a path.

    ``acquire(blocking=False)`` returns whether the lock was taken;
    ``release()`` (or garbage collection / process death) frees it.
    Locks are advisory: they only exclude other :class:`FileLock`
    users, which is exactly the contract the run protocol needs.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    @property
    def held(self) -> bool:
        return self._fh is not None

    def acquire(self, blocking: bool = False) -> bool:
        if self._fh is not None:
            return True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = self.path.open("a+b")
        try:
            if fcntl is not None:
                flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
                fcntl.flock(fh.fileno(), flags)
            else:  # pragma: no cover - non-fcntl platforms
                if not _fallback_acquire(self.path):
                    fh.close()
                    return False
        except OSError:
            fh.close()
            return False
        self._fh = fh
        return True

    def write_note(self, text: str) -> None:
        """Record ``text`` in the lock file (e.g. the run id it guards).

        Best effort: the note is advisory metadata for GC's
        lock-to-run mapping, so write failures are swallowed.
        """
        if self._fh is None:
            return
        try:
            self._fh.seek(0)
            self._fh.truncate()
            self._fh.write(text.encode("utf-8"))
            self._fh.flush()
        except OSError:
            pass

    def release(self) -> None:
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            else:  # pragma: no cover - non-fcntl platforms
                _fallback_release(self.path)
        except OSError:
            pass
        finally:
            fh.close()

    def __enter__(self) -> "FileLock":
        self.acquire(blocking=True)
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - belt and braces
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self.held else "free"
        return f"FileLock({str(self.path)!r}, {state})"


def _fallback_pid_path(path: Path) -> Path:  # pragma: no cover
    return path.with_suffix(path.suffix + ".pid")


def _fallback_acquire(path: Path) -> bool:  # pragma: no cover - off-POSIX
    """O_EXCL pid-file lock for platforms without ``fcntl``.

    Unlike ``flock`` this can go stale after SIGKILL; liveness is
    approximated by probing the recorded pid.
    """
    pid_path = _fallback_pid_path(path)
    while True:
        try:
            fd = os.open(pid_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                pid = int(pid_path.read_text() or "0")
            except (OSError, ValueError):
                pid = 0
            if pid and _pid_alive(pid):
                return False
            try:  # stale: previous holder is gone
                pid_path.unlink()
            except OSError:
                return False
            continue
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True


def _fallback_release(path: Path) -> None:  # pragma: no cover - off-POSIX
    try:
        _fallback_pid_path(path).unlink()
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:  # pragma: no cover - fallback helper
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass
    return True


def probe_locked(path: Union[str, Path]) -> bool:
    """Whether a live process currently holds the lock at ``path``.

    Advisory and momentarily racy (the probe itself takes and drops
    the lock), which is fine for its one consumer: GC asking "is this
    run still in progress?".
    """
    lock = FileLock(path)
    if lock.acquire(blocking=False):
        lock.release()
        return False
    return True


def acquire_run_id(
    cache_root: Union[str, Path], run_id: str, *, max_candidates: int = 1000,
) -> Tuple[str, FileLock, int]:
    """Allocate a locked run id, suffixing past live concurrent runs.

    Returns ``(allocated_id, held_lock, conflicts)`` where
    ``conflicts`` counts how many candidate ids were held by other
    live runs.  The lock must be held until the run's journal closes;
    callers release it via :meth:`FileLock.release`.
    """
    conflicts = 0
    for n in range(1, max_candidates + 1):
        candidate = run_id if n == 1 else f"{run_id}.{n}"
        lock = FileLock(run_lock_path(cache_root, candidate))
        if lock.acquire(blocking=False):
            lock.write_note(candidate)
            return candidate, lock, conflicts
        conflicts += 1
    raise RuntimeError(
        f"could not allocate a run id after {max_candidates} candidates "
        f"of {run_id!r}"
    )


def stale_lock_files(cache_root: Union[str, Path]):
    """Lock files no live process holds — GC sweeps these."""
    root = locks_dir(cache_root)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.lock")):
        if not probe_locked(path):
            yield path


def held_lock_files(cache_root: Union[str, Path]):
    """Lock files of in-progress runs — their state is GC-protected."""
    root = locks_dir(cache_root)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.lock")):
        if probe_locked(path):
            yield path
