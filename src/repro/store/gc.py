"""Retention GC: bound the durable state without breaking live runs.

Nothing used to prune the cache: entries, journals, manifests and span
stores accumulated until the disk filled.  ``repro gc`` applies a
:class:`GCPolicy` — any combination of

* ``max_age_s`` — drop state older than this;
* ``max_bytes`` — then drop the oldest cache entries until the cache
  payload fits the budget;
* ``keep_runs`` — keep only the newest N runs' journals and span
  stores (manifests and ``lost+found`` debris are age-pruned).

The one hard rule is *never remove state referenced by an in-progress
run's lock*: for every held lock under ``<cache>/locks/`` the run's
journal, span store, and every cache entry its journal marks done are
protected, whatever the policy says.  Everything else is fair game —
a pruned entry just recomputes on the next run, which is the cache's
ordinary miss path.

Removal is atomic per artifact (one ``unlink`` each, oldest first), so
a GC racing a live run can never half-delete anything: the worst case
is a concurrent ``put`` re-creating an entry the sweep just removed,
which the content-addressed rename discipline already makes idempotent.

Results surface as ``store.gc.*`` gauges on the ambient probe bus and
as the JSON document the ``repro gc --json`` CLI prints; the serving
daemon runs the same :func:`collect` on a background interval.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set, Tuple, Union

from repro.store import locks as locks_mod

__all__ = ["GCPolicy", "collect", "main", "parse_age"]


@dataclass(frozen=True)
class GCPolicy:
    """What ``repro gc`` is allowed to remove.

    All knobs are optional; an unset knob imposes no bound.  A policy
    with no knobs set removes nothing but still sweeps stale lock
    files and reports live sizes.
    """

    max_bytes: Optional[int] = None
    max_age_s: Optional[float] = None
    keep_runs: Optional[int] = None

    def __post_init__(self):
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ValueError("max_age_s must be >= 0")
        if self.keep_runs is not None and self.keep_runs < 0:
            raise ValueError("keep_runs must be >= 0")


def protected_state(
    cache_root: Union[str, Path],
) -> Tuple[Set[str], Set[str]]:
    """State the current held locks pin: ``(run_ids, cache_keys)``.

    A held lock names an in-progress run; its journal's done-set is
    exactly the cache state a resume of that run would replay, so
    those keys must survive any sweep that happens mid-run.
    """
    from repro.experiments.journal import load_state

    cache_root = Path(cache_root)
    run_ids: Set[str] = set()
    keys: Set[str] = set()
    for lock_path in locks_mod.held_lock_files(cache_root):
        try:
            note = lock_path.read_text(encoding="utf-8",
                                       errors="replace").strip()
        except OSError:
            note = ""
        run_id = note or lock_path.stem
        run_ids.add(run_id)
        state = load_state(cache_root, run_id)
        if state is not None:
            keys.update(state.done)
            keys.update(state.failed)
    return run_ids, keys


def _aged(mtime: float, now: float, policy: GCPolicy) -> bool:
    return policy.max_age_s is not None and now - mtime > policy.max_age_s


def _remove(path: Path, stats: dict, group: str, size: int,
            dry_run: bool) -> None:
    if not dry_run:
        try:
            path.unlink()
        except FileNotFoundError:
            return
        except OSError:
            stats["errors"] += 1
            return
    stats["removed"][group] += 1
    stats["removed_bytes"] += size


def collect(
    cache_root: Union[str, Path],
    policy: GCPolicy,
    *,
    now: Optional[float] = None,
    dry_run: bool = False,
) -> dict:
    """Apply ``policy`` to the store under ``cache_root``.

    Returns the sweep report (counts, bytes, protections) and updates
    the ``store.gc.*`` gauges on the ambient probe bus.  ``dry_run``
    reports what would be removed without touching the disk.
    """
    from repro.obs import get_probes

    cache_root = Path(cache_root)
    now = time.time() if now is None else now
    stats = {
        "root": str(cache_root),
        "dry_run": dry_run,
        "removed": {"entries": 0, "journals": 0, "spans": 0,
                    "manifests": 0, "lost_found": 0, "stale_locks": 0},
        "removed_bytes": 0,
        "protected_runs": 0,
        "protected_entries": 0,
        "live_entries": 0,
        "live_bytes": 0,
        "errors": 0,
    }
    protected_runs, protected_keys = protected_state(cache_root)
    stats["protected_runs"] = len(protected_runs)

    # -- cache entries: age first, then oldest-first down to max_bytes --
    entries = []
    for path in cache_root.glob("v*/??/*.pkl"):
        try:
            st = path.stat()
        except OSError:
            continue
        entries.append((st.st_mtime, st.st_size, path))
    entries.sort()
    survivors = []
    for mtime, size, path in entries:
        if path.stem in protected_keys:
            stats["protected_entries"] += 1
            survivors.append((mtime, size, path))
        elif _aged(mtime, now, policy):
            _remove(path, stats, "entries", size, dry_run)
        else:
            survivors.append((mtime, size, path))
    if policy.max_bytes is not None:
        total = sum(size for _, size, _ in survivors)
        kept = []
        for mtime, size, path in survivors:  # oldest first
            if total > policy.max_bytes and path.stem not in protected_keys:
                _remove(path, stats, "entries", size, dry_run)
                total -= size
            else:
                kept.append((mtime, size, path))
        survivors = kept
    stats["live_entries"] = len(survivors)
    stats["live_bytes"] = sum(size for _, size, _ in survivors)

    # -- runs: journals + span stores, newest kept --------------------
    journal_dir = cache_root / "journal"
    spans_dir = cache_root / "spans"
    runs = []
    for path in journal_dir.glob("*.jsonl"):
        try:
            st = path.stat()
        except OSError:
            continue
        runs.append((st.st_mtime, st.st_size, path))
    runs.sort(reverse=True)  # newest first
    for index, (mtime, size, path) in enumerate(runs):
        run_id = path.stem
        if run_id in protected_runs:
            continue
        over_keep = (policy.keep_runs is not None
                     and index >= policy.keep_runs)
        if not over_keep and not _aged(mtime, now, policy):
            continue
        _remove(path, stats, "journals", size, dry_run)
        span_file = spans_dir / f"{run_id}.jsonl"
        try:
            span_size = span_file.stat().st_size
        except OSError:
            continue
        _remove(span_file, stats, "spans", span_size, dry_run)

    # orphan span stores (no journal) and manifests age out
    for group, paths in (
        ("spans", spans_dir.glob("*.jsonl")),
        ("manifests", (cache_root / "manifests").glob("*.jsonl")),
        ("lost_found", (p for p in (cache_root / "lost+found").rglob("*")
                        if p.is_file())),
    ):
        for path in paths:
            try:
                st = path.stat()
            except OSError:
                continue
            if group == "spans":
                if path.stem in protected_runs:
                    continue
                if (journal_dir / f"{path.stem}.jsonl").exists():
                    continue  # owned by a surviving run
            if _aged(st.st_mtime, now, policy):
                _remove(path, stats, group, st.st_size, dry_run)

    # -- stale lock files are always safe to sweep ---------------------
    for path in locks_mod.stale_lock_files(cache_root):
        try:
            size = path.stat().st_size
        except OSError:
            continue
        if _aged(path.stat().st_mtime, now, policy) or policy.max_age_s is None:
            _remove(path, stats, "stale_locks", size, dry_run)

    probes = get_probes()
    probes.count("store.gc.sweeps")
    probes.gauge("store.gc.live_bytes", stats["live_bytes"])
    probes.gauge("store.gc.live_entries", stats["live_entries"])
    probes.gauge("store.gc.removed_bytes", stats["removed_bytes"])
    probes.gauge("store.gc.removed_files",
                 sum(stats["removed"].values()))
    probes.gauge("store.gc.protected_runs", stats["protected_runs"])
    return stats


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_age(text: str) -> float:
    """``"90"``/``"90s"``/``"15m"``/``"6h"``/``"7d"`` → seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"cannot parse age {text!r}; use e.g. 90s/15m/7d")
    if value < 0:
        raise ValueError("age must be >= 0")
    return value * unit


def main(argv=None) -> int:
    """``repro gc``: apply a retention policy to the result store."""
    from repro.experiments.cache import default_cache_dir

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments gc",
        description="Prune the result cache, journals and span stores. "
                    "State referenced by an in-progress run's lock is "
                    "never removed.",
    )
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="store location (default: $REPRO_CACHE_DIR "
                             "or .repro-cache)")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N",
                        help="cache payload budget; oldest entries are "
                             "pruned until under it")
    parser.add_argument("--max-age", default=None, metavar="AGE",
                        help="drop state older than AGE (e.g. 90s, 15m, "
                             "6h, 7d)")
    parser.add_argument("--keep-runs", type=int, default=None, metavar="N",
                        help="keep only the newest N runs' journals and "
                             "span stores")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be removed, touch nothing")
    parser.add_argument("--json", action="store_true",
                        help="print the sweep report as JSON")
    args = parser.parse_args(argv)
    try:
        max_age_s = (parse_age(args.max_age)
                     if args.max_age is not None else None)
    except ValueError as exc:
        parser.error(str(exc))
    policy = GCPolicy(max_bytes=args.max_bytes, max_age_s=max_age_s,
                      keep_runs=args.keep_runs)
    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    stats = collect(root, policy, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        removed: Dict[str, int] = stats["removed"]
        verb = "would remove" if args.dry_run else "removed"
        parts = [f"{n} {group}" for group, n in sorted(removed.items()) if n]
        print(f"gc: {verb} {', '.join(parts) if parts else 'nothing'} "
              f"({stats['removed_bytes']} bytes); "
              f"{stats['live_entries']} entries "
              f"({stats['live_bytes']} bytes) live, "
              f"{stats['protected_runs']} in-progress runs protected")
    if stats["errors"]:
        print(f"gc: {stats['errors']} removals failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
