"""The integrity envelope: self-describing, verifiable payload framing.

Binary artifacts (cache entries) are framed as::

    REPRO-STORE {"len": N, "schema": S, "sha256": "...", "v": 1}\\n
    <N payload bytes>

The header line is ASCII JSON after a fixed magic token, so a reader
can classify damage *before* touching the payload: a file that does
not start with the magic is ``wrong_schema`` (a foreign or pre-envelope
file), a file shorter than the declared length is ``truncated``, a
full-length file whose SHA-256 disagrees is ``bit_flipped``.  Writers
produce the envelope through the existing write-then-rename discipline,
so a crash can only ever leave an ``orphan_tmp`` — never a torn final
file.

JSONL artifacts (journals, span stores) are checksummed per record:
:func:`seal_record` embeds a truncated SHA-256 of the record's
canonical dump under the ``"_sha"`` key, and :func:`open_record`
verifies and strips it.  Records without the key still load — the
stores tolerated bare lines before this layer existed, and fixtures
may hand-write them — but any sealed record that fails verification
is classified and refused, so a flipped bit can never replay as wrong
data.

Every classification funnels through :func:`count_corruption`, which
bumps the ambient ``store.corrupt.<class>`` counter and (when tracing)
emits a ``store.corrupt_entry`` event — the counters ``repro fsck``
and the crash-consistency tests assert on.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Tuple, Union

MAGIC = b"REPRO-STORE "
"""Leading token of every enveloped binary artifact."""

ENVELOPE_VERSION = 1

MAX_HEADER_BYTES = 4096
"""A header line longer than this is damage, not a header."""

LINE_SHA_KEY = "_sha"
"""Key carrying a sealed JSONL record's checksum."""

LINE_SHA_WIDTH = 16

#: The failure classes readers and ``repro fsck`` report.
TRUNCATED = "truncated"
BIT_FLIPPED = "bit_flipped"
WRONG_SCHEMA = "wrong_schema"
ORPHAN_TMP = "orphan_tmp"
CORRUPTION_CLASSES = (TRUNCATED, BIT_FLIPPED, WRONG_SCHEMA, ORPHAN_TMP)


class EnvelopeError(Exception):
    """A payload failed integrity verification.

    ``kind`` is one of :data:`CORRUPTION_CLASSES`; ``detail`` is a
    short human explanation for fsck reports and trace events.
    """

    def __init__(self, kind: str, detail: str = ""):
        if kind not in CORRUPTION_CLASSES:
            raise ValueError(f"unknown corruption class {kind!r}")
        self.kind = kind
        self.detail = detail
        super().__init__(f"{kind}: {detail}" if detail else kind)


def count_corruption(kind: str, *, store: str, path=None, **fields) -> None:
    """Bump ``store.corrupt.<kind>`` on the ambient bus (+ trace event)."""
    from repro.obs import get_probes

    probes = get_probes()
    probes.count(f"store.corrupt.{kind}")
    if probes.tracing:
        probes.event("store.corrupt_entry", kind=kind, store=store,
                     path=str(path) if path is not None else None, **fields)


# ----------------------------------------------------------------------
# binary envelope
# ----------------------------------------------------------------------
def wrap(payload: bytes, *, schema: int) -> bytes:
    """Frame ``payload`` with the integrity header."""
    header = json.dumps(
        {
            "len": len(payload),
            "schema": schema,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "v": ENVELOPE_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return MAGIC + header.encode("ascii") + b"\n" + payload


def _parse_header(blob: bytes) -> Tuple[dict, int]:
    """Parse the header of ``blob``; returns ``(header, payload_offset)``.

    Raises :class:`EnvelopeError` with the damage classified.
    """
    if not blob.startswith(MAGIC):
        if MAGIC.startswith(blob):
            # a prefix of the magic itself: the writer died inside the
            # first dozen bytes (only possible for non-atomic writers,
            # but classify it honestly anyway)
            raise EnvelopeError(TRUNCATED, "file ends inside the magic")
        raise EnvelopeError(WRONG_SCHEMA, "no envelope magic")
    newline = blob.find(b"\n", len(MAGIC), len(MAGIC) + MAX_HEADER_BYTES)
    if newline < 0:
        if len(blob) <= len(MAGIC) + MAX_HEADER_BYTES:
            raise EnvelopeError(TRUNCATED, "header line is cut off")
        raise EnvelopeError(BIT_FLIPPED, "header newline missing")
    try:
        header = json.loads(blob[len(MAGIC):newline].decode("ascii"))
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (ValueError, UnicodeDecodeError) as exc:
        raise EnvelopeError(BIT_FLIPPED, f"header unparseable: {exc}")
    if header.get("v") != ENVELOPE_VERSION:
        raise EnvelopeError(
            WRONG_SCHEMA, f"envelope version {header.get('v')!r}"
        )
    if not isinstance(header.get("len"), int) or header["len"] < 0:
        raise EnvelopeError(BIT_FLIPPED, "header length field mangled")
    return header, newline + 1


def unwrap(blob: bytes, *, schema: int) -> bytes:
    """Verify ``blob``'s envelope and return the payload.

    Raises :class:`EnvelopeError` classifying the damage; the caller
    decides whether that means a miss, a quarantine, or a counter.
    """
    header, offset = _parse_header(blob)
    if header.get("schema") != schema:
        raise EnvelopeError(
            WRONG_SCHEMA,
            f"payload schema {header.get('schema')!r}, expected {schema}",
        )
    payload = blob[offset:]
    declared = header["len"]
    if len(payload) < declared:
        raise EnvelopeError(
            TRUNCATED, f"{len(payload)} of {declared} payload bytes"
        )
    if len(payload) > declared:
        raise EnvelopeError(
            BIT_FLIPPED, f"{len(payload) - declared} trailing bytes"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("sha256"):
        raise EnvelopeError(BIT_FLIPPED, "payload sha256 mismatch")
    return payload


def check_header(path: Union[str, Path], *, schema: int) -> Optional[str]:
    """Cheap envelope validation: header + file size, no payload read.

    Returns ``None`` when the header is plausible (magic, version,
    schema and declared length all agree with the file's size) or the
    corruption class otherwise.  This is what makes
    ``key in cache`` agree with ``cache.get(key)`` without paying a
    full payload hash per membership test; only a bit-flip *inside*
    the payload can slip past it (``get`` still catches that).
    """
    path = Path(path)
    try:
        size = os.stat(path).st_size
        with path.open("rb") as fh:
            prefix = fh.read(len(MAGIC) + MAX_HEADER_BYTES + 1)
    except FileNotFoundError:
        raise
    except OSError:
        return TRUNCATED
    try:
        header, offset = _parse_header(prefix)
        if header.get("schema") != schema:
            return WRONG_SCHEMA
    except EnvelopeError as exc:
        return exc.kind
    declared = header["len"]
    actual = size - offset
    if actual < declared:
        return TRUNCATED
    if actual > declared:
        return BIT_FLIPPED
    return None


def snapshot_digest(requests) -> str:
    """Canonical digest of a serve-inflight request list.

    The serving daemon embeds this in the snapshot document and the
    resume path / fsck verify it, so a flipped bit in the snapshot is
    detected instead of resubmitting a mangled request.
    """
    body = json.dumps(requests, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# sealed JSONL records
# ----------------------------------------------------------------------
def _record_digest(record: dict) -> str:
    body = json.dumps(record, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:LINE_SHA_WIDTH]


def seal_record(record: dict) -> str:
    """One JSONL line (no newline) with the record's checksum embedded."""
    sealed = {k: v for k, v in record.items() if k != LINE_SHA_KEY}
    sealed[LINE_SHA_KEY] = _record_digest(
        {k: v for k, v in record.items() if k != LINE_SHA_KEY}
    )
    return json.dumps(sealed, sort_keys=True)


def open_record(line: str) -> Tuple[Optional[dict], Optional[str]]:
    """Parse and verify one JSONL line.

    Returns ``(record, None)`` on success — with ``"_sha"`` stripped —
    or ``(None, corruption_class)``.  A line that fails to parse at
    all is ``truncated`` (the signature a killed writer leaves); a
    parseable record whose embedded checksum disagrees is
    ``bit_flipped``.  Records with no checksum load as-is: the JSONL
    stores predate sealing and fixtures may hand-write lines.
    """
    try:
        record = json.loads(line)
    except ValueError:
        return None, TRUNCATED
    if not isinstance(record, dict):
        return None, WRONG_SCHEMA
    declared = record.pop(LINE_SHA_KEY, None)
    if declared is None:
        return record, None
    if not isinstance(declared, str) or declared != _record_digest(record):
        return None, BIT_FLIPPED
    return record, None
