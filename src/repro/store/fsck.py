"""``repro fsck``: walk the store, verify every envelope, repair damage.

The reader paths already degrade gracefully — a corrupt cache entry is
a miss, a torn journal tail is a shorter resume — but degradation is
silent by design.  fsck is the loud counterpart: it walks every
durable artifact under one cache root, verifies the integrity envelope
or per-record checksums, and reports a per-class inventory
(``truncated`` / ``bit_flipped`` / ``wrong_schema`` / ``orphan_tmp``).

With ``--repair`` the damage is *removed from the store's hot path*
rather than deleted: whole-file damage (cache entries, unusable
journals, the serve snapshot) is quarantined into
``<cache>/lost+found/`` for post-mortems, and JSONL files whose damage
is confined to trailing or interior lines are rewritten in place with
only their verified records — the same write-then-rename discipline as
every other store write.  Either way the next run regenerates whatever
was lost; that regeneration is the correctness story, fsck just makes
it happen eagerly instead of lazily.

Exit status is 0 when the store is clean (or every finding was
repaired) and 1 while unrepaired damage remains, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.store import envelope as env
from repro.store import locks as locks_mod

__all__ = ["fsck", "main"]

DEFAULT_TMP_AGE_S = 60.0
"""A ``.tmp.<pid>`` younger than this may be a live writer: left alone."""

LOST_FOUND = "lost+found"


def _quarantine(root: Path, path: Path, repair: bool) -> Optional[str]:
    """Move ``path`` into ``<root>/lost+found/``, keeping its subpath.

    Returns the destination (relative to root) or ``None`` when not
    repairing / the move failed.
    """
    if not repair:
        return None
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = Path(path.name)
    dest = root / LOST_FOUND / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    if dest.exists():
        for n in range(1, 1000):
            candidate = dest.with_name(f"{dest.name}.{n}")
            if not candidate.exists():
                dest = candidate
                break
    try:
        os.replace(path, dest)
    except OSError:
        return None
    return str(dest.relative_to(root))


def _rewrite(path: Path, lines: List[str], repair: bool) -> bool:
    """Atomically replace ``path`` with the verified ``lines``."""
    if not repair:
        return False
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    return True


def _check_jsonl(path: Path, *, require_journal_header: bool):
    """Verify one JSONL store file line by line.

    Returns ``(good_lines, findings)`` where each finding is
    ``(kind, detail, line_number)``.  ``good_lines`` is the repaired
    content: every verified line, in order.  For journals the *first*
    line must be a valid schema header — without one the surviving
    lines carry no usable state and the whole file is damage.
    """
    from repro.experiments.journal import JOURNAL_SCHEMA

    raw = path.read_text(encoding="utf-8", errors="replace")
    good: List[str] = []
    findings = []
    header_ok = not require_journal_header
    for number, line in enumerate(raw.splitlines(), start=1):
        if not line.strip():
            continue
        record, kind = env.open_record(line)
        if record is None:
            findings.append((kind, f"line {number} unreadable", number))
            continue
        if require_journal_header and not good:
            if (record.get("kind") == "header"
                    and record.get("schema") == JOURNAL_SCHEMA):
                header_ok = True
            else:
                findings.append((
                    env.WRONG_SCHEMA,
                    f"line {number} is not a schema-{JOURNAL_SCHEMA} header",
                    number,
                ))
                continue
        good.append(line)
    if raw and not raw.endswith("\n") and not findings:
        # final newline missing but the last line still parsed: a
        # writer died between write() and the line separator — the
        # record itself is whole, so keep it and note nothing.
        pass
    return good, findings, header_ok


def fsck(
    cache_root: Union[str, Path],
    *,
    repair: bool = False,
    min_tmp_age_s: float = DEFAULT_TMP_AGE_S,
    now: Optional[float] = None,
) -> dict:
    """Verify every durable artifact under ``cache_root``.

    Returns the report dict the CLI prints; every finding also bumps
    the ambient ``store.corrupt.<class>`` counter so fsck shows up on
    the same probes the online readers use.
    """
    root = Path(cache_root)
    now = time.time() if now is None else now
    report = {
        "root": str(root),
        "repair": repair,
        "scanned": {"cache_entries": 0, "tmp_files": 0, "journals": 0,
                    "span_files": 0, "serve_snapshots": 0, "lock_files": 0},
        "corrupt": {kind: 0 for kind in env.CORRUPTION_CLASSES},
        "findings": [],
        "repaired": 0,
        "unrepaired": 0,
    }

    def finding(path: Path, store: str, kind: str, detail: str,
                action: Optional[str]) -> None:
        report["corrupt"][kind] += 1
        if action is None:
            report["unrepaired"] += 1
        else:
            report["repaired"] += 1
        try:
            shown = str(path.relative_to(root))
        except ValueError:
            shown = str(path)
        report["findings"].append({
            "path": shown, "store": store, "kind": kind,
            "detail": detail, "action": action or "none",
        })
        env.count_corruption(kind, store=store, path=shown, via="fsck")

    # -- cache entries -------------------------------------------------
    for path in sorted(root.glob("v*/??/*.pkl")):
        report["scanned"]["cache_entries"] += 1
        try:
            schema = int(path.parent.parent.name[1:])
        except ValueError:
            schema = -1
        try:
            blob = path.read_bytes()
        except OSError as exc:
            finding(path, "cache", env.TRUNCATED, f"unreadable: {exc}",
                    _quarantine(root, path, repair))
            continue
        try:
            env.unwrap(blob, schema=schema)
        except env.EnvelopeError as exc:
            finding(path, "cache", exc.kind, exc.detail,
                    _quarantine(root, path, repair))

    # -- orphan temp files from crashed writers ------------------------
    for pattern in ("v*/??/*.tmp.*", "journal/*.tmp.*", "spans/*.tmp.*"):
        for path in sorted(root.glob(pattern)):
            report["scanned"]["tmp_files"] += 1
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age < min_tmp_age_s:
                continue  # plausibly a live writer mid-rename
            finding(path, "cache", env.ORPHAN_TMP,
                    f"stale temp file ({age:.0f}s old)",
                    _quarantine(root, path, repair))

    # -- journals ------------------------------------------------------
    inflight = root / "journal" / "serve-inflight.json"
    for path in sorted(root.glob("journal/*.jsonl")):
        report["scanned"]["journals"] += 1
        good, problems, header_ok = _check_jsonl(
            path, require_journal_header=True)
        if not problems:
            continue
        if not header_ok or not good:
            # no usable prefix: the whole file is damage
            kind = problems[0][0]
            finding(path, "journal", kind,
                    f"unusable journal: {problems[0][1]}",
                    _quarantine(root, path, repair))
            continue
        action = "rewritten" if _rewrite(path, good, repair) else None
        for kind, detail, _number in problems:
            finding(path, "journal", kind, detail, action)

    # -- span stores ---------------------------------------------------
    for path in sorted(root.glob("spans/*.jsonl")):
        report["scanned"]["span_files"] += 1
        good, problems, _ = _check_jsonl(path, require_journal_header=False)
        if not problems:
            continue
        action = "rewritten" if _rewrite(path, good, repair) else None
        for kind, detail, _number in problems:
            finding(path, "spans", kind, detail, action)

    # -- serve inflight snapshot ---------------------------------------
    if inflight.exists():
        report["scanned"]["serve_snapshots"] += 1
        kind = detail = None
        try:
            doc = json.loads(inflight.read_text(encoding="utf-8",
                                                errors="replace"))
        except ValueError:
            kind, detail = env.TRUNCATED, "snapshot is not valid JSON"
        else:
            if not isinstance(doc, dict) or "requests" not in doc:
                kind, detail = env.WRONG_SCHEMA, "no requests field"
            else:
                declared = doc.get("sha256")
                if declared is not None and declared != env.snapshot_digest(
                        doc["requests"]):
                    kind = env.BIT_FLIPPED
                    detail = "snapshot sha256 mismatch"
        if kind is not None:
            finding(inflight, "serve", kind, detail,
                    _quarantine(root, inflight, repair))

    # -- lock inventory (informational) --------------------------------
    held = list(locks_mod.held_lock_files(root))
    stale = list(locks_mod.stale_lock_files(root))
    report["scanned"]["lock_files"] = len(held) + len(stale)
    report["locks"] = {"held": [p.stem for p in held], "stale": len(stale)}

    report["ok"] = report["unrepaired"] == 0
    return report


def main(argv=None) -> int:
    """``repro fsck``: verify (and optionally repair) the result store."""
    from repro.experiments.cache import default_cache_dir

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fsck",
        description="Verify every cache entry, journal, span store and "
                    "serve snapshot under the cache dir; classify damage "
                    "as truncated / bit_flipped / wrong_schema / "
                    "orphan_tmp.",
    )
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="store location (default: $REPRO_CACHE_DIR "
                             "or .repro-cache)")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine damaged files to lost+found/ and "
                             "rewrite JSONL stores to their verified lines")
    parser.add_argument("--min-tmp-age", type=float,
                        default=DEFAULT_TMP_AGE_S, metavar="SECONDS",
                        help="treat .tmp files younger than this as live "
                             "writers, not orphans (default %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)
    root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    report = fsck(root, repair=args.repair, min_tmp_age_s=args.min_tmp_age)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        scanned = report["scanned"]
        total = sum(report["corrupt"].values())
        print(f"fsck {report['root']}: scanned "
              f"{scanned['cache_entries']} entries, "
              f"{scanned['journals']} journals, "
              f"{scanned['span_files']} span files, "
              f"{scanned['tmp_files']} temp files")
        if total == 0:
            print("fsck: store is clean")
        else:
            classes = ", ".join(f"{kind}={n}" for kind, n
                                in sorted(report["corrupt"].items()) if n)
            print(f"fsck: {total} findings ({classes}); "
                  f"{report['repaired']} repaired, "
                  f"{report['unrepaired']} unrepaired")
            for item in report["findings"]:
                print(f"  [{item['kind']}] {item['path']}: "
                      f"{item['detail']} -> {item['action']}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
