"""Durable-state integrity layer: every on-disk artifact is verified.

The runtime path has been fault-tolerant since PR 5 (retries,
quarantine, resume, cluster leases), but everything it survives
*through* — the pickle result cache, the JSONL journals and span
stores, the serve-inflight snapshot — used to be trusted blindly.
This package is the shared discipline those stores now route through,
the software analogue of RAIDR-style retention verification: skipping
work (cache replay, journal resume) is only safe when the stored state
it relies on is *checked*, not assumed.

Four pieces:

:mod:`repro.store.envelope`
    The integrity envelope: a self-describing header (magic, schema,
    payload length, SHA-256) around binary payloads, and per-record
    checksums for JSONL lines.  Readers classify failures —
    ``truncated`` / ``bit_flipped`` / ``wrong_schema`` / ``orphan_tmp``
    — bump ``store.corrupt.<class>`` counters, and degrade to a miss
    instead of raising.
:mod:`repro.store.locks`
    Advisory file locks (``fcntl.flock`` with a portable fallback) and
    the run-id allocation protocol: two processes sharing one cache
    dir can never interleave a journal or double-claim a run id.
:mod:`repro.store.gc`
    Retention GC (``repro gc``): prune cache entries, journals and
    span stores by size / age / keep-last-N-runs, never touching state
    referenced by an in-progress run's lock.
:mod:`repro.store.fsck`
    ``repro fsck [--repair]``: walk every store, verify every
    envelope, report a per-class inventory, and quarantine damage to
    ``<cache>/lost+found/`` so the next run regenerates it.

Write-path hardening rides along: a put/append that hits ENOSPC/EIO
disables that store for the run (``store.degraded`` gauge, one
warning) and the run completes uncached rather than crashing.
"""

from repro.store.envelope import (
    CORRUPTION_CLASSES,
    ENVELOPE_VERSION,
    EnvelopeError,
    check_header,
    open_record,
    seal_record,
    unwrap,
    wrap,
)
from repro.store.fsck import fsck
from repro.store.gc import GCPolicy, collect
from repro.store.locks import FileLock, acquire_run_id, run_lock_path

__all__ = [
    "CORRUPTION_CLASSES",
    "ENVELOPE_VERSION",
    "EnvelopeError",
    "FileLock",
    "GCPolicy",
    "acquire_run_id",
    "check_header",
    "collect",
    "fsck",
    "open_record",
    "run_lock_path",
    "seal_record",
    "unwrap",
    "wrap",
]
