"""System configuration (paper Table II) and capacity scaling.

:class:`SystemConfig` bundles everything a :class:`~repro.core.zero_refresh.ZeroRefreshSystem`
needs: DRAM geometry, timing/temperature, the active transformation
stages, cell-type identification quality, the refresh engine mode and
the OS cleansing policy.

The paper simulates 32 GB; holding 32 GB of content in a Python process
is pointless because every reported metric is a ratio, so
:meth:`SystemConfig.scaled` builds capacity-reduced configurations that
preserve all structural ratios (chips, banks, row size, rows per AR
command).  ``tests/core/test_scaling_invariance.py`` demonstrates the
ratios are scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.geometry import DramGeometry
from repro.dram.timing import TemperatureMode, TimingParams
from repro.osmodel.pages import CleansePolicy
from repro.transform.codec import StageSelection


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration."""

    geometry: DramGeometry = field(default_factory=DramGeometry)
    timing: TimingParams = field(default_factory=TimingParams)
    stages: StageSelection = field(default_factory=StageSelection.full)
    refresh_mode: str = "zero-refresh"  # 'zero-refresh' | 'conventional' | 'naive'
    refresh_policy: str = "per-bank"  # 'per-bank' | 'all-bank' (Sec. IV-A)
    staggered_counters: bool = True
    celltype_error_rate: float = 0.0
    cleanse_policy: CleansePolicy = CleansePolicy.ZERO_ON_FREE
    num_cores: int = 4
    seed: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def scaled(
        cls,
        total_bytes: int = 32 << 20,
        temperature: TemperatureMode = TemperatureMode.EXTENDED,
        cell_interleave: int = 64,
        row_bytes: int = 4096,
        **overrides,
    ) -> "SystemConfig":
        """A Table II-ratio system at reduced capacity.

        ``cell_interleave`` defaults to 64 rows (instead of the
        device-typical 512) so that scaled memories still contain many
        true/anti alternations; the codec and detector are agnostic to
        the value.
        """
        rows_per_ar = overrides.pop("rows_per_ar", 128)
        geometry = DramGeometry.scaled(
            total_bytes=total_bytes,
            row_bytes=row_bytes,
            rows_per_ar=rows_per_ar,
            cell_interleave=cell_interleave,
            word_bytes=overrides.pop("word_bytes", 8),
            line_bytes=overrides.pop("line_bytes", 64),
        )
        timing = TimingParams().with_temperature(temperature)
        return cls(geometry=geometry, timing=timing, **overrides)

    @classmethod
    def paper(cls, **overrides) -> "SystemConfig":
        """The full 32 GB Table II configuration (metadata-scale use only)."""
        return cls(geometry=DramGeometry.paper_config(), **overrides)

    # ------------------------------------------------------------------
    def conventional(self) -> "SystemConfig":
        """The matching conventional-refresh baseline configuration."""
        return replace(self, refresh_mode="conventional")

    def with_temperature(self, temperature: TemperatureMode) -> "SystemConfig":
        return replace(self, timing=self.timing.with_temperature(temperature))

    def with_stages(self, stages: StageSelection) -> "SystemConfig":
        return replace(self, stages=stages)

    # ------------------------------------------------------------------
    def table2(self) -> dict:
        """The Table II summary of this configuration (for reports)."""
        g, t = self.geometry, self.timing
        return {
            "cores": f"{self.num_cores} cores, out-of-order x86",
            "memory": (
                f"{g.total_bytes / (1 << 30):.3g} GB, {g.num_chips} chips, "
                f"{g.num_banks} banks, {g.row_bytes // 1024} KB row buffer"
            ),
            "timing (ns)": (
                f"tRAS={t.tras_ns:g}, tRCD={t.trcd_ns:g}, tRRD={t.trrd_ns:g}, "
                f"tFAW={t.tfaw_ns:g}, tRFC={t.trfc_ns:g}"
            ),
            "currents (mA)": (
                f"IDD0={t.currents.idd0:g}, IDD2P={t.currents.idd2p:g}, "
                f"IDD2N={t.currents.idd2n:g}, IDD3N={t.currents.idd3n:g}, "
                f"IDD4W={t.currents.idd4w:g}, IDD4R={t.currents.idd4r:g}, "
                f"IDD5={t.currents.idd5:g}, IDD6={t.currents.idd6:g}, "
                f"IDD7={t.currents.idd7:g}"
            ),
            "retention": f"{t.tret_s * 1000:g} ms ({t.temperature.value})",
        }
