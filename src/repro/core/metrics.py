"""Run-level result containers.

:class:`~repro.dram.refresh.RefreshStats` (re-exported here) carries the
refresh counters; :class:`RunResult` adds the derived energy and IPC
views for one complete simulation run.

``RunResult`` and everything it nests are plain dataclasses of
primitives, so results pickle cleanly — the experiment engine ships
them across process boundaries and stores them in the on-disk result
cache.  :meth:`RunResult.to_dict` provides the JSON-able view used by
run manifests and reports.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.cpu.core import IpcResult
from repro.dram.refresh import RefreshStats
from repro.energy.accounting import EnergyReport

__all__ = ["RefreshStats", "RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Everything measured over one multi-window simulation run."""

    refresh: RefreshStats
    energy: EnergyReport
    ipc: Optional[IpcResult] = None
    allocated_fraction: float = 1.0
    benchmark: str = ""

    @property
    def normalized_refresh(self) -> float:
        """Refresh operations vs. conventional (Fig. 14's y-axis)."""
        return self.refresh.normalized_refresh()

    @property
    def refresh_reduction(self) -> float:
        return self.refresh.reduction()

    @property
    def normalized_energy(self) -> float:
        """Refresh-path energy vs. conventional (Fig. 15's y-axis)."""
        return self.energy.normalized()

    @property
    def normalized_ipc(self) -> Optional[float]:
        return self.ipc.normalized_ipc if self.ipc else None

    def to_dict(self) -> Dict:
        """JSON-able form: raw counters plus the derived headline ratios."""
        return {
            "benchmark": self.benchmark,
            "allocated_fraction": self.allocated_fraction,
            "normalized_refresh": self.normalized_refresh,
            "normalized_energy": self.normalized_energy,
            "normalized_ipc": self.normalized_ipc,
            "refresh": asdict(self.refresh),
            "energy": asdict(self.energy),
            "ipc": asdict(self.ipc) if self.ipc else None,
        }

    def summary(self) -> str:
        parts = [
            f"benchmark={self.benchmark or '-'}",
            f"alloc={self.allocated_fraction:.0%}",
            f"refresh={self.normalized_refresh:.3f}",
            f"energy={self.normalized_energy:.3f}",
        ]
        if self.ipc:
            parts.append(f"ipc={self.ipc.normalized_ipc:.3f}")
        return " ".join(parts)
