"""Core orchestration: configuration, the full system, result types."""

from repro.core.config import SystemConfig
from repro.core.metrics import RefreshStats, RunResult
from repro.core.multirank import MultiRankSystem
from repro.core.zero_refresh import ZeroRefreshSystem

__all__ = ["MultiRankSystem", "RefreshStats", "RunResult", "SystemConfig",
           "ZeroRefreshSystem"]
