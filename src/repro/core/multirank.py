"""Multi-rank DIMM aggregation (paper Sec. II-A memory hierarchy).

A DIMM consists of several ranks; each rank is its own storage and
refresh domain — a rank's chips act in unison, and the memory
controller schedules per-rank (or per-bank within rank) AR commands
independently.  Nothing couples ranks in any mechanism this
reproduction models, so a multi-rank DIMM is exactly a set of parallel
single-rank systems with shared configuration and aggregated
accounting.  :class:`MultiRankSystem` provides that aggregation as a
*kernel composition*: each rank exposes its
:class:`~repro.sim.kernel.SimKernel` and
:func:`~repro.sim.kernel.run_concurrent` drives them in lockstep over
the shared timeline — there is no second hand-rolled window loop.

* population spreads the OS's allocated share across ranks (pages are
  rank-interleaved at the 64-page unit granularity in real systems;
  here each rank draws the same allocation fraction);
* every rank simulates the same retention windows, concurrently;
* refresh statistics aggregate via the explicit non-mutating
  :meth:`RefreshStats.aggregate_concurrent` (counters add, windows
  overlap); energy sums and IPC uses the rank-average unavailability
  (a demand access is served by the rank that owns its address).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.dram.refresh import RefreshStats
from repro.energy.accounting import EnergyReport
from repro.sim.kernel import run_concurrent
from repro.workloads.benchmarks import BenchmarkProfile


class MultiRankSystem:
    """A DIMM of ``num_ranks`` independent single-rank systems."""

    def __init__(self, config: SystemConfig, num_ranks: int = 2, probes=None):
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        self.config = config
        self.num_ranks = num_ranks
        self.ranks: List[ZeroRefreshSystem] = [
            ZeroRefreshSystem(replace(config, seed=config.seed + 1000 * r),
                              probes=probes)
            for r in range(num_ranks)
        ]

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.num_ranks * self.config.geometry.total_bytes

    def populate(self, profile: BenchmarkProfile,
                 allocated_fraction: float = 1.0, **kwargs) -> None:
        """Fill every rank with its share of the workload."""
        for rank in self.ranks:
            rank.populate(profile, allocated_fraction=allocated_fraction,
                          **kwargs)

    def run_windows(self, n_windows: int = 8,
                    warmup_windows: int = 1) -> RunResult:
        """Run all ranks' kernels in lockstep and aggregate their results.

        The per-rank results of the latest call stay available as
        ``last_rank_results`` for rank-level inspection.
        """
        kernels = [rank.make_kernel(name=f"rank{i}")
                   for i, rank in enumerate(self.ranks)]
        run_concurrent(kernels, n_windows, warmup_windows=warmup_windows)
        results = [rank.finalize_run(kernel)
                   for rank, kernel in zip(self.ranks, kernels)]
        self.last_rank_results = results
        refresh = RefreshStats.aggregate_concurrent(
            [result.refresh for result in results], windows=n_windows
        )
        energy = EnergyReport(
            refresh_nj=sum(r.energy.refresh_nj for r in results),
            ebdi_nj=sum(r.energy.ebdi_nj for r in results),
            sram_leakage_nj=sum(r.energy.sram_leakage_nj for r in results),
            status_access_nj=sum(r.energy.status_access_nj for r in results),
            baseline_refresh_nj=sum(r.energy.baseline_refresh_nj
                                    for r in results),
            duration_s=results[0].energy.duration_s,
        )
        # A demand access is served by one rank; the felt unavailability
        # is the per-rank average, so so is the IPC.
        ipc = results[0].ipc
        if ipc is not None and len(results) > 1:
            mean_u = sum(r.ipc.unavailability for r in results) / len(results)
            system = self.ranks[0]
            ipc = type(ipc)(
                benchmark=ipc.benchmark,
                baseline_ipc=ipc.baseline_ipc,
                ipc=system.core_model.ipc_at(system.profile, mean_u),
                baseline_unavailability=ipc.baseline_unavailability,
                unavailability=mean_u,
            )
        return RunResult(
            refresh=refresh,
            energy=energy,
            ipc=ipc,
            allocated_fraction=results[0].allocated_fraction,
            benchmark=results[0].benchmark,
        )

    def verify_integrity(self) -> bool:
        return all(rank.verify_integrity() for rank in self.ranks)

    def discharged_fraction(self) -> float:
        return sum(r.discharged_fraction() for r in self.ranks) / self.num_ranks
