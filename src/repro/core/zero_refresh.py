"""The complete ZERO-REFRESH system (paper Fig. 7, both sides).

:class:`ZeroRefreshSystem` wires every substrate together:

* CPU side — cell-type predictor, value-transformation codec, memory
  controller (EBDI op counting);
* DRAM side — device with true/anti cell layout, refresh engine with
  staggered counters, discharged-status and access-bit tables;
* OS — page allocator with the configured cleansing policy;
* instrumentation — energy accountant, bank-availability model,
  analytical core model, retention tracker.

Typical use::

    config = SystemConfig.scaled(total_bytes=32 << 20)
    system = ZeroRefreshSystem(config)
    system.populate(benchmark_profile("mcf"), allocated_fraction=0.70)
    result = system.run_windows(8)
    print(result.normalized_refresh, result.normalized_energy)

``populate`` fills the allocated share of memory with profile content
(the measured-before-start state, so the first window derives the
status tables); ``run_windows`` then simulates retention windows with
the profile's write traffic interleaved between AR commands exactly as
the access-bit protocol sees it.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.controller.memctrl import MemoryController
from repro.controller.scheduler import BankAvailabilityModel
from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.cpu.core import AnalyticalCoreModel
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshEngine, RefreshStats
from repro.dram.retention import RetentionTracker
from repro.energy.accounting import EnergyAccountant
from repro.obs import get_probes
from repro.osmodel.pages import PageAllocator
from repro.sim.kernel import SimKernel
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec
from repro.workloads.access import WorkingSetTraceGenerator
from repro.workloads.benchmarks import SEGMENT_ALIGN_PAGES, BenchmarkProfile
from repro.workloads.synthetic import generate_lines


class ZeroRefreshSystem:
    """End-to-end simulated system under one :class:`SystemConfig`.

    ``probes`` (a :class:`~repro.obs.probes.ProbeBus`) defaults to the
    ambient bus installed by :func:`repro.obs.instrument`; it is wired
    through the controller, the refresh engine, the energy accountant
    and the simulation kernel.
    """

    def __init__(self, config: SystemConfig, probes=None):
        self.config = config
        self.probes = probes if probes is not None else get_probes()
        geometry: DramGeometry = config.geometry
        self.rng = np.random.default_rng(config.seed)
        self.layout = CellTypeLayout(interleave=geometry.cell_interleave)
        self.device = DramDevice(geometry, self.layout)
        self.predictor = CellTypePredictor.from_layout(
            self.layout,
            geometry.rows_per_bank,
            error_rate=config.celltype_error_rate,
            rng=self.rng,
        )
        self.codec = ValueTransformCodec(
            self.predictor,
            num_chips=geometry.num_chips,
            word_bytes=geometry.word_bytes,
            line_bytes=geometry.line_bytes,
            stages=config.stages,
        )
        self.controller = MemoryController(self.device, self.codec,
                                           probes=self.probes)
        if config.refresh_mode == "hybrid":
            from repro.baselines.hybrid import HybridRefreshEngine

            self.engine = HybridRefreshEngine(
                self.device,
                timing=config.timing,
                staggered=config.staggered_counters,
                policy=config.refresh_policy,
                probes=self.probes,
            )
        else:
            self.engine = RefreshEngine(
                self.device,
                timing=config.timing,
                mode=config.refresh_mode,
                staggered=config.staggered_counters,
                policy=config.refresh_policy,
                probes=self.probes,
            )
        self.allocator = PageAllocator(
            self.controller, policy=config.cleanse_policy, rng=self.rng
        )
        self.availability = BankAvailabilityModel(
            timing=config.timing, num_banks=geometry.num_banks
        )
        self.accountant = EnergyAccountant(
            geometry,
            config.timing,
            reference_geometry=DramGeometry.paper_config(),
            probes=self.probes,
        )
        self.core_model = AnalyticalCoreModel(self.availability)
        # Hybrid recency skipping is only sound with a retention guard
        # band (schedule twice as fast as the true retention time); the
        # integrity checker uses the matching physical retention.
        physical_tret = config.timing.tret_s * (
            2.0 if config.refresh_mode == "hybrid" else 1.0
        )
        self.retention = RetentionTracker(self.device, physical_tret)
        self.profile: Optional[BenchmarkProfile] = None
        self._page_class: Dict[int, str] = {}
        self._trace_generator: Optional[WorkingSetTraceGenerator] = None
        self.time_s = 0.0

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def populate(
        self,
        profile: BenchmarkProfile,
        allocated_fraction: float = 1.0,
        working_set_fraction: float = 0.05,
        accesses_per_window: Optional[int] = None,
        write_fraction: float = 0.25,
    ) -> None:
        """Allocate memory and fill it with the benchmark's content.

        Allocation is performed in 64-page units (buddy-allocator-like
        physical contiguity) so the content keeps the class homogeneity
        of real segments; the idle remainder stays zero (the
        zero-on-free state).  A working-set trace generator is prepared
        for :meth:`run_windows`; ``accesses_per_window`` defaults to a
        value proportional to the profile's MPKI.
        """
        with self.probes.phase("populate"):
            self._populate(profile, allocated_fraction, working_set_fraction,
                           accesses_per_window, write_fraction)
        self.probes.gauge("sys.allocated_fraction",
                          self.allocator.allocated_fraction)

    def _populate(
        self,
        profile: BenchmarkProfile,
        allocated_fraction: float,
        working_set_fraction: float,
        accesses_per_window: Optional[int],
        write_fraction: float,
    ) -> None:
        self.profile = profile
        pages = self._allocate_units(allocated_fraction)
        pages.sort()
        # Idle pages have been cleansed by the zero-on-free policy since
        # boot; their zero content went through the transformation, so
        # anti-cell rows hold the complemented (all-ones) image.
        self._zero_fill_pages(self.allocator.free_pages)
        if len(pages):
            content = profile.generate_pages(len(pages), self.rng,
                                             self.config.geometry.lines_per_page)
            self.controller.populate_pages(pages, self._as_words(content),
                                           self.time_s, notify=False)
            self._record_classes(pages, profile)
        # A longer retention window sees proportionally more of the
        # program's footprint written between two refreshes of a row —
        # the Fig. 16 effect (64 ms vs 32 ms): both the hot-region reach
        # and the access count scale with the window.
        window_scale = self.config.timing.tret_s / 0.032
        ws_size = (
            max(1, int(len(pages) * working_set_fraction * window_scale))
            if len(pages) else 0
        )
        ws_size = min(ws_size, len(pages))
        if ws_size:
            # The working set is a *contiguous* slice of the allocated
            # pages: within one retention window a program hammers a hot
            # region, not uniformly scattered pages.  This is what keeps
            # the per-window dirty-set fraction bounded (and what makes
            # the access-bit filter effective at the paper's scale).
            # Align the hot region to the AR-set span (rows_per_ar rows
            # in each bank = rows_per_ar * num_banks consecutive pages)
            # so it dirties the minimum number of refresh sets, as a
            # region-local working set does at deployment scale.
            span = self.config.geometry.rows_per_ar * self.config.geometry.num_banks
            limit = max(1, len(pages) - ws_size + 1)
            start = int(self.rng.integers(0, limit))
            start = (start // span) * span
            working_set = pages[start:start + ws_size]
            if accesses_per_window is None:
                # Traffic proportional to memory intensity and to the
                # window length, normalised so the hot region is
                # revisited every window without flooding every AR set
                # of the scaled memory.
                accesses_per_window = max(
                    64, int(profile.mpki * len(pages) / 16 * window_scale)
                )
            self._trace_generator = WorkingSetTraceGenerator(
                working_set_pages=np.sort(working_set),
                lines_per_page=self.config.geometry.lines_per_page,
                accesses_per_window=accesses_per_window,
                write_fraction=write_fraction,
                rng=self.rng,
            )
        else:
            self._trace_generator = None

    def _allocate_units(self, fraction: float) -> np.ndarray:
        """Allocate a fraction of memory in contiguous 64-page units."""
        total_pages = self.allocator.total_pages
        unit = min(SEGMENT_ALIGN_PAGES, total_pages)
        n_units = total_pages // unit
        want_units = int(round(fraction * n_units))
        chosen = self.rng.choice(n_units, size=want_units, replace=False)
        pages = (chosen[:, None] * unit + np.arange(unit)).ravel()
        # Mark them allocated through the allocator (bypassing its FIFO
        # order, which models an arbitrary long-running allocation state).
        self.allocator._allocated[pages] = True
        self.allocator._free_list = [
            p for p in self.allocator._free_list if not self.allocator._allocated[p]
        ]
        return pages

    def _zero_fill_pages(self, pages: np.ndarray) -> None:
        """Store transform-encoded zeros into the given pages.

        Fast path equivalent to ``controller.zero_pages``: encoding a
        zero line is exactly all-0 stored bits for true-cell rows and
        all-1 for anti-cell rows (every pipeline stage maps zero to
        zero, then the anti complement flips it) — verified against the
        codec by ``tests/core/test_system.py``.
        """
        if len(pages) == 0:
            return
        banks, rows = self.controller.mapper.page_rows(np.asarray(pages))
        banks = np.ravel(np.atleast_1d(banks))
        rows = np.ravel(np.atleast_1d(rows))
        full = self.device.banks[0]._full
        anti = self.predictor.predict_anti(rows)
        for bank_idx in np.unique(banks):
            bank = self.device.banks[int(bank_idx)]
            mask = banks == bank_idx
            bank_rows = rows[mask]
            bank.data[bank_rows] = np.where(anti[mask], full, 0)[
                :, None, None, None
            ].astype(bank.data.dtype)
            bank.dirty[bank_rows] = True
            bank.last_refresh[bank_rows] = self.time_s

    def _record_classes(self, pages: np.ndarray, profile: BenchmarkProfile) -> None:
        """Remember each page's content class so writes stay in-class."""
        cursor = 0
        for name, count in profile.segment_classes(len(pages), self.rng):
            for page in pages[cursor:cursor + count]:
                self._page_class[int(page)] = name
            cursor += count

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run_windows(self, n_windows: int = 8, warmup_windows: int = 1,
                    compute_ipc: bool = True) -> RunResult:
        """Simulate retention windows with interleaved write traffic.

        ``warmup_windows`` are simulated but not measured: the first
        pass over freshly populated memory must refresh everything while
        it derives the discharged-status table, a transient the paper's
        fast-forwarded simulations have already passed.  The result
        aggregates the ``n_windows`` measured windows (the paper uses 8:
        256 ms at the 32 ms extended rate).

        The windows themselves are driven by the unified
        :class:`~repro.sim.kernel.SimKernel`; this method is kernel
        construction plus result finalisation.
        """
        kernel = self.make_kernel()
        kernel.run(n_windows, warmup_windows=warmup_windows)
        return self.finalize_run(kernel, compute_ipc=compute_ipc)

    def make_kernel(self, name: str = "") -> SimKernel:
        """A :class:`~repro.sim.kernel.SimKernel` over this system's engine.

        The kernel starts at the system's current simulated time and
        feeds it this system's window traffic; compositions (multi-rank
        DIMMs) drive several of these in lockstep and call
        :meth:`finalize_run` per member.
        """
        return SimKernel(
            self.engine,
            self.config.timing.tret_s,
            traffic=self._window_traffic,
            on_measure_start=self._begin_measurement,
            probes=self.probes,
            start_time_s=self.time_s,
            name=name or self.config.refresh_mode,
        )

    def finalize_run(self, kernel: SimKernel, compute_ipc: bool = True) -> RunResult:
        """Fold a finished kernel run into this system's :class:`RunResult`.

        Syncs the system clock to the kernel's and derives the energy
        and IPC views from the measured stats.
        """
        self.time_s = kernel.time_s
        total = kernel.stats
        energy = self.accountant.report(total, ebdi_ops=self.controller.ebdi_ops)
        ipc = None
        if compute_ipc and self.profile is not None:
            ipc = self.core_model.evaluate(self.profile, total)
        return RunResult(
            refresh=total,
            energy=energy,
            ipc=ipc,
            allocated_fraction=self.allocator.allocated_fraction,
            benchmark=self.profile.name if self.profile else "",
        )

    def _begin_measurement(self) -> None:
        """Measurement boundary: EBDI ops count only measured windows."""
        self.controller.ebdi_ops = 0

    # ------------------------------------------------------------------
    # checkpointing (system-owned state the kernel cannot see)
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """System-level state for a kernel checkpoint's ``extra`` slot.

        The engine covers device + tracking state; what the *system*
        owns is the shared RNG stream (every traffic draw comes from
        it, so replaying windows bit-identically requires its exact
        position), the system clock, and the controller's measured EBDI
        op count.
        """
        return {
            "rng": self.rng.bit_generator.state,
            "time_s": self.time_s,
            "ebdi_ops": self.controller.ebdi_ops,
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply :meth:`checkpoint_state` output (after a kernel
        restore; see ``tests/sim/test_checkpoint.py`` for the pairing)."""
        self.rng.bit_generator.state = state["rng"]
        self.time_s = float(state["time_s"])
        self.controller.ebdi_ops = int(state["ebdi_ops"])

    def _window_traffic(self, window_index: int, t0: float):
        """Kernel traffic source: one window's trace as a write hook."""
        if self._trace_generator is None:
            return None
        trace = self._trace_generator.window_trace()
        if trace is None:
            return None
        return self._make_write_hook(trace, t0)

    def _make_write_hook(self, trace, t0: float):
        """Spread a window's traffic uniformly between AR command slots.

        Writes go through the controller (new in-class values).  Reads
        matter only to access-recency mechanisms: when the engine
        declares ``wants_access_events`` (hybrid mode) they are applied
        as row activations that recharge the row and feed the recency
        table.
        """
        recency_aware = self.engine.capabilities.wants_access_events
        writes = trace.writes
        reads = trace.reads if recency_aware else np.empty(0, dtype=np.int64)
        window = self.config.timing.tret_s
        wtimes = t0 + np.sort(self.rng.random(len(writes))) * window
        rtimes = t0 + np.sort(self.rng.random(len(reads))) * window
        state = {"w": 0, "r": 0}

        def hook(span_start: float, span_end: float) -> None:
            w0 = state["w"]
            w1 = w0
            while w1 < len(writes) and wtimes[w1] < span_end:
                w1 += 1
            if w1 > w0:
                self._apply_writes(writes[w0:w1], span_start)
                state["w"] = w1
            r0 = state["r"]
            r1 = r0
            while r1 < len(reads) and rtimes[r1] < span_end:
                r1 += 1
            if r1 > r0:
                self._apply_reads(reads[r0:r1], span_start)
                state["r"] = r1

        return hook

    def _apply_reads(self, line_addrs: np.ndarray, time_s: float) -> None:
        """Row activations from demand reads: recharge + recency note."""
        banks, rows, _ = self.controller.mapper.line_location(line_addrs)
        banks = np.atleast_1d(banks)
        rows = np.atleast_1d(rows)
        for bank_idx in np.unique(banks):
            bank_rows = np.unique(rows[banks == bank_idx])
            bank = self.device.banks[int(bank_idx)]
            bank.last_refresh[bank_rows] = np.maximum(
                bank.last_refresh[bank_rows], time_s
            )
            for row in bank_rows:
                self.engine.note_access(int(bank_idx), int(row))

    def _as_words(self, lines: np.ndarray) -> np.ndarray:
        """Re-view 64-bit content in the configured word size.

        Content generators emit 8-byte words; for the 4 B word-size
        ablation the same bytes are re-sliced into twice as many 32-bit
        words (a pure view, values unchanged)."""
        if self.codec.dtype == lines.dtype:
            return lines
        flat = np.ascontiguousarray(lines).view(self.codec.dtype)
        return flat.reshape(
            lines.shape[:-1] + (self.config.geometry.words_per_line,)
        )

    def _apply_writes(self, line_addrs: np.ndarray, time_s: float) -> None:
        """Write new in-class values to the given lines."""
        lines = np.empty((len(line_addrs), 8), dtype=np.uint64)
        pages = line_addrs // self.config.geometry.lines_per_page
        for i, page in enumerate(pages):
            name = self._page_class.get(int(page), "zero")
            lines[i] = generate_lines(name, 1, self.rng)[0]
        self.controller.write_lines(line_addrs, self._as_words(lines), time_s)

    # ------------------------------------------------------------------
    # convenience measurements
    # ------------------------------------------------------------------
    def discharged_fraction(self) -> float:
        """Current fraction of fully-discharged logical rows."""
        return self.device.discharged_row_fraction()

    def verify_integrity(self) -> bool:
        """True when no charged cell has outlived the retention window."""
        return self.retention.verify_no_loss(self.time_s)

    def read_page(self, page: int) -> np.ndarray:
        """Read a page back through the full inverse transformation."""
        return self.controller.read_page(page, self.time_s)
