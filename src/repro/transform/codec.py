"""Composed value-transformation codec (paper Fig. 9).

:class:`ValueTransformCodec` chains the three pipeline stages — EBDI,
bit-plane transposition and data rotation — together with the cell-type
predictor, converting between logical cacheline contents and the bit
image actually stored across the chips of a rank.

Stage order on the write path (LLC eviction -> DRAM):

1. EBDI base-delta conversion with the true-cell zigzag code.
2. Bit-plane transposition of the delta words.
3. Complementing of the whole line when the target row is predicted to
   be an anti-cell row (equivalent to the paper's per-stage anti-cell
   encodings, since complementing commutes with both bit permutations).
4. Data rotation: word-to-chip assignment rotated by the row index.

Reads apply the exact inverse, using the *same* cell-type prediction,
so the round trip is exact even under misprediction (paper Sec. V-B).

:class:`StageSelection` switches stages off individually, which is what
the stage-contribution and cell-type ablation experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.transform.bitplane import BitPlaneTransform
from repro.transform.celltype import CellType, CellTypePredictor
from repro.transform.ebdi import EbdiCodec
from repro.transform.rotation import RotationMapper


@dataclass(frozen=True)
class StageSelection:
    """Which pipeline stages are active.

    ``ebdi``
        Base-delta conversion with the zigzag delta code.
    ``bitplane``
        Bit-plane transposition of the delta words.
    ``rotation``
        Per-row rotation of the word-to-chip assignment.
    ``celltype_aware``
        Complement lines stored in predicted anti-cell rows.  With this
        off, zero data in anti-cell rows stays charged and cannot be
        skipped.
    """

    ebdi: bool = True
    bitplane: bool = True
    rotation: bool = True
    celltype_aware: bool = True

    @classmethod
    def none(cls) -> "StageSelection":
        """Raw storage: values go to DRAM untouched (conventional system)."""
        return cls(ebdi=False, bitplane=False, rotation=False, celltype_aware=False)

    @classmethod
    def full(cls) -> "StageSelection":
        """The complete ZERO-REFRESH pipeline."""
        return cls()


class ValueTransformCodec:
    """Round-trip codec between cachelines and per-chip stored words.

    Parameters
    ----------
    predictor:
        Cell-type predictions per row, shared by encode and decode.
    num_chips, word_bytes, line_bytes:
        Rank and line geometry (defaults follow Table II).
    stages:
        Active pipeline stages; defaults to the full pipeline.
    """

    def __init__(
        self,
        predictor: CellTypePredictor,
        num_chips: int = 8,
        word_bytes: int = 8,
        line_bytes: int = 64,
        stages: Optional[StageSelection] = None,
    ):
        if stages is None:
            stages = StageSelection.full()
        self.predictor = predictor
        self.stages = stages
        self.ebdi = EbdiCodec(word_bytes, line_bytes)
        self.bitplane = BitPlaneTransform(word_bytes, line_bytes)
        self.rotation = RotationMapper(
            num_chips, word_bytes, line_bytes, rotate=stages.rotation
        )
        self.word_bytes = word_bytes
        self.line_bytes = line_bytes
        self.num_chips = num_chips
        self.dtype = self.ebdi.dtype

    # ------------------------------------------------------------------
    def transform_lines(self, lines: np.ndarray, row_index: int) -> np.ndarray:
        """Apply the per-line stages (EBDI, bit-plane, complement) only.

        Returns the transformed lines *before* chip distribution; useful
        for content analysis and tests.
        """
        out = lines
        if self.stages.ebdi:
            out = self.ebdi.encode(out, CellType.TRUE)
        if self.stages.bitplane:
            out = self.bitplane.apply(out)
        if self._store_complemented(row_index):
            out = np.invert(out)
        return out

    def untransform_lines(self, encoded: np.ndarray, row_index: int) -> np.ndarray:
        """Invert :meth:`transform_lines`."""
        out = encoded
        if self._store_complemented(row_index):
            out = np.invert(out)
        if self.stages.bitplane:
            out = self.bitplane.invert(out)
        if self.stages.ebdi:
            out = self.ebdi.decode(out, CellType.TRUE)
        return out

    # ------------------------------------------------------------------
    # grouped interface (vectorised over many independent requests)
    # ------------------------------------------------------------------
    def transform_lines_many(
        self, line_groups: "list[np.ndarray]", row_indices: "list[int]"
    ) -> "list[np.ndarray]":
        """Vectorised :meth:`transform_lines` over several line groups.

        ``line_groups[i]`` is a ``(n_i, words_per_line)`` array bound
        for row ``row_indices[i]``.  The row-independent stages (EBDI,
        bit-plane) run in one pass over the concatenation of every
        group — this is the micro-batching fast path of the serving
        layer — and the per-row anti-cell complement is then applied
        group by group, so each returned group is bit-identical to
        ``transform_lines(line_groups[i], row_indices[i])``.
        """
        if not line_groups:
            return []
        counts = [len(group) for group in line_groups]
        flat = np.concatenate(line_groups, axis=0)
        if self.stages.ebdi:
            flat = self.ebdi.encode(flat, CellType.TRUE)
        if self.stages.bitplane:
            flat = self.bitplane.apply(flat)
        out = []
        offset = 0
        for count, row_index in zip(counts, row_indices):
            group = flat[offset:offset + count]
            if self._store_complemented(row_index):
                group = np.invert(group)
            out.append(group)
            offset += count
        return out

    def untransform_lines_many(
        self, encoded_groups: "list[np.ndarray]", row_indices: "list[int]"
    ) -> "list[np.ndarray]":
        """Invert :meth:`transform_lines_many` (grouped decode path)."""
        if not encoded_groups:
            return []
        counts = [len(group) for group in encoded_groups]
        prepared = [
            np.invert(group) if self._store_complemented(row_index) else group
            for group, row_index in zip(encoded_groups, row_indices)
        ]
        flat = np.concatenate(prepared, axis=0)
        if self.stages.bitplane:
            flat = self.bitplane.invert(flat)
        if self.stages.ebdi:
            flat = self.ebdi.decode(flat, CellType.TRUE)
        out = []
        offset = 0
        for count in counts:
            out.append(flat[offset:offset + count])
            offset += count
        return out

    # ------------------------------------------------------------------
    def encode_row(self, lines: np.ndarray, row_index: int) -> np.ndarray:
        """Encode a logical row's lines into per-chip stored words.

        ``lines`` has shape ``(n_lines, words_per_line)``; returns shape
        ``(num_chips, n_lines, words_per_chip)`` of stored (bus-level)
        words, ready to be written into chip row ``row_index``.
        """
        return self.rotation.scatter(self.transform_lines(lines, row_index), row_index)

    def decode_row(self, chip_data: np.ndarray, row_index: int) -> np.ndarray:
        """Invert :meth:`encode_row`, recovering the original lines."""
        return self.untransform_lines(
            self.rotation.gather(chip_data, row_index), row_index
        )

    # ------------------------------------------------------------------
    # bulk interface (vectorised over many rows)
    # ------------------------------------------------------------------
    def encode_rows(self, lines: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode_row` over many logical rows.

        ``lines`` has shape ``(n_rows, lines_per_row, words_per_line)``
        and ``row_indices`` the matching row numbers.  Returns shape
        ``(n_rows, num_chips, lines_per_row, words_per_chip)`` — the
        layout banks store rows in.

        The per-line stages are row-independent, so they run in one pass
        over every line; the anti-cell complement and the rotation are
        then applied per equivalence class (there are only
        ``2 * num_chips`` of them), keeping population of large memories
        fast.
        """
        lines = np.asarray(lines)
        row_indices = np.asarray(row_indices)
        n_rows, lines_per_row, words = lines.shape
        flat = lines.reshape(n_rows * lines_per_row, words)
        if self.stages.ebdi:
            flat = self.ebdi.encode(flat, CellType.TRUE)
        if self.stages.bitplane:
            flat = self.bitplane.apply(flat)
        transformed = flat.reshape(n_rows, lines_per_row, words)
        if self.stages.celltype_aware:
            anti = self.predictor.predict_anti(row_indices)
            if anti.any():
                transformed = transformed.copy()
                transformed[anti] = np.invert(transformed[anti])
        out = np.empty(
            (n_rows, self.num_chips, lines_per_row, self.rotation.words_per_chip),
            dtype=self.dtype,
        )
        rotations = (
            row_indices % self.num_chips
            if self.rotation.rotate
            else np.zeros(n_rows, dtype=np.int64)
        )
        for rot in np.unique(rotations):
            idx = np.flatnonzero(rotations == rot)
            for chip in range(self.num_chips):
                word_slots = self.rotation.words_of_chip(chip, int(rot))
                out[idx, chip] = transformed[idx][:, :, word_slots]
        return out

    def decode_rows(self, chip_data: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode_rows`."""
        chip_data = np.asarray(chip_data)
        row_indices = np.asarray(row_indices)
        n_rows, _, lines_per_row, _ = chip_data.shape
        words = self.rotation.words_per_line
        gathered = np.empty((n_rows, lines_per_row, words), dtype=self.dtype)
        rotations = (
            row_indices % self.num_chips
            if self.rotation.rotate
            else np.zeros(n_rows, dtype=np.int64)
        )
        for rot in np.unique(rotations):
            idx = np.flatnonzero(rotations == rot)
            for chip in range(self.num_chips):
                word_slots = self.rotation.words_of_chip(chip, int(rot))
                gathered[np.ix_(idx, np.arange(lines_per_row), word_slots)] = (
                    chip_data[idx, chip]
                )
        if self.stages.celltype_aware:
            anti = self.predictor.predict_anti(row_indices)
            if anti.any():
                gathered[anti] = np.invert(gathered[anti])
        flat = gathered.reshape(n_rows * lines_per_row, words)
        if self.stages.bitplane:
            flat = self.bitplane.invert(flat)
        if self.stages.ebdi:
            flat = self.ebdi.decode(flat, CellType.TRUE)
        return flat.reshape(n_rows, lines_per_row, words)

    # ------------------------------------------------------------------
    def _store_complemented(self, row_index: int) -> bool:
        """Whether lines bound for ``row_index`` are stored complemented."""
        return (
            self.stages.celltype_aware
            and self.predictor.predict(row_index) is CellType.ANTI
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ValueTransformCodec(chips={self.num_chips}, "
            f"word_bytes={self.word_bytes}, line_bytes={self.line_bytes}, "
            f"stages={self.stages})"
        )
