"""True/anti-cell modelling and identification (paper Sec. II-B, V-B).

A DRAM sense amplifier sits between two row partitions.  Cells wired to
the output side read their charged state as logical 1 (*true cells*);
cells on the opposite side read charged as logical 0 (*anti cells*).
Consequently a *discharged* cell reads 0 in a true-cell row but 1 in an
anti-cell row, and ZERO-REFRESH must encode data differently for the two
row kinds to maximise discharged cells.

Prior work (Kim et al. ISCA 2014; Wu et al. ASPLOS 2019) found that true
and anti rows alternate in regular blocks of N rows, with N = 512 in
common devices, and that the type of each row can be identified by a
simple retention experiment: write all-zero data, suspend refresh for a
few retention windows, and read back — true-cell rows still read zero
(their cells merely stayed discharged) while anti-cell rows decay toward
zero *charge*, i.e. read back ones.

This module provides:

* :class:`CellType` — the two row kinds.
* :class:`CellTypeLayout` — the ground-truth layout of a chip
  (block-interleaved with configurable block size and phase).
* :func:`identify_cell_types` — the retention-experiment identification
  procedure, run against a layout, optionally with measurement noise.
* :class:`CellTypePredictor` — the (possibly imperfect) table the
  CPU-side transformation consults; mispredictions only forfeit refresh
  reduction, never correctness.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

DEFAULT_INTERLEAVE = 512
"""Rows per true/anti block observed in common devices (paper Sec. II-B)."""


class CellType(enum.Enum):
    """Kind of cells a DRAM row is built from.

    ``TRUE`` rows read a discharged cell as logical 0; ``ANTI`` rows
    read a discharged cell as logical 1.
    """

    TRUE = 0
    ANTI = 1

    @property
    def discharged_bit(self) -> int:
        """Logical bit value that a discharged cell reads as."""
        return self.value

    def flipped(self) -> "CellType":
        return CellType.ANTI if self is CellType.TRUE else CellType.TRUE


class CellTypeLayout:
    """Ground-truth true/anti layout of one DRAM chip.

    Rows alternate between true and anti cells in blocks of
    ``interleave`` rows.  ``phase`` selects which kind the first block
    is (0: rows 0..interleave-1 are true cells), modelling device-to-
    device variation.
    """

    def __init__(self, interleave: int = DEFAULT_INTERLEAVE, phase: int = 0):
        if interleave < 1:
            raise ValueError("interleave must be positive")
        if phase not in (0, 1):
            raise ValueError("phase must be 0 or 1")
        self.interleave = interleave
        self.phase = phase

    def cell_type(self, row: int) -> CellType:
        """Return the cell type of ``row``."""
        block = row // self.interleave
        return CellType((block + self.phase) % 2)

    def cell_types(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_type`: returns an int array of CellType values."""
        rows = np.asarray(rows)
        return ((rows // self.interleave) + self.phase) % 2

    def is_anti(self, row: int) -> bool:
        return self.cell_type(row) is CellType.ANTI

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CellTypeLayout)
            and self.interleave == other.interleave
            and self.phase == other.phase
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellTypeLayout(interleave={self.interleave}, phase={self.phase})"


def identify_cell_types(
    layout: CellTypeLayout,
    num_rows: int,
    error_rate: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Run the retention-experiment identification against a layout.

    Models the procedure of the prior work: after writing zeros and
    suspending refresh, rows that read back non-zero are anti-cell rows.
    ``error_rate`` injects per-row misidentification (e.g. rows whose
    cells happen to retain charge longer than the suspended window),
    exercising the paper's claim that identification need not be exact.

    Returns an ``(num_rows,)`` array of 0 (true) / 1 (anti) predictions.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    truth = layout.cell_types(np.arange(num_rows))
    if error_rate == 0.0:
        return truth.copy()
    rng = rng or np.random.default_rng()
    flips = rng.random(num_rows) < error_rate
    return np.where(flips, 1 - truth, truth)


class CellTypePredictor:
    """Cell-type table consulted by the CPU-side value transformation.

    The predictor stores one predicted :class:`CellType` per DRAM row.
    It is typically built from :func:`identify_cell_types`; a perfect
    predictor can be built directly from a layout with
    :meth:`from_layout`.

    The codec uses predictions symmetrically for encode and decode, so a
    misprediction is still round-trip safe — it only stores data with
    charged high-order cells, losing the refresh-skip opportunity for
    that row (paper Sec. V-B).
    """

    def __init__(self, predictions: np.ndarray):
        predictions = np.asarray(predictions)
        if predictions.ndim != 1:
            raise ValueError("predictions must be one-dimensional")
        if not np.isin(predictions, (0, 1)).all():
            raise ValueError("predictions must contain only 0 (true) / 1 (anti)")
        self._table = predictions.astype(np.int8)

    @classmethod
    def from_layout(
        cls,
        layout: CellTypeLayout,
        num_rows: int,
        error_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "CellTypePredictor":
        """Build a predictor by running identification against ``layout``."""
        return cls(identify_cell_types(layout, num_rows, error_rate, rng))

    def __len__(self) -> int:
        return len(self._table)

    def predict(self, row: int) -> CellType:
        """Predicted cell type of ``row``."""
        return CellType(int(self._table[row]))

    def predict_anti(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised prediction: True where a row is predicted anti-cell."""
        return self._table[np.asarray(rows)].astype(bool)

    def accuracy(self, layout: CellTypeLayout) -> float:
        """Fraction of rows whose prediction matches ``layout``."""
        truth = layout.cell_types(np.arange(len(self._table)))
        return float(np.mean(self._table == truth))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellTypePredictor(rows={len(self._table)})"
