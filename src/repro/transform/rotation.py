"""Data-rotation stage of ZERO-REFRESH (paper Sec. V-D, Figs. 9b and 13).

A rank spreads each cacheline over its chips.  Two re-mappings happen in
this stage:

1. **Byte-to-chip remapping (Fig. 13).**  The stock DDRx burst stripes
   each 8-byte beat one byte per chip, which would scatter the base and
   delta words of a transformed line over every chip.  ZERO-REFRESH
   instead re-gathers whole words onto single chips, so a chip stores
   either a base word, a delta word, or a fully-discharged word.  In
   this model that remapping is embodied directly: the unit of
   chip assignment is the EBDI word.

2. **Rotation (Fig. 9b).**  Word ``w`` of every cacheline in logical row
   ``R`` is assigned to chip ``(R + w) mod num_chips``.  Thus a chip's
   physical row ``R`` holds a *single word position* — chip ``j`` stores
   word ``(j - R) mod num_chips`` of each line in the row.  Combined
   with the staggered per-chip refresh counters of
   :mod:`repro.dram.refresh` (Fig. 8), every refresh group then covers
   one word position of many cachelines: all base words refresh
   together, all delta words together, and — crucially — all discharged
   words together, making those groups skippable.

When a line has more words than the rank has chips (e.g. 4-byte EBDI
words on an 8-chip rank give 16 words), each chip receives
``words_per_line / num_chips`` words per line; the rotation acts on word
indices modulo the chip count, preserving the homogeneity property per
chip row.
"""

from __future__ import annotations

import numpy as np

from repro.transform.ebdi import word_dtype


class RotationMapper:
    """Maps transformed cachelines onto the chips of a rank and back.

    Parameters
    ----------
    num_chips:
        Data chips per rank (8 in the paper's configuration).
    word_bytes, line_bytes:
        EBDI word and cacheline geometry; ``words_per_line`` must be a
        multiple of ``num_chips`` (or equal to it).
    rotate:
        Set ``False`` to disable the rotation (ablation): every row then
        uses the identity word-to-chip assignment and refresh groups mix
        base, delta and discharged words.
    """

    def __init__(
        self,
        num_chips: int = 8,
        word_bytes: int = 8,
        line_bytes: int = 64,
        rotate: bool = True,
    ):
        if num_chips < 1:
            raise ValueError("num_chips must be positive")
        words_per_line = line_bytes // word_bytes
        if line_bytes % word_bytes != 0:
            raise ValueError(
                f"line size {line_bytes} is not a multiple of word size {word_bytes}"
            )
        if words_per_line % num_chips != 0:
            raise ValueError(
                f"{words_per_line} words per line cannot be spread evenly "
                f"over {num_chips} chips"
            )
        self.num_chips = num_chips
        self.word_bytes = word_bytes
        self.line_bytes = line_bytes
        self.words_per_line = words_per_line
        self.words_per_chip = words_per_line // num_chips
        self.rotate = rotate
        self.dtype = word_dtype(word_bytes)

    # ------------------------------------------------------------------
    def rotation_amount(self, row_index: int) -> int:
        """Chip rotation applied to word positions of logical row ``row_index``."""
        return row_index % self.num_chips if self.rotate else 0

    def chip_of_word(self, word: int, row_index: int) -> int:
        """Chip that stores word position ``word`` of lines in ``row_index``."""
        return (word + self.rotation_amount(row_index)) % self.num_chips

    def words_of_chip(self, chip: int, row_index: int) -> np.ndarray:
        """Word positions that chip ``chip`` stores for ``row_index`` (ascending)."""
        words = np.arange(self.words_per_line)
        mask = (words + self.rotation_amount(row_index)) % self.num_chips == chip
        return words[mask]

    # ------------------------------------------------------------------
    def scatter(self, lines: np.ndarray, row_index: int) -> np.ndarray:
        """Distribute a logical row's lines onto chips.

        ``lines`` has shape ``(n_lines, words_per_line)``; the result
        has shape ``(num_chips, n_lines, words_per_chip)`` where
        ``result[j]`` is the data chip ``j`` stores in its physical row,
        in (line, word-slot) order.
        """
        lines = self._check(lines)
        out = np.empty(
            (self.num_chips, len(lines), self.words_per_chip), dtype=self.dtype
        )
        for chip in range(self.num_chips):
            out[chip] = lines[:, self.words_of_chip(chip, row_index)]
        return out

    def gather(self, chip_data: np.ndarray, row_index: int) -> np.ndarray:
        """Invert :meth:`scatter`: rebuild lines from per-chip row data."""
        chip_data = np.asarray(chip_data)
        expected = (self.num_chips, chip_data.shape[1], self.words_per_chip)
        if chip_data.ndim != 3 or chip_data.shape != expected:
            raise ValueError(
                f"expected chip data of shape {expected}, got {chip_data.shape}"
            )
        n_lines = chip_data.shape[1]
        lines = np.empty((n_lines, self.words_per_line), dtype=self.dtype)
        for chip in range(self.num_chips):
            lines[:, self.words_of_chip(chip, row_index)] = chip_data[chip]
        return lines

    # ------------------------------------------------------------------
    def _check(self, lines: np.ndarray) -> np.ndarray:
        lines = np.asarray(lines)
        if lines.ndim != 2 or lines.shape[1] != self.words_per_line:
            raise ValueError(
                f"expected shape (n, {self.words_per_line}), got {lines.shape}"
            )
        if lines.dtype != self.dtype:
            raise TypeError(f"expected dtype {self.dtype}, got {lines.dtype}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RotationMapper(num_chips={self.num_chips}, "
            f"word_bytes={self.word_bytes}, line_bytes={self.line_bytes}, "
            f"rotate={self.rotate})"
        )
