"""Bit-plane transposition stage of ZERO-REFRESH (paper Sec. V-C).

After the EBDI stage every delta word carries a small coded value: its
low-order bits are data, its high-order bits are discharged bits.  The
discharged bits are *not* contiguous across the line, though — each word
contributes its own little run.  The bit-plane stage (motivated by BPC
compression, Kim et al. ISCA 2016) transposes the delta bits so that the
*planes* — bit position j of every delta word — become contiguous.

Concretely, with D delta words of B bits each, the 448-bit (D=7, B=64)
delta region is re-laid-out plane-major::

    position j*D + w   <-   bit j of delta word w

Low-order planes (j small) hold the data of every delta; high-order
planes are entirely discharged.  After re-slicing the stream back into
B-bit words, the non-discharged content is concentrated in the
lowest-order word(s) of the line, and every remaining word consists of
discharged bits only — exactly what the data-rotation stage needs.

The transform is a fixed bit permutation, hence trivially invertible and
oblivious to the true/anti complement applied by the EBDI stage
(complementing commutes with permuting).

The implementation is vectorised over batches of lines using
``np.unpackbits``/``np.packbits`` with a precomputed permutation table.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.transform.ebdi import word_dtype


class BitPlaneTransform:
    """Transpose delta-word bit planes within cachelines.

    Parameters mirror :class:`repro.transform.ebdi.EbdiCodec`: the line
    is ``words_per_line`` words of ``word_bytes`` bytes, and word 0 (the
    EBDI base) is left untouched.
    """

    def __init__(self, word_bytes: int = 8, line_bytes: int = 64):
        if sys.byteorder != "little":  # pragma: no cover - platform guard
            raise RuntimeError("BitPlaneTransform requires a little-endian host")
        if line_bytes % word_bytes != 0:
            raise ValueError(
                f"line size {line_bytes} is not a multiple of word size {word_bytes}"
            )
        self.word_bytes = word_bytes
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // word_bytes
        self.delta_words = self.words_per_line - 1
        if self.delta_words < 1:
            raise ValueError("need at least one delta word")
        self.word_bits = word_bytes * 8
        self.dtype = word_dtype(word_bytes)
        self._forward_perm, self._inverse_perm = self._build_permutations()

    def _build_permutations(self) -> tuple:
        """Precompute the plane-major permutation and its inverse.

        With ``np.unpackbits(..., bitorder='little')`` on the
        little-endian byte view, flat position ``w*B + j`` is bit ``j``
        of delta word ``w``; the forward permutation gathers plane j of
        all words into consecutive positions.
        """
        d, b = self.delta_words, self.word_bits
        planes, words = np.meshgrid(np.arange(b), np.arange(d), indexing="ij")
        forward = (words * b + planes).ravel()  # out[j*D + w] = in[w*B + j]
        inverse = np.empty_like(forward)
        inverse[forward] = np.arange(d * b)
        return forward, inverse

    # ------------------------------------------------------------------
    def apply(self, lines: np.ndarray) -> np.ndarray:
        """Return lines with delta bit planes transposed (base untouched)."""
        return self._permute(lines, self._forward_perm)

    def invert(self, lines: np.ndarray) -> np.ndarray:
        """Invert :meth:`apply`."""
        return self._permute(lines, self._inverse_perm)

    # ------------------------------------------------------------------
    def _permute(self, lines: np.ndarray, perm: np.ndarray) -> np.ndarray:
        lines = np.asarray(lines)
        if lines.ndim != 2 or lines.shape[1] != self.words_per_line:
            raise ValueError(
                f"expected shape (n, {self.words_per_line}), got {lines.shape}"
            )
        if lines.dtype != self.dtype:
            raise TypeError(f"expected dtype {self.dtype}, got {lines.dtype}")
        deltas = np.ascontiguousarray(lines[:, 1:])
        raw = deltas.view(np.uint8).reshape(len(lines), -1)
        bits = np.unpackbits(raw, axis=1, bitorder="little")
        shuffled = bits[:, perm]
        packed = np.ascontiguousarray(np.packbits(shuffled, axis=1, bitorder="little"))
        out = np.empty_like(lines)
        out[:, 0] = lines[:, 0]
        out[:, 1:] = packed.view(self.dtype).reshape(len(lines), self.delta_words)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitPlaneTransform(word_bytes={self.word_bytes}, "
            f"line_bytes={self.line_bytes})"
        )
