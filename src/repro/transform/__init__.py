"""CPU-side value transformation pipeline of ZERO-REFRESH (paper Sec. V).

The pipeline turns each cacheline evicted from the last-level cache into
a bit image that stores as many *discharged* DRAM cells as possible:

1. :mod:`repro.transform.ebdi` — the EBDI stage.  The cacheline is
   re-expressed as a base word plus per-word deltas, and each delta is
   coded with a sign-folding (zigzag) code whose high-order bits are
   discharged bits: zeros for true-cell rows, ones for anti-cell rows.
2. :mod:`repro.transform.bitplane` — the bit-plane stage.  Delta bits
   are transposed so the non-zero low-order planes of every delta pack
   into the lowest-order words of the line, leaving the remaining words
   entirely made of discharged bits.
3. :mod:`repro.transform.rotation` — the data-rotation stage.  Words of
   the transformed line are assigned to DRAM chips with a per-row
   rotation so that, combined with the staggered refresh counters of
   :mod:`repro.dram.refresh`, each refresh group contains a single word
   position of many cachelines (all bases together, all delta words
   together, all discharged words together).

:mod:`repro.transform.celltype` models how the true/anti cell layout of
a DRAM chip is identified, and :mod:`repro.transform.codec` composes the
three stages into the round-trip :class:`~repro.transform.codec.ValueTransformCodec`.
"""

from repro.transform.bdi import BdiCompressor, BdiResult
from repro.transform.bitplane import BitPlaneTransform
from repro.transform.bpc import BpcCompressor, BpcResult
from repro.transform.celltype import (
    CellType,
    CellTypeLayout,
    CellTypePredictor,
    identify_cell_types,
)
from repro.transform.codec import StageSelection, ValueTransformCodec
from repro.transform.ebdi import EbdiCodec, zigzag_decode, zigzag_encode
from repro.transform.rotation import RotationMapper

__all__ = [
    "BdiCompressor",
    "BdiResult",
    "BitPlaneTransform",
    "BpcCompressor",
    "BpcResult",
    "CellType",
    "CellTypeLayout",
    "CellTypePredictor",
    "EbdiCodec",
    "RotationMapper",
    "StageSelection",
    "ValueTransformCodec",
    "identify_cell_types",
    "zigzag_decode",
    "zigzag_encode",
]
