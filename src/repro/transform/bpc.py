"""BPC (Bit-Plane Compression), Kim et al. ISCA 2016 — reference model.

ZERO-REFRESH's bit-plane stage is "motivated by BPC" (paper Sec. V-C).
This module carries the relevant core of BPC itself:

1. **Delta transform** — consecutive-word differences (BPC uses deltas
   between neighbouring words, not base-relative ones);
2. **Bit-plane transform (DBP)** — transpose delta bits into planes;
3. **DBX transform** — XOR each plane with its more-significant
   neighbour, so the long identical sign-extension planes of small
   (positive or negative) deltas collapse into zero planes;
4. **Plane encoding** — run-length for all-zero DBX planes plus compact
   codes for special planes (all-ones, single-bit), raw otherwise.

The encoded size estimate follows the paper's symbol costs closely
enough for comparative statistics; the transform half is exact and
round-trips.  Used by the ``abl-compression`` experiment to contrast
*compressibility* (what BDI/BPC maximise) against *skippability* (what
ZERO-REFRESH's constant-size pipeline maximises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class BpcResult:
    """Size accounting for one compressed 64 B line."""

    compressed_bits: int
    zero_planes: int
    special_planes: int

    @property
    def compressed_bytes(self) -> float:
        return self.compressed_bits / 8.0

    @property
    def ratio(self) -> float:
        return 512.0 / self.compressed_bits


class BpcCompressor:
    """Bit-plane compressor for 64-byte lines of uint64 words."""

    def delta_transform(self, line: np.ndarray) -> np.ndarray:
        """Word 0 verbatim plus consecutive differences (exact)."""
        line = np.asarray(line, dtype=np.uint64).reshape(8)
        out = np.empty_like(line)
        out[0] = line[0]
        out[1:] = line[1:] - line[:-1]
        return out

    def inverse_delta(self, deltas: np.ndarray) -> np.ndarray:
        # Modular prefix sum inverts the modular differences exactly.
        return np.cumsum(deltas, dtype=np.uint64)

    def bit_planes(self, deltas: np.ndarray) -> np.ndarray:
        """(64, 7) bit matrix: plane j holds bit j of delta words 1..7."""
        tail = deltas[1:]
        planes = np.empty((64, len(tail)), dtype=np.uint8)
        for j in range(64):
            planes[j] = (tail >> np.uint64(j)) & np.uint64(1)
        return planes

    def dbx_transform(self, planes: np.ndarray) -> np.ndarray:
        """XOR each plane with the next-more-significant one.

        Plane 63 (the most significant) stays raw as the anchor; the
        transform is trivially invertible top-down.  Sign-extension
        regions — identical consecutive planes — become zero planes.
        """
        out = planes.copy()
        out[:-1] ^= planes[1:]
        return out

    def inverse_dbx(self, dbx: np.ndarray) -> np.ndarray:
        planes = dbx.copy()
        for j in range(len(dbx) - 2, -1, -1):
            planes[j] = dbx[j] ^ planes[j + 1]
        return planes

    # ------------------------------------------------------------------
    def compress(self, line: np.ndarray) -> BpcResult:
        """Estimate the BPC-encoded size of one line."""
        deltas = self.delta_transform(line)
        planes = self.dbx_transform(self.bit_planes(deltas))
        bits = 64  # the verbatim base word
        zero_planes = 0
        special = 0
        run = 0
        for plane in planes:
            total = int(plane.sum())
            if total == 0:
                run += 1
                continue
            if run:
                bits += 7  # zero-run symbol (2-bit prefix + 5-bit length)
                zero_planes += run
                run = 0
            if total == len(plane):  # all-ones plane
                bits += 5
                special += 1
            elif total == 1:  # single-bit plane
                bits += 2 + 3  # prefix + bit position within 7
                special += 1
            else:
                bits += 2 + len(plane)  # raw plane
        if run:
            bits += 7
            zero_planes += run
        return BpcResult(compressed_bits=bits, zero_planes=zero_planes,
                         special_planes=special)

    # ------------------------------------------------------------------
    def compression_ratio(self, lines: np.ndarray) -> float:
        results: List[BpcResult] = [self.compress(line)
                                    for line in np.asarray(lines)]
        total_bits = sum(r.compressed_bits for r in results)
        return len(results) * 512.0 / total_bits
