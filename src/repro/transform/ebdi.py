"""EBDI (Encoded Base-Delta-Immediate) stage of ZERO-REFRESH (paper Sec. V-B).

EBDI is derived from BDI compression (Pekhimenko et al., PACT 2012) but,
unlike BDI, it never changes the size of a cacheline.  The first word of
the line is kept verbatim as the *base*; every other word is replaced by
the difference between the word and the base.  Because values within a
cacheline tend to be close to each other, the deltas have small absolute
values — but in two's complement a small *negative* delta is mostly 1
bits, which would charge every cell of a true-cell row.

The paper therefore introduces a dedicated delta code (Fig. 11) in which
the sign lives in the low-order bit and the magnitude grows upward, so
that small deltas of either sign have runs of 0 in their high-order
bits.  That is exactly the *zigzag* code::

    enc(d) = 2*d        if d >= 0
    enc(d) = -2*d - 1   if d <  0

giving the sequence 0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...

For anti-cell rows a stored 0 bit corresponds to a *charged* cell, so
the anti-cell encoding is the bitwise complement of the true-cell
encoding (including the base word): small deltas then have runs of 1 in
their high-order bits, which are discharged anti-cells.

Both codes are bijections on fixed-width words, so decoding always
recovers the original line exactly — even when the cell type of the
target row was mispredicted, in which case only refresh-reduction
opportunity is lost (paper Sec. V-B).

All functions operate on *batches* of cachelines: arrays of shape
``(n_lines, words_per_line)`` with an unsigned dtype selected by the
word size (``uint32`` for 4-byte words, ``uint64`` for 8-byte words).
"""

from __future__ import annotations

import numpy as np

from repro.transform.celltype import CellType

_WORD_DTYPES = {2: np.uint16, 4: np.uint32, 8: np.uint64}
_SIGNED_DTYPES = {2: np.int16, 4: np.int32, 8: np.int64}


def word_dtype(word_bytes: int) -> np.dtype:
    """Return the unsigned numpy dtype used for a given word size.

    ZERO-REFRESH's experimental configuration fixes the word size to 8
    bytes (paper Sec. V-B), but 2- and 4-byte words are supported for
    the word-size ablation.
    """
    try:
        return np.dtype(_WORD_DTYPES[word_bytes])
    except KeyError:
        raise ValueError(
            f"unsupported EBDI word size {word_bytes}; expected one of "
            f"{sorted(_WORD_DTYPES)}"
        ) from None


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed deltas to the EBDI true-cell code (Fig. 11b).

    ``values`` must be a signed integer array; the result has the
    corresponding unsigned dtype and the property that
    ``zigzag_encode(d) < 2*|d| + 1``, i.e. small magnitudes get leading
    zeros.
    """
    bits = values.dtype.itemsize * 8
    encoded = (values << 1) ^ (values >> (bits - 1))
    return encoded.astype(_WORD_DTYPES[values.dtype.itemsize], copy=False)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag_encode`; returns a signed array."""
    signed_dtype = _SIGNED_DTYPES[values.dtype.itemsize]
    # Logical (unsigned) shift, then drop into the signed domain; the
    # shifted value always fits because its top bit is clear.
    magnitude = (values >> 1).view(signed_dtype)
    sign = -(values & 1).view(signed_dtype)
    return magnitude ^ sign


class EbdiCodec:
    """The EBDI stage: base-delta conversion with cell-type aware codes.

    Parameters
    ----------
    word_bytes:
        Size of an EBDI word.  The paper's configuration uses 8 bytes.
    line_bytes:
        Size of a cacheline (64 bytes in the paper).

    The codec is stateless; one instance can be shared freely.
    """

    def __init__(self, word_bytes: int = 8, line_bytes: int = 64):
        if line_bytes % word_bytes != 0:
            raise ValueError(
                f"line size {line_bytes} is not a multiple of word size {word_bytes}"
            )
        self.word_bytes = word_bytes
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // word_bytes
        if self.words_per_line < 2:
            raise ValueError("EBDI needs at least two words per line")
        self.dtype = word_dtype(word_bytes)
        self._signed = np.dtype(_SIGNED_DTYPES[word_bytes])

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, lines: np.ndarray, cell_type: CellType) -> np.ndarray:
        """Encode a batch of cachelines for rows of the given cell type.

        ``lines`` has shape ``(n, words_per_line)``.  Word 0 is the base
        and is stored verbatim (true cells) or complemented (anti
        cells); words 1.. are zigzag-coded deltas from the base.
        """
        lines = self._check(lines)
        base = lines[:, :1]
        # Unsigned wrap-around subtraction == two's-complement delta.
        deltas = (lines[:, 1:] - base).astype(self._signed, copy=False)
        out = np.empty_like(lines)
        out[:, :1] = base
        out[:, 1:] = zigzag_encode(deltas)
        if cell_type is CellType.ANTI:
            np.invert(out, out=out)
        return out

    def decode(self, encoded: np.ndarray, cell_type: CellType) -> np.ndarray:
        """Invert :meth:`encode`; exact for every input."""
        encoded = self._check(encoded)
        if cell_type is CellType.ANTI:
            encoded = np.invert(encoded)
        base = encoded[:, :1]
        deltas = zigzag_decode(encoded[:, 1:])
        out = np.empty_like(encoded)
        out[:, :1] = base
        out[:, 1:] = base + deltas.astype(self.dtype, copy=False)
        return out

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def delta_bit_width(self, lines: np.ndarray) -> np.ndarray:
        """Significant bits of the widest true-cell-coded delta per line.

        Returns an ``(n,)`` int array: 0 for lines whose deltas are all
        zero (uniform lines), up to ``word_bytes*8`` for incompressible
        lines.  This is the quantity that determines how many words of
        the line survive as discharged words after the bit-plane stage.
        """
        lines = self._check(lines)
        base = lines[:, :1]
        deltas = (lines[:, 1:] - base).astype(self._signed, copy=False)
        coded = zigzag_encode(deltas)
        width = np.zeros(len(lines), dtype=np.int64)
        maxed = coded.max(axis=1)
        nonzero = maxed > 0
        # bit_length of the max coded delta
        width[nonzero] = np.floor(np.log2(maxed[nonzero].astype(np.float64))).astype(np.int64) + 1
        return width

    # ------------------------------------------------------------------
    def _check(self, lines: np.ndarray) -> np.ndarray:
        lines = np.asarray(lines)
        if lines.ndim != 2 or lines.shape[1] != self.words_per_line:
            raise ValueError(
                f"expected shape (n, {self.words_per_line}), got {lines.shape}"
            )
        if lines.dtype != self.dtype:
            raise TypeError(f"expected dtype {self.dtype}, got {lines.dtype}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EbdiCodec(word_bytes={self.word_bytes}, "
            f"line_bytes={self.line_bytes})"
        )
