"""BDI (Base-Delta-Immediate) cache compression (Pekhimenko et al. 2012).

EBDI is *derived from* BDI (paper Sec. V-B), so the reproduction carries
a faithful BDI implementation both as provenance and as a comparison
point: BDI shrinks lines for capacity, EBDI re-codes them at constant
size for discharge — and the ``abl-compression`` experiment shows the
two goals diverge (a highly BDI-compressible line is not automatically
a highly skippable one, and vice versa).

The compressor implements the canonical encoder set:

* ``zeros`` — the all-zero line (1 byte of metadata);
* ``repeated`` — one 8-byte value repeated (8 bytes);
* ``base{8,4,2}-delta{1,2,4}`` — a base of ``base_bytes`` plus per-word
  signed deltas of ``delta_bytes`` where every delta fits;
* ``uncompressed`` fallback.

Following the original design, deltas are taken against an implicit
*zero base* OR the first non-zero word (dual-base with base0 = 0),
which is what lets lines mixing small immediates with wide values
compress.  The decoder is exact; a hypothesis round-trip test pins it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

LINE_BYTES = 64

# (base_bytes, delta_bytes) encoder set from the BDI paper.
ENCODERS: Tuple[Tuple[int, int], ...] = (
    (8, 1), (8, 2), (8, 4),
    (4, 1), (4, 2),
    (2, 1),
)


@dataclass(frozen=True)
class BdiResult:
    """Outcome of compressing one 64 B line."""

    scheme: str
    compressed_bytes: int
    base: int = 0
    deltas: Optional[np.ndarray] = None
    immediate_mask: Optional[np.ndarray] = None
    raw: Optional[np.ndarray] = None  # for the uncompressed fallback

    @property
    def ratio(self) -> float:
        return LINE_BYTES / self.compressed_bytes


def _words(line: np.ndarray, size_bytes: int) -> np.ndarray:
    """Re-slice a (8,) uint64 line into words of the given byte size."""
    raw = np.ascontiguousarray(line).view(np.uint8)
    return raw.view(f"<u{size_bytes}")


def _fits(values: np.ndarray, delta_bytes: int) -> np.ndarray:
    """Which signed values fit in ``delta_bytes`` bytes."""
    bound = 1 << (8 * delta_bytes - 1)
    return (values >= -bound) & (values < bound)


class BdiCompressor:
    """Canonical BDI compressor for 64-byte lines of uint64 words."""

    def compress(self, line: np.ndarray) -> BdiResult:
        """Compress one line; always succeeds (fallback: uncompressed)."""
        line = np.asarray(line, dtype=np.uint64).reshape(8)
        if not line.any():
            return BdiResult(scheme="zeros", compressed_bytes=1)
        if (line == line[0]).all():
            return BdiResult(scheme="repeated", compressed_bytes=8,
                             base=int(line[0]))
        for base_bytes, delta_bytes in ENCODERS:
            result = self._try_base_delta(line, base_bytes, delta_bytes)
            if result is not None:
                return result
        return BdiResult(scheme="uncompressed", compressed_bytes=LINE_BYTES,
                         raw=line.copy())

    def _try_base_delta(self, line: np.ndarray, base_bytes: int,
                        delta_bytes: int) -> Optional[BdiResult]:
        if delta_bytes >= base_bytes:
            return None
        words = _words(line, base_bytes)
        signed_view = words.view(f"<i{base_bytes}")
        # Dual base: implicit zero base for small immediates, plus the
        # first word not representable as an immediate.
        immediate = _fits(signed_view.astype(np.int64), delta_bytes)
        non_imm = np.flatnonzero(~immediate)
        base = int(words[non_imm[0]]) if len(non_imm) else 0
        # Modular subtraction in the word's own width; the signed view
        # of the wrapped difference is the canonical delta and always
        # reconstructs exactly under modular addition.
        rel = (words - words.dtype.type(base)).view(f"<i{base_bytes}")
        from_base = _fits(rel.astype(np.int64), delta_bytes)
        if not (immediate | from_base).all():
            return None
        deltas = np.where(immediate, signed_view.astype(np.int64),
                          rel.astype(np.int64))
        n_words = len(words)
        size = base_bytes + n_words * delta_bytes + (n_words + 7) // 8
        if size >= LINE_BYTES:
            return None
        return BdiResult(
            scheme=f"base{base_bytes}-delta{delta_bytes}",
            compressed_bytes=size,
            base=base,
            deltas=deltas,
            immediate_mask=immediate.copy(),
        )

    # ------------------------------------------------------------------
    def decompress(self, result: BdiResult) -> np.ndarray:
        """Exact inverse of :meth:`compress`; returns (8,) uint64."""
        if result.scheme == "zeros":
            return np.zeros(8, dtype=np.uint64)
        if result.scheme == "repeated":
            return np.full(8, result.base, dtype=np.uint64)
        if result.scheme == "uncompressed":
            return result.raw.copy()
        base_bytes = int(result.scheme.split("-")[0][4:])
        mask = (1 << (8 * base_bytes)) - 1
        values = [
            int(delta) & mask if imm else (result.base + int(delta)) & mask
            for delta, imm in zip(result.deltas, result.immediate_mask)
        ]
        unsigned = np.array(values, dtype=f"<u{base_bytes}")
        return np.ascontiguousarray(unsigned).view(np.uint8).view("<u8").copy()

    # ------------------------------------------------------------------
    def compress_many(self, lines: np.ndarray) -> List[BdiResult]:
        return [self.compress(line) for line in np.asarray(lines)]

    def compression_ratio(self, lines: np.ndarray) -> float:
        """Aggregate ratio over a batch of lines."""
        results = self.compress_many(lines)
        total = sum(r.compressed_bytes for r in results)
        return len(results) * LINE_BYTES / total
