"""Hierarchical wall-clock spans with explicit trace-context propagation.

Probe events (:mod:`repro.obs.probes`) answer *what happened* on the
simulated clock; spans answer *where the wall time went* across the real
stack: serve request → lifecycle attempt → engine job → pool worker →
sim-kernel phase.  A :class:`SpanContext` carries ``(trace_id, span_id,
parent_id)`` across process boundaries as a plain dict, so a pool worker
can attach its kernel phases under the exact attempt span the runner
opened for it.

Determinism is the load-bearing design decision.  ``trace_id`` is a pure
function of the run id, and every span id is a pure function of
``(trace_id, parent_id, name, qualifier)``:

* a **resume** re-mints the same trace and re-emits structural spans
  (``run``/``plan``/``reduce``) under the same ids, so the span store —
  an append-only JSONL file next to the journal — deduplicates by
  ``span_id`` into one coherent tree;
* ``--jobs 4`` and ``--jobs 1`` produce the *same tree* (parentage and
  names, not timings), which the propagation tests assert;
* a killed worker's partial spans simply never get written (spans emit
  on completion), so crash debris cannot corrupt the tree.

Qualifiers disambiguate repeats: a job span is qualified by its digest,
an attempt span by its attempt number, a kernel phase by its occurrence
index within the enclosing span.  :func:`span_tree` rebuilds the nested
structure from records and :func:`tree_signature` reduces it to the
timing-free shape used for equality properties.

Like the probe bus, the tracer is ambient per process
(:func:`get_tracer`/:func:`use_tracer`) and defaults to
:data:`NULL_TRACER`, a no-op cheap enough for hot paths.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

ID_WIDTH = 16
ROOT_PARENT = ""
"""``parent_id`` of a root span."""


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:ID_WIDTH]


def trace_id_for_run(run_id: str) -> str:
    """Deterministic trace id: resumes of ``run_id`` join the same trace."""
    return _digest(f"trace:{run_id}")


def span_id_for(trace_id: str, parent_id: str, name: str,
                qualifier: str = "") -> str:
    """Deterministic span id — identical across fan-out and resume."""
    return _digest(f"span:{trace_id}:{parent_id}:{name}:{qualifier}")


@dataclass(frozen=True)
class SpanContext:
    """Position in a trace; the unit shipped across process boundaries."""

    trace_id: str
    span_id: str
    parent_id: str = ROOT_PARENT
    name: str = ""
    qualifier: str = ""

    def to_wire(self) -> dict:
        """Plain picklable dict for worker payloads / HTTP state."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "qualifier": self.qualifier}

    @classmethod
    def from_wire(cls, wire: dict) -> "SpanContext":
        return cls(trace_id=wire["trace_id"], span_id=wire["span_id"],
                   parent_id=wire.get("parent_id", ROOT_PARENT),
                   name=wire.get("name", ""),
                   qualifier=wire.get("qualifier", ""))

    def child(self, name: str, qualifier: str = "") -> "SpanContext":
        return SpanContext(
            trace_id=self.trace_id,
            span_id=span_id_for(self.trace_id, self.span_id, name, qualifier),
            parent_id=self.span_id, name=name, qualifier=qualifier)


def root_context(trace_id: str, name: str = "run") -> SpanContext:
    return SpanContext(
        trace_id=trace_id,
        span_id=span_id_for(trace_id, ROOT_PARENT, name, ""),
        parent_id=ROOT_PARENT, name=name, qualifier="")


class SpanTracer:
    """Records completed spans as flat JSON-able dicts.

    One record per span, emitted when the span *finishes* — in-flight
    spans leave no trace, which is exactly the crash semantics the
    store's dedup relies on.  Records accumulate in :attr:`records` and,
    when a ``sink`` is attached (any object with ``emit``/``close``,
    e.g. :class:`repro.obs.probes.JsonlTraceSink`), stream to it too.

    ``clock`` is injectable for tests; it must return wall-clock epoch
    seconds like :func:`time.time`.
    """

    def __init__(self, trace_id: str, sink=None, clock=time.time):
        self.trace_id = trace_id
        self.sink = sink
        self.clock = clock
        self.records: List[dict] = []
        self._stack: List[SpanContext] = []
        self._occurrences: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return True

    @property
    def current(self) -> Optional[SpanContext]:
        """Innermost open span context, if any."""
        return self._stack[-1] if self._stack else None

    def context(self, name: str, parent: Optional[SpanContext] = None,
                qualifier: Optional[str] = None) -> SpanContext:
        """Mint a child context under ``parent`` (default: current/root).

        When ``qualifier`` is ``None`` an occurrence index is assigned:
        the first ``measure`` under a parent is qualified ``"0"``, the
        next ``"1"`` — deterministic as long as execution order within
        the parent is.  Pass an explicit qualifier (digest, attempt
        number) when the caller has a natural key.
        """
        if parent is None:
            parent = self.current
        parent_id = parent.span_id if parent is not None else ROOT_PARENT
        if qualifier is None:
            key = (parent_id, name)
            n = self._occurrences.get(key, 0)
            self._occurrences[key] = n + 1
            qualifier = str(n)
        return SpanContext(
            trace_id=self.trace_id,
            span_id=span_id_for(self.trace_id, parent_id, name, qualifier),
            parent_id=parent_id, name=name, qualifier=qualifier)

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        self.records.append(record)
        if self.sink is not None:
            self.sink.emit(record)

    def emit_context(self, ctx: SpanContext, t0: float, dur_s: float,
                     **attrs) -> dict:
        """Record a finished span for an already-minted context."""
        record = {k: v for k, v in attrs.items() if v is not None}
        record.update(
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=ctx.parent_id, name=ctx.name, q=ctx.qualifier,
            t0=round(t0, 6), dur_s=round(dur_s, 6))
        self._emit(record)
        return record

    def record_span(self, name: str, parent: Optional[SpanContext] = None,
                    qualifier: Optional[str] = None, *,
                    t0: float, dur_s: float, **attrs) -> SpanContext:
        """Fabricate a span retroactively (failed attempt, plan phase)."""
        ctx = self.context(name, parent=parent, qualifier=qualifier)
        self.emit_context(ctx, t0, dur_s, **attrs)
        return ctx

    @contextmanager
    def span(self, name: str, parent: Optional[SpanContext] = None,
             qualifier: Optional[str] = None,
             **attrs) -> Iterator[SpanContext]:
        """Open a span around the block; records on exit, even on error."""
        ctx = self.context(name, parent=parent, qualifier=qualifier)
        self._stack.append(ctx)
        t0 = self.clock()
        try:
            yield ctx
        except BaseException as exc:
            attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            self.emit_context(ctx, t0, self.clock() - t0, **attrs)

    def add_records(self, records) -> None:
        """Fold spans recorded elsewhere (a pool worker) into this tracer."""
        for record in records:
            self._emit(dict(record))

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


class _NullTracer:
    """No-op tracer: the ambient default.  Mirrors :data:`NULL_PROBES`."""

    enabled = False
    trace_id = ""
    records: List[dict] = []
    current = None

    def context(self, name, parent=None, qualifier=None) -> SpanContext:
        return SpanContext(trace_id="", span_id="", parent_id=ROOT_PARENT,
                           name=name, qualifier=qualifier or "")

    def emit_context(self, ctx, t0, dur_s, **attrs) -> dict:
        return {}

    def record_span(self, name, parent=None, qualifier=None, *,
                    t0, dur_s, **attrs) -> SpanContext:
        return self.context(name, parent, qualifier)

    @contextmanager
    def span(self, name, parent=None, qualifier=None, **attrs):
        yield self.context(name, parent, qualifier)

    def add_records(self, records) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()
"""Shared no-op tracer; safe anywhere a :class:`SpanTracer` fits."""

_ACTIVE: Optional[SpanTracer] = None


def get_tracer():
    """The ambient tracer, or :data:`NULL_TRACER` when none is installed."""
    return _ACTIVE if _ACTIVE is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: SpanTracer) -> Iterator[SpanTracer]:
    """Install ``tracer`` as the ambient span tracer for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# span store: <cache-root>/spans/<run-id>.jsonl, append-only
# ----------------------------------------------------------------------

_SAFE_RUN_ID = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")


def spans_dir(cache_root: Union[str, Path]) -> Path:
    return Path(cache_root) / "spans"


def span_path(cache_root: Union[str, Path], run_id: str) -> Path:
    """Span file for a run; unsafe run ids are hashed (journal-style)."""
    if run_id and all(ch in _SAFE_RUN_ID for ch in run_id):
        stem = run_id
    else:
        stem = "x" + _digest(f"run:{run_id}")
    return spans_dir(cache_root) / f"{stem}.jsonl"


def append_spans(cache_root: Union[str, Path], run_id: str,
                 records) -> Path:
    """Append finished span records (sealed) to the run's store file."""
    from repro.store.envelope import seal_record

    path = span_path(cache_root, run_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(seal_record(record) + "\n")
    return path


def read_spans(path: Union[str, Path]) -> List[dict]:
    """Load span records, skipping damaged lines with the class counted.

    Sealed lines (written with an embedded ``"_sha"`` digest) are
    verified before use; unsealed lines from older stores still load.
    A line that fails — torn by a crash or flipped on disk — is
    dropped and counted on the ambient ``store.corrupt.<class>``
    counter, never surfaced as a span.
    """
    from repro.store.envelope import count_corruption, open_record

    records: List[dict] = []
    path = Path(path)
    if not path.exists():
        return records
    try:
        # errors="replace", not strict: a flipped byte that lands on a
        # multi-byte boundary must classify as damage, not raise
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        from repro.obs import get_probes

        get_probes().count("store.read_errors")
        return records
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        record, damage = open_record(line)
        if record is None:
            count_corruption(damage, store="spans", path=path)
            continue
        if "span_id" in record:
            records.append(record)
    return records


def dedupe_spans(records) -> List[dict]:
    """Collapse re-emitted structural spans: last record per id wins."""
    by_id: Dict[str, dict] = {}
    for record in records:
        by_id[record["span_id"]] = record
    return list(by_id.values())


def span_tree(records) -> List[dict]:
    """Nest deduplicated records into ``{record..., "children": [...]}``.

    Children are ordered by ``(t0, name, q)`` so reconstruction is
    stable across record arrival order.  Orphans (parent never emitted,
    e.g. the root of a run killed mid-flight) surface as extra roots.
    """
    deduped = dedupe_spans(records)
    nodes = {r["span_id"]: dict(r, children=[]) for r in deduped}
    roots: List[dict] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)

    def sort_key(node):
        return (node.get("t0", 0.0), node.get("name", ""), node.get("q", ""))

    def sort_rec(nodes_):
        nodes_.sort(key=sort_key)
        for n in nodes_:
            sort_rec(n["children"])

    sort_rec(roots)
    return roots


def tree_signature(records) -> tuple:
    """Timing-free shape of the span tree: nested ``(name, q, children)``.

    Two runs with the same signature did the same *work* in the same
    causal structure, whatever the wall clock said.  Children are
    sorted by ``(name, q)`` so scheduling order is irrelevant — the
    property the ``--jobs 1`` vs ``--jobs 4`` tests assert.
    """
    def sig(node) -> tuple:
        children = tuple(sorted(sig(c) for c in node["children"]))
        return (node.get("name", ""), node.get("q", ""), children)

    return tuple(sorted(sig(root) for root in span_tree(records)))
