"""Distribution-grade metrics: histograms, gauges, mergeable snapshots.

Scalar counters (PR 2) answer "how many refreshes were skipped?" but
the paper's headline figures live on *distributions* — per-window skip
rates, row charge lifetimes, codec compression ratios.  This module
adds the two metric types the probe bus was missing:

* :class:`Histogram` — fixed-bucket distribution with inclusive upper
  bounds (Prometheus ``le`` convention) plus an overflow bucket;
* :class:`Gauge` — last-written value with min/max/count envelope.

Both serialise to a plain-dict **snapshot** that is JSON-able and
*mergeable*: :func:`merge_snapshots` folds any number of snapshots into
one, which is how per-worker metrics captured inside a
``ProcessPoolExecutor`` job become a run-level manifest.  Merging is
exact — bucket counts and float sums add in plan order — so a
``jobs=4`` run merges to the same numbers as a ``jobs=1`` run (the
engine tests assert equality).

Bucket bounds are fixed per metric *name* via :data:`HISTOGRAM_BOUNDS`
(register new metrics with :func:`register_histogram`); fixed bounds
are what make cross-process merging well defined.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

RATIO_BOUNDS: Tuple[float, ...] = tuple(round(i / 10, 1) for i in range(1, 11))
"""Ten equal buckets over [0, 1] — skip rates, zero fractions."""

DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
)
"""Log-spaced fallback for metrics with no registered bounds."""

HISTOGRAM_BOUNDS: Dict[str, Tuple[float, ...]] = {
    # fraction of an AR window's refresh groups that were skipped
    "sim.window_skip_rate": RATIO_BOUNDS,
    # simulated seconds a refreshed row went without a recharge
    "refresh.row_charge_lifetime_s": (
        0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048,
    ),
    # fraction of words driven to zero by the value transformation
    "codec.encoded_zero_fraction": RATIO_BOUNDS,
}
"""Registered fixed bucket bounds, keyed by dotted metric name."""


def register_histogram(name: str, bounds: Sequence[float]) -> None:
    """Fix the bucket bounds used for histogram metric ``name``."""
    HISTOGRAM_BOUNDS[name] = _validated_bounds(bounds)


def bounds_for(name: str) -> Tuple[float, ...]:
    """The registered bounds for ``name`` (default: :data:`DEFAULT_BOUNDS`)."""
    return HISTOGRAM_BOUNDS.get(name, DEFAULT_BOUNDS)


def _validated_bounds(bounds: Sequence[float]) -> Tuple[float, ...]:
    out = tuple(float(b) for b in bounds)
    if not out:
        raise ValueError("histogram needs at least one bucket bound")
    if any(b >= a for b, a in zip(out, out[1:])):
        raise ValueError(f"bucket bounds must be strictly increasing: {out}")
    return out


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    Bucket ``i < len(bounds)`` counts observations ``v <= bounds[i]``
    (and ``> bounds[i-1]``); the final bucket counts overflow.  ``sum``
    and ``count`` allow mean recovery; bucket counts give the shape.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = _validated_bounds(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += float(value)

    def observe_many(self, values) -> None:
        """Vectorised :meth:`observe` for numpy arrays or sequences."""
        import numpy as np

        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.bounds, values, side="left")
        for bucket, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(bucket)] += int(n)
        self.count += int(values.size)
        self.sum += float(values.sum())

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        hist = cls(snap["bounds"])
        counts = list(snap["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError("histogram snapshot counts/bounds mismatch")
        hist.counts = [int(c) for c in counts]
        hist.count = int(snap["count"])
        hist.sum = float(snap["sum"])
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(n={self.count}, mean={self.mean:.4g})"


class Gauge:
    """Last-value metric with a min/max/count envelope.

    Merging keeps the *later* operand's last value (merge order is plan
    order in the engine, so merged gauges are deterministic).
    """

    __slots__ = ("last", "min", "max", "n")

    def __init__(self):
        self.last: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.n = 0

    def set(self, value: Number) -> None:
        value = float(value)
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.n += 1

    def merge(self, other: "Gauge") -> None:
        if other.n == 0:
            return
        self.last = other.last
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)
        self.n += other.n

    def snapshot(self) -> dict:
        return {"last": self.last, "min": self.min, "max": self.max,
                "n": self.n}

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Gauge":
        gauge = cls()
        gauge.last = snap.get("last")
        gauge.min = snap.get("min")
        gauge.max = snap.get("max")
        gauge.n = int(snap.get("n", 0))
        return gauge

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(last={self.last}, n={self.n})"


# ----------------------------------------------------------------------
# snapshot algebra
# ----------------------------------------------------------------------
def empty_snapshot() -> dict:
    """The identity element of :func:`merge_snapshots`."""
    return {"counters": {}, "phases": {}, "events": 0,
            "histograms": {}, "gauges": {}}


MAX_RECORDED_VIOLATIONS = 100
"""Cap on violation records carried through snapshot merges."""


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold probe-bus snapshots into one (none of the inputs mutated).

    Counters, phases, event counts and histogram buckets add; gauges
    combine their envelopes keeping the later last value; the optional
    ``invariants`` section sums check/violation counts and concatenates
    recorded violations up to :data:`MAX_RECORDED_VIOLATIONS`.
    """
    out = empty_snapshot()
    histograms: Dict[str, Histogram] = {}
    gauges: Dict[str, Gauge] = {}
    invariants: Optional[dict] = None
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, seconds in snap.get("phases", {}).items():
            out["phases"][name] = round(
                out["phases"].get(name, 0.0) + seconds, 6
            )
        out["events"] += snap.get("events", 0)
        for name, hist_snap in snap.get("histograms", {}).items():
            incoming = Histogram.from_snapshot(hist_snap)
            if name in histograms:
                histograms[name].merge(incoming)
            else:
                histograms[name] = incoming
        for name, gauge_snap in snap.get("gauges", {}).items():
            incoming = Gauge.from_snapshot(gauge_snap)
            if name in gauges:
                gauges[name].merge(incoming)
            else:
                gauges[name] = incoming
        if "invariants" in snap:
            part = snap["invariants"]
            if invariants is None:
                invariants = {"checks": 0, "violation_count": 0,
                              "violations": []}
            invariants["checks"] += part.get("checks", 0)
            invariants["violation_count"] += part.get("violation_count", 0)
            room = MAX_RECORDED_VIOLATIONS - len(invariants["violations"])
            if room > 0:
                invariants["violations"].extend(
                    part.get("violations", [])[:room]
                )
    out["counters"] = dict(sorted(out["counters"].items()))
    out["phases"] = dict(sorted(out["phases"].items()))
    out["histograms"] = {name: histograms[name].snapshot()
                         for name in sorted(histograms)}
    out["gauges"] = {name: gauges[name].snapshot()
                     for name in sorted(gauges)}
    if invariants is not None:
        out["invariants"] = invariants
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    """Sanitise a dotted metric name into a Prometheus metric name."""
    out = _PROM_NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: Number) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _prom_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a probe-bus snapshot in Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total`` counters, gauges expose
    their last value (plus ``_min``/``_max`` companion gauges when an
    envelope exists), histograms follow the cumulative ``le`` bucket
    convention with a ``+Inf`` bucket, ``_sum`` and ``_count`` series.
    Phase wall times land in one ``<prefix>_phase_seconds_total``
    family labelled by phase, and the optional ``invariants`` section
    exports check/violation counters.  Output is deterministic (sorted
    within each section) so identical snapshots render identical text —
    the ``/metrics`` endpoint of :mod:`repro.serve` serves exactly this.
    """
    lines: List[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")

    phases = snapshot.get("phases", {})
    if phases:
        metric = _prom_name("phase_seconds", prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for name, seconds in sorted(phases.items()):
            lines.append(
                f'{metric}{{phase="{_prom_label(name)}"}} {_prom_value(seconds)}'
            )

    events = snapshot.get("events", 0)
    metric = _prom_name("events", prefix) + "_total"
    lines.append(f"# TYPE {metric} counter")
    lines.append(f"{metric} {_prom_value(events)}")

    for name, gauge in sorted(snapshot.get("gauges", {}).items()):
        if gauge.get("last") is None:
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge['last'])}")
        for stat in ("min", "max"):
            value = gauge.get(stat)
            if value is not None and value != gauge["last"]:
                lines.append(f"# TYPE {metric}_{stat} gauge")
                lines.append(f"{metric}_{stat} {_prom_value(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")

    inv = snapshot.get("invariants")
    if inv is not None:
        for field, value in (("invariant_checks", inv.get("checks", 0)),
                             ("invariant_violations",
                              inv.get("violation_count", 0))):
            metric = _prom_name(field, prefix) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(value)}")

    return "\n".join(lines) + "\n"


def snapshot_totals(snapshot: dict) -> Dict[str, Number]:
    """Flat ``{counter: value}`` view of a snapshot's counters."""
    return dict(snapshot.get("counters", {}))


def iter_snapshot_metrics(snapshot: dict) -> Iterable[Tuple[str, Number]]:
    """Dotted-path numeric view over every metric in a snapshot.

    Used by the bench-regression reporter to diff two snapshots without
    caring about the section a number lives in.
    """
    for name, value in snapshot.get("counters", {}).items():
        yield f"counters.{name}", value
    for name, value in snapshot.get("phases", {}).items():
        yield f"phases.{name}", value
    yield "events", snapshot.get("events", 0)
    for name, hist in snapshot.get("histograms", {}).items():
        yield f"histograms.{name}.count", hist["count"]
        yield f"histograms.{name}.sum", hist["sum"]
        for i, count in enumerate(hist["counts"]):
            yield f"histograms.{name}.bucket.{i}", count
    for name, gauge in snapshot.get("gauges", {}).items():
        for field in ("last", "min", "max", "n"):
            value = gauge.get(field)
            if value is not None:
                yield f"gauges.{name}.{field}", value
    inv = snapshot.get("invariants")
    if inv is not None:
        yield "invariants.checks", inv.get("checks", 0)
        yield "invariants.violation_count", inv.get("violation_count", 0)
