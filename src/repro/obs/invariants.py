"""Invariant watchdogs: cheap runtime checks, off by default.

A watchdog is a registry of *observational* assertions the simulation
can evaluate while it runs — refresh-count conservation per window, "no
group skipped while it still held charge", codec round-trip spot
checks.  Checks only read simulation state and draw no randomness, so
an instrumented-and-watched run is bit-identical to a bare one (the
golden-parity suite asserts this with the watchdog enabled).

Activation mirrors the probe bus: components look up the ambient
watchdog at construction time (:func:`get_watchdog`, default
:data:`NULL_WATCHDOG`, whose ``enabled`` flag is ``False``) and guard
the *evidence gathering* behind ``if self.watchdog.enabled`` so the
disabled path costs one attribute read.  Install one with::

    from repro.obs.invariants import watch

    with watch() as wd:
        system = ZeroRefreshSystem(config)   # picks up the watchdog
        system.run_windows(8)
    print(wd.report())

The experiment engine propagates ``Runner(watchdog=True)`` into worker
processes: each job runs under its own watchdog whose snapshot ships
back with the job's metrics, so violations survive the fan-out and land
in the merged metrics manifest (CLI flag: ``--watchdog``).

Violations are also emitted on the ambient probe bus — an
``invariant.violations`` counter plus a structured
``invariant.violation`` trace event — so they show up in ``--trace``
streams and bench artifacts without any extra plumbing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

MAX_RECORDED = 100
"""Violation records kept per watchdog (counters keep exact totals)."""


class InvariantWatchdog:
    """Collects invariant check outcomes for one run."""

    enabled = True

    def __init__(self, max_recorded: int = MAX_RECORDED):
        self.checks_run = 0
        self.violation_count = 0
        self.violations: List[dict] = []
        self.max_recorded = max_recorded

    def check(self, name: str, ok: bool, **context) -> bool:
        """Record one check outcome; returns ``ok`` unchanged.

        On violation the context is recorded (up to ``max_recorded``),
        the ambient probe bus counts ``invariant.violations`` and
        ``invariant.<name>``, and a structured ``invariant.violation``
        event is emitted when tracing.  Nothing is raised — watchdogs
        observe, they never alter the run.
        """
        self.checks_run += 1
        if ok:
            return True
        self.violation_count += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(dict(context, check=name))
        from repro.obs import get_probes

        bus = get_probes()
        bus.count("invariant.violations")
        bus.count(f"invariant.{name}")
        bus.event("invariant.violation", check=name, **context)
        return False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able state, mergeable by
        :func:`repro.obs.metrics.merge_snapshots`."""
        return {
            "checks": self.checks_run,
            "violation_count": self.violation_count,
            "violations": list(self.violations),
        }

    def report(self) -> str:
        """End-of-run summary, one line per recorded violation."""
        head = (f"invariants: {self.checks_run} checks, "
                f"{self.violation_count} violations")
        if not self.violations:
            return head
        lines = [head]
        for violation in self.violations:
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(violation.items())
                if k != "check"
            )
            lines.append(f"  {violation['check']}: {fields}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InvariantWatchdog(checks={self.checks_run}, "
                f"violations={self.violation_count})")


class _NullWatchdog:
    """Disabled watchdog: the ambient default.

    ``enabled`` is ``False`` so call sites skip evidence gathering
    entirely; ``check`` still answers ``True`` for code that chains on
    the result.
    """

    enabled = False
    checks_run = 0
    violation_count = 0
    violations: List[dict] = []

    def check(self, name: str, ok: bool = True, **context) -> bool:
        return True

    def snapshot(self) -> dict:
        return {"checks": 0, "violation_count": 0, "violations": []}

    def report(self) -> str:
        return "invariants: disabled"


NULL_WATCHDOG = _NullWatchdog()
"""Shared disabled watchdog; what :func:`get_watchdog` returns by default."""

_ACTIVE: Optional[InvariantWatchdog] = None


def get_watchdog():
    """The ambient watchdog, or :data:`NULL_WATCHDOG` when none is active."""
    return _ACTIVE if _ACTIVE is not None else NULL_WATCHDOG


@contextmanager
def use_watchdog(watchdog: InvariantWatchdog) -> Iterator[InvariantWatchdog]:
    """Install ``watchdog`` as the ambient watchdog for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = watchdog
    try:
        yield watchdog
    finally:
        _ACTIVE = previous


@contextmanager
def watch(max_recorded: int = MAX_RECORDED) -> Iterator[InvariantWatchdog]:
    """Build and install a fresh watchdog for the block."""
    with use_watchdog(InvariantWatchdog(max_recorded=max_recorded)) as wd:
        yield wd
