"""Probe bus: counters, histograms, gauges, phase profiling, tracing.

Instrumentation in this codebase is *observational by construction*: a
:class:`ProbeBus` only ever records what the simulation tells it and
never draws randomness or feeds values back, so an instrumented run is
bit-identical to an uninstrumented one (a property the parity tests
assert).  Components take a bus at construction time and default to
:data:`NULL_PROBES`, a no-op singleton cheap enough to leave the calls
in hot paths.

Five facilities share the bus:

* **counters** — ``bus.count("refresh.groups_skipped", n)``; dotted
  names, ``<subsystem>.<quantity>``, accumulated over the bus lifetime;
* **histograms** — ``bus.observe("sim.window_skip_rate", 0.4)``;
  fixed-bucket distributions (see :mod:`repro.obs.metrics` for the
  bounds registry) for quantities whose *shape* matters;
* **gauges** — ``bus.gauge("sys.allocated_fraction", 0.7)``; last
  value plus a min/max envelope;
* **phases** — ``with bus.phase("measure"): ...`` accumulates wall time
  per phase name (the ``--profile`` CLI view and the CI benchmark
  artifact);
* **events** — ``bus.event("refresh.ar", bank=0, ...)`` appends one
  JSON line to the attached :class:`JsonlTraceSink` (the ``--trace``
  stream).  Events carry *simulated* time where available, never wall
  time, so traces are deterministic; a monotone ``seq`` field orders
  them.  Guard construction of expensive event payloads with
  ``bus.tracing``.

:meth:`ProbeBus.snapshot` returns the bus state as a JSON-able dict;
snapshots merge via :func:`repro.obs.metrics.merge_snapshots`, which is
how per-worker metrics captured by the experiment engine become one
run-level manifest.  :meth:`ProbeBus.fork` creates a child bus for
per-job capture whose events still flow to this bus's sink;
:meth:`ProbeBus.absorb` folds the child back in.
"""

from __future__ import annotations

import json
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from types import MappingProxyType
from typing import Dict, Iterator, List, Optional, TextIO, Union

from repro.obs.metrics import Gauge, Histogram, bounds_for


class JsonlTraceSink:
    """Writes probe events as JSON lines to a path or open file.

    ``flush_every=N`` flushes the underlying file after every N records
    so a trace survives a worker crash (off by default: flushing every
    line costs syscalls the happy path doesn't need — the chaos driver
    and the engine's span store arm it).  ``append=True`` opens an
    owned path in append mode, for stores shared across resumes.
    ``checksum=True`` seals each line with an embedded record digest
    (:func:`repro.store.envelope.seal_record`) so readers can detect
    bit flips; the engine's durable span store arms it.

    A write failure (ENOSPC, EIO) degrades the sink — further records
    are dropped with one warning and a ``store.degraded`` gauge —
    rather than crashing the traced run.
    """

    def __init__(self, target: Union[str, Path, TextIO], *,
                 flush_every: Optional[int] = None, append: bool = False,
                 checksum: bool = False):
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if hasattr(target, "write"):
            self._fh: TextIO = target
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a" if append else "w",
                                      encoding="utf-8")
            self._owns = True
        self._closed = False
        self.flush_every = flush_every
        self.checksum = checksum
        self.events_written = 0
        self.degraded = False

    def emit(self, record: dict) -> None:
        if self.degraded:
            return
        if self.checksum:
            from repro.store.envelope import seal_record

            line = seal_record(record)
        else:
            line = json.dumps(record, sort_keys=True)
        try:
            self._fh.write(line + "\n")
            self.events_written += 1
            if (self.flush_every is not None
                    and self.events_written % self.flush_every == 0):
                self._fh.flush()
        except OSError as exc:
            from repro.obs import get_probes

            self.degraded = True
            get_probes().gauge("store.degraded", 1)
            target = self.path if self.path is not None else "<stream>"
            warnings.warn(
                f"trace sink at {target} is degraded "
                f"({type(exc).__name__}: {exc}); further trace records "
                f"will be dropped",
                RuntimeWarning,
                stacklevel=2,
            )

    def close(self) -> None:
        """Flush (and close an owned file); safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.flush()
        except OSError:
            self.degraded = True
        if self._owns:
            try:
                self._fh.close()
            except OSError:
                pass


class ListTraceSink:
    """Keeps probe events in memory — for export pipelines and tests.

    The ``--trace-chrome`` CLI path uses this when no JSONL file was
    requested: events accumulate here and are converted to Chrome trace
    format after the run.
    """

    def __init__(self):
        self.records: List[dict] = []

    @property
    def events_written(self) -> int:
        return len(self.records)

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class ProbeBus:
    """Collects counters, histograms, gauges, phase times, trace events."""

    enabled = True

    def __init__(self, trace=None):
        self.counters: Dict[str, float] = {}
        self.wall_times: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.trace = trace
        self.events_emitted = 0
        self._seq = 0
        self._delegate: Optional["ProbeBus"] = None

    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when events reach a sink — gate costly payload building."""
        if self._delegate is not None:
            return self._delegate.tracing
        return self.trace is not None

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: Union[int, float],
                bounds=None) -> None:
        """Record one observation into the named fixed-bucket histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds or bounds_for(name))
        hist.observe(value)

    def observe_many(self, name: str, values, bounds=None) -> None:
        """Vectorised :meth:`observe` for arrays of observations."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds or bounds_for(name))
        hist.observe_many(values)

    def gauge(self, name: str, value: Union[int, float]) -> None:
        """Set the named gauge (tracks last value and min/max envelope)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def event(self, name: str, **fields) -> None:
        if self._delegate is not None:
            if self._delegate.tracing:
                self._delegate.event(name, **fields)
                self.events_emitted += 1
            return
        if self.trace is None:
            return
        record = dict(fields, event=name, seq=self._seq)
        self._seq += 1
        self.trace.emit(record)
        self.events_emitted += 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time spent inside the block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_times[name] = self.wall_times.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    # composition: per-job capture
    # ------------------------------------------------------------------
    def fork(self) -> "ProbeBus":
        """A child bus for scoped capture (one engine job, one phase).

        The child accumulates counters, histograms, gauges and phase
        times separately — snapshot it for the per-job record — while
        its events still flow to this bus's sink with this bus's
        sequence numbers, so the trace stream stays ordered and whole.
        Fold the child back with :meth:`absorb`.
        """
        child = ProbeBus()
        child._delegate = self
        return child

    def absorb(self, other: "ProbeBus") -> None:
        """Fold another bus's metrics into this one.

        Events are *not* transferred: a forked child already delivered
        them to this bus's sink as they happened.
        """
        for name, value in other.counters.items():
            self.count(name, value)
        for name, seconds in other.wall_times.items():
            self.wall_times[name] = self.wall_times.get(name, 0.0) + seconds
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_snapshot(hist.snapshot())
            else:
                mine.merge(hist)
        for name, gauge in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = Gauge.from_snapshot(gauge.snapshot())
            else:
                mine.merge(gauge)

    def merge_snapshot(self, snap: dict, include_phases: bool = False) -> None:
        """Fold a snapshot dict into the live bus (cache-hit replay).

        Counters, histograms and gauges merge; phase wall times are
        skipped by default because a replayed snapshot's timings belong
        to the run that produced it, not this one.  Events are never
        replayed.
        """
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        if include_phases:
            for name, seconds in snap.get("phases", {}).items():
                self.wall_times[name] = (
                    self.wall_times.get(name, 0.0) + seconds
                )
        for name, hist_snap in snap.get("histograms", {}).items():
            incoming = Histogram.from_snapshot(hist_snap)
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = incoming
            else:
                mine.merge(incoming)
        for name, gauge_snap in snap.get("gauges", {}).items():
            incoming = Gauge.from_snapshot(gauge_snap)
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = incoming
            else:
                mine.merge(incoming)

    # ------------------------------------------------------------------
    def profile_report(self) -> str:
        """One-line per-phase timing summary (the ``--profile`` output)."""
        if not self.wall_times:
            return "profile: no phases recorded"
        parts = [f"{name} {seconds:.3f}s"
                 for name, seconds in sorted(self.wall_times.items())]
        return "profile: " + ", ".join(parts)

    def snapshot(self) -> dict:
        """JSON-able, mergeable state: counters, phases, event volume,
        histograms and gauges (see :func:`repro.obs.metrics.merge_snapshots`)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "phases": {k: round(v, 6)
                       for k, v in sorted(self.wall_times.items())},
            "events": self.events_emitted,
            "histograms": {name: self.histograms[name].snapshot()
                           for name in sorted(self.histograms)},
            "gauges": {name: self.gauges[name].snapshot()
                       for name in sorted(self.gauges)},
        }

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()


_EMPTY_MAPPING = MappingProxyType({})


class _NullProbes:
    """No-op bus: the default wired into every component.

    Must stay allocation-free on the hot paths — ``phase`` reuses one
    shared context manager and the other methods return immediately.
    The mapping attributes are read-only views so an accidental write
    through :data:`NULL_PROBES` raises instead of leaking global state.
    """

    enabled = False
    tracing = False
    events_emitted = 0

    @property
    def counters(self):
        return _EMPTY_MAPPING

    @property
    def wall_times(self):
        return _EMPTY_MAPPING

    @property
    def histograms(self):
        return _EMPTY_MAPPING

    @property
    def gauges(self):
        return _EMPTY_MAPPING

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def observe(self, name: str, value: Union[int, float],
                bounds=None) -> None:
        pass

    def observe_many(self, name: str, values, bounds=None) -> None:
        pass

    def gauge(self, name: str, value: Union[int, float]) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    @contextmanager
    def _null_phase(self) -> Iterator[None]:
        yield

    def phase(self, name: str):
        return self._null_phase()

    def profile_report(self) -> str:
        return "profile: disabled"

    def snapshot(self) -> dict:
        return {"counters": {}, "phases": {}, "events": 0,
                "histograms": {}, "gauges": {}}

    def close(self) -> None:
        pass


NULL_PROBES = _NullProbes()
"""Shared no-op bus; safe to pass anywhere a :class:`ProbeBus` fits."""
