"""Probe bus: named counters, phase wall-time profiling, JSONL tracing.

Instrumentation in this codebase is *observational by construction*: a
:class:`ProbeBus` only ever records what the simulation tells it and
never draws randomness or feeds values back, so an instrumented run is
bit-identical to an uninstrumented one (a property the parity tests
assert).  Components take a bus at construction time and default to
:data:`NULL_PROBES`, a no-op singleton cheap enough to leave the calls
in hot paths.

Three facilities share the bus:

* **counters** — ``bus.count("refresh.groups_skipped", n)``; dotted
  names, ``<subsystem>.<quantity>``, accumulated over the bus lifetime;
* **phases** — ``with bus.phase("measure"): ...`` accumulates wall time
  per phase name (the ``--profile`` CLI view and the CI benchmark
  artifact);
* **events** — ``bus.event("refresh.ar", bank=0, ...)`` appends one
  JSON line to the attached :class:`JsonlTraceSink` (the ``--trace``
  stream).  Events carry *simulated* time where available, never wall
  time, so traces are deterministic; a monotone ``seq`` field orders
  them.  Guard construction of expensive event payloads with
  ``bus.tracing``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, TextIO, Union


class JsonlTraceSink:
    """Writes probe events as JSON lines to a path or open file."""

    def __init__(self, target: Union[str, Path, TextIO]):
        if hasattr(target, "write"):
            self._fh: TextIO = target
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
            self._owns = True
        self.events_written = 0

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class ProbeBus:
    """Collects counters, per-phase wall times and optional trace events."""

    enabled = True

    def __init__(self, trace: Optional[JsonlTraceSink] = None):
        self.counters: Dict[str, float] = {}
        self.wall_times: Dict[str, float] = {}
        self.trace = trace
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when events reach a sink — gate costly payload building."""
        return self.trace is not None

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def event(self, name: str, **fields) -> None:
        if self.trace is None:
            return
        record = dict(fields, event=name, seq=self._seq)
        self._seq += 1
        self.trace.emit(record)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time spent inside the block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_times[name] = self.wall_times.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    def profile_report(self) -> str:
        """One-line per-phase timing summary (the ``--profile`` output)."""
        if not self.wall_times:
            return "profile: no phases recorded"
        parts = [f"{name} {seconds:.3f}s"
                 for name, seconds in sorted(self.wall_times.items())]
        return "profile: " + ", ".join(parts)

    def snapshot(self) -> dict:
        """JSON-able state: counters, phase wall times, trace volume."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "phases": {k: round(v, 6)
                       for k, v in sorted(self.wall_times.items())},
            "events": self.trace.events_written if self.trace else 0,
        }

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()


class _NullProbes:
    """No-op bus: the default wired into every component.

    Must stay allocation-free on the hot paths — ``phase`` reuses one
    shared context manager and the other methods return immediately.
    """

    enabled = False
    tracing = False
    counters: Dict[str, float] = {}
    wall_times: Dict[str, float] = {}

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    @contextmanager
    def _null_phase(self) -> Iterator[None]:
        yield

    def phase(self, name: str):
        return self._null_phase()

    def profile_report(self) -> str:
        return "profile: disabled"

    def snapshot(self) -> dict:
        return {"counters": {}, "phases": {}, "events": 0}

    def close(self) -> None:
        pass


NULL_PROBES = _NullProbes()
"""Shared no-op bus; safe to pass anywhere a :class:`ProbeBus` fits."""
