"""Bench-regression reporter: diff a bench artifact against a baseline.

CI's bench-smoke job writes ``BENCH_sim.json`` — probe counters,
histogram/gauge snapshots, phase wall times and engine cache stats for
a fixed quick experiment.  This module diffs such an artifact against a
committed baseline (``benchmarks/baseline/BENCH_sim.json``) with
per-metric tolerances and renders a markdown delta table, failing CI
when a *deterministic* metric drifts.

Tolerance model — an ordered list of ``(fnmatch pattern, tolerance)``
pairs, first match wins:

* ``0.0`` (or any float): maximum allowed relative change; the
  simulator is seeded and deterministic, so counters, histograms and
  gauges default to exact equality — any drift means simulated
  behaviour changed and either a bug crept in or the baseline must be
  consciously regenerated;
* ``None``: informational — wall-clock timings and cache-warmth stats
  vary by machine, so they are reported but never fail the build.

Usage::

    python -m repro.obs.report benchmarks/baseline/BENCH_sim.json \
        BENCH_sim.json --markdown-out bench_delta.md

Exit status 1 when any strict metric regressed (use
``--tolerance 'counters.sim.*=0.05'`` to loosen specific metrics).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

Tolerance = Optional[float]

DEFAULT_TOLERANCES: Tuple[Tuple[str, Tolerance], ...] = (
    # wall-clock and machine-dependent quantities: report, never fail
    ("elapsed_s", None),
    ("phases.*", None),
    ("engine.sim_seconds", None),
    ("engine.cache_hits", None),
    ("engine.cache_misses", None),
    ("engine.cache_hit_rate", None),
    # everything else is seeded simulation output: exact match required
    ("*", 0.0),
)


def flatten(payload: dict, prefix: str = "") -> Dict[str, float]:
    """Dotted-path view of every numeric leaf in a JSON document.

    Lists flatten by index (histogram bucket counts become
    ``histograms.<name>.counts.<i>``); strings, nulls and booleans are
    skipped — the reporter compares numbers.
    """
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            flat.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(payload, (list, tuple)):
        for i, value in enumerate(payload):
            flat.update(flatten(value, f"{prefix}{i}."))
    elif isinstance(payload, bool) or payload is None:
        pass
    elif isinstance(payload, (int, float)):
        flat[prefix[:-1]] = float(payload)
    return flat


def tolerance_for(path: str,
                  tolerances: Sequence[Tuple[str, Tolerance]]) -> Tolerance:
    """First matching tolerance for a metric path (``None`` = info-only)."""
    for pattern, tolerance in tolerances:
        if fnmatchcase(path, pattern):
            return tolerance
    return 0.0


@dataclass
class MetricDelta:
    """One compared metric."""

    path: str
    baseline: Optional[float]
    current: Optional[float]
    status: str  # "ok" | "fail" | "info" | "added" | "removed"

    @property
    def abs_delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def rel_delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def render_delta(self) -> str:
        rel = self.rel_delta
        if rel is None:
            return "-"
        if rel == 0:
            return "0"
        if rel == float("inf"):
            return "new≠0"
        return f"{rel:+.2%}"


@dataclass
class RegressionReport:
    """Outcome of one baseline/current comparison."""

    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status in ("fail", "removed")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        n_info = sum(1 for d in self.deltas if d.status == "info")
        n_added = sum(1 for d in self.deltas if d.status == "added")
        state = "OK" if self.ok else "REGRESSION"
        return (f"bench-regression: {state} — {len(self.deltas)} metrics, "
                f"{len(self.regressions)} failing, {n_added} new, "
                f"{n_info} informational")

    def to_markdown(self, max_rows: int = 60) -> str:
        """Markdown delta table: failures first, then notable info rows."""
        lines = [f"### {self.summary()}", ""]
        interesting = [d for d in self.deltas if d.status != "ok"]
        # failures always shown; info rows only when they moved
        shown = [d for d in interesting
                 if d.status != "info" or (d.rel_delta or 0) != 0]
        shown.sort(key=lambda d: (d.status not in ("fail", "removed"),
                                  d.path))
        if not shown:
            lines.append("No metric drift against the baseline.")
            return "\n".join(lines) + "\n"
        lines += ["| metric | baseline | current | Δ | status |",
                  "|---|---:|---:|---:|---|"]
        for delta in shown[:max_rows]:
            fmt = lambda v: "-" if v is None else f"{v:g}"  # noqa: E731
            lines.append(
                f"| `{delta.path}` | {fmt(delta.baseline)} | "
                f"{fmt(delta.current)} | {delta.render_delta()} | "
                f"{delta.status} |"
            )
        if len(shown) > max_rows:
            lines.append(f"| … {len(shown) - max_rows} more rows | | | | |")
        return "\n".join(lines) + "\n"


def compare(baseline: dict, current: dict,
            tolerances: Optional[Sequence[Tuple[str, Tolerance]]] = None,
            ) -> RegressionReport:
    """Diff two bench artifacts (parsed JSON documents)."""
    tolerances = tuple(tolerances) if tolerances else DEFAULT_TOLERANCES
    base_flat = flatten(baseline)
    curr_flat = flatten(current)
    report = RegressionReport()
    for path in sorted(set(base_flat) | set(curr_flat)):
        tolerance = tolerance_for(path, tolerances)
        base = base_flat.get(path)
        curr = curr_flat.get(path)
        if base is None:
            # new instrumentation: informational, never a failure
            status = "added"
        elif curr is None:
            # a strict metric disappearing is as suspicious as drifting
            status = "removed" if tolerance is not None else "info"
        elif tolerance is None:
            status = "info"
        else:
            if base == 0:
                within = curr == 0 if tolerance == 0 else (
                    abs(curr) <= tolerance
                )
            else:
                within = abs(curr - base) <= tolerance * abs(base)
            status = "ok" if within else "fail"
        report.deltas.append(
            MetricDelta(path=path, baseline=base, current=curr, status=status)
        )
    return report


def parse_tolerance_args(specs: Sequence[str],
                         ) -> List[Tuple[str, Tolerance]]:
    """Parse ``PATTERN=REL`` CLI overrides (``REL`` may be ``info``)."""
    overrides: List[Tuple[str, Tolerance]] = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(f"tolerance must be PATTERN=REL, got {spec!r}")
        overrides.append(
            (pattern, None if value == "info" else float(value))
        )
    return overrides


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Diff a BENCH_sim.json against a committed baseline; "
                    "exit 1 on regressions beyond tolerance.",
    )
    parser.add_argument("baseline", type=Path,
                        help="committed baseline artifact")
    parser.add_argument("current", type=Path,
                        help="freshly produced artifact")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="PATTERN=REL",
                        help="override tolerance for matching metrics "
                             "(relative fraction, or 'info' to make them "
                             "report-only); may repeat, first match wins")
    parser.add_argument("--markdown-out", type=Path, default=None,
                        metavar="PATH", help="also write the delta table "
                                             "as markdown")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    current = json.loads(args.current.read_text(encoding="utf-8"))
    tolerances = (tuple(parse_tolerance_args(args.tolerance))
                  + DEFAULT_TOLERANCES)
    report = compare(baseline, current, tolerances)

    markdown = report.to_markdown()
    if args.markdown_out is not None:
        args.markdown_out.parent.mkdir(parents=True, exist_ok=True)
        args.markdown_out.write_text(markdown, encoding="utf-8")
    print(markdown)
    print(report.summary(), file=sys.stderr)
    if not report.ok:
        for delta in report.regressions[:20]:
            print(f"  REGRESSION {delta.path}: {delta.baseline} -> "
                  f"{delta.current} ({delta.render_delta()})",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
