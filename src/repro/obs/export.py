"""Export probe event streams as Chrome-trace / Perfetto JSON.

The ``--trace`` JSONL stream is convenient to grep but invisible to
timeline tooling.  This module converts it into the Chrome Trace Event
format (the JSON flavour Perfetto's https://ui.perfetto.dev loads
directly): every probe event becomes an *instant* event placed on the
**simulated** clock — one trace microsecond per simulated microsecond —
so two runs of the same experiment produce byte-identical traces.

Track layout:

* process = kernel (the ``kernel`` field probe events carry: the
  refresh scheme or rank name), with a ``process_name`` metadata
  record;
* thread  = bank (the ``bank`` field), thread 0 for bank-less events;
* counter tracks (``ph: "C"``) are synthesised from the numeric fields
  named in :data:`COUNTER_FIELDS` — per-window refreshed/skipped group
  counts plot as stacked area charts in Perfetto.

Use from the CLI (``python -m repro.experiments ... --trace-chrome
out.json``) or standalone::

    python -m repro.obs.export repro-trace.jsonl -o trace.chrome.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

US_PER_SIM_SECOND = 1_000_000
"""Trace timestamps are integers in microseconds of simulated time."""

COUNTER_FIELDS: Dict[str, Sequence[str]] = {
    "sim.window": ("refreshed", "skipped"),
    "refresh.ar": ("refreshed",),
    "refresh.status_renewal": ("discharged",),
}
"""Event fields promoted to Chrome counter tracks, by event name."""

_META_FIELDS = ("event", "seq", "t", "kernel", "bank")


def chrome_trace(records: Iterable[dict]) -> dict:
    """Convert probe event records into a Chrome trace document.

    ``records`` are the parsed JSONL lines (or
    :class:`~repro.obs.probes.ListTraceSink` records).  Events without a
    simulated-time ``t`` field land at t=0; ordering within a timestamp
    follows the input (``seq``) order, which Chrome's format permits.
    """
    events: List[dict] = []
    pids: Dict[str, int] = {}
    for record in records:
        name = str(record.get("event", "event"))
        ts = float(record.get("t", 0.0)) * US_PER_SIM_SECOND
        kernel = str(record.get("kernel", "") or "sim")
        if kernel not in pids:
            pids[kernel] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[kernel],
                "tid": 0, "args": {"name": kernel},
            })
        pid = pids[kernel]
        tid = int(record.get("bank", 0))
        args = {k: v for k, v in record.items() if k not in _META_FIELDS}
        events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for field in COUNTER_FIELDS.get(name, ()):
            if field in record:
                events.append({
                    "name": f"{name}.{field}",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {field: record[field]},
                })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.obs"},
    }


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a probe-trace JSONL file into event records."""
    records = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_chrome_trace(records: Iterable[dict],
                       path: Union[str, Path]) -> int:
    """Write records as a Chrome trace file; returns the event count."""
    payload = chrome_trace(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                    encoding="utf-8")
    return len(payload["traceEvents"])


def convert_jsonl(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Convert a JSONL probe trace into a Chrome trace file."""
    return write_chrome_trace(read_jsonl(src), dst)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Convert a JSONL probe trace to Chrome-trace/Perfetto "
                    "JSON (open at https://ui.perfetto.dev).",
    )
    parser.add_argument("trace", type=Path, help="JSONL probe trace file")
    parser.add_argument("-o", "--out", type=Path, default=None,
                        help="output path (default: <trace>.chrome.json)")
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else args.trace.with_suffix(
        args.trace.suffix + ".chrome.json"
    )
    n = convert_jsonl(args.trace, out)
    print(f"{out}: {n} trace events")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
