"""Export probe event streams as Chrome-trace / Perfetto JSON.

The ``--trace`` JSONL stream is convenient to grep but invisible to
timeline tooling.  This module converts it into the Chrome Trace Event
format (the JSON flavour Perfetto's https://ui.perfetto.dev loads
directly): every probe event becomes an *instant* event placed on the
**simulated** clock — one trace microsecond per simulated microsecond —
so two runs of the same experiment produce byte-identical traces.

Track layout:

* process = kernel (the ``kernel`` field probe events carry: the
  refresh scheme or rank name), with a ``process_name`` metadata
  record;
* thread  = bank (the ``bank`` field), thread 0 for bank-less events;
* counter tracks (``ph: "C"``) are synthesised from the numeric fields
  named in :data:`COUNTER_FIELDS` — per-window refreshed/skipped group
  counts plot as stacked area charts in Perfetto.

Span records (:mod:`repro.obs.spans`) convert too: each span becomes a
*complete* (``ph: "X"``) slice on the **wall** clock, grouped on a
dedicated ``spans:<trace-id>`` process track so the causal tree of a
run sits next to its simulated-time event tracks.  Pass them via
``write_chrome_trace(..., span_records=...)`` or point the CLI at a
span store JSONL directly.

Use from the CLI (``python -m repro.experiments ... --trace-chrome
out.json``) or standalone::

    python -m repro.obs.export repro-trace.jsonl -o trace.chrome.json
    python -m repro.obs.export .repro-cache/spans/<run-id>.jsonl \\
        -o run.chrome.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

US_PER_SIM_SECOND = 1_000_000
"""Trace timestamps are integers in microseconds of simulated time."""

COUNTER_FIELDS: Dict[str, Sequence[str]] = {
    "sim.window": ("refreshed", "skipped"),
    "refresh.ar": ("refreshed",),
    "refresh.status_renewal": ("discharged",),
}
"""Event fields promoted to Chrome counter tracks, by event name."""

_META_FIELDS = ("event", "seq", "t", "kernel", "bank")

_SPAN_META_FIELDS = (
    "trace_id", "span_id", "parent_id", "name", "q", "t0", "dur_s",
)


def _job_lanes(records: List[dict]) -> Dict[str, int]:
    """Thread lane per ``job`` span, in deterministic start order."""
    jobs = sorted(
        (r for r in records if r.get("name") == "job"),
        key=lambda r: (r.get("t0", 0.0), str(r.get("span_id", ""))),
    )
    return {str(r.get("span_id", "")): i + 1 for i, r in enumerate(jobs)}


def span_chrome_events(span_records: Iterable[dict],
                       first_pid: int = 1000) -> List[dict]:
    """Span records as Chrome *complete* (``ph: "X"``) slices.

    Spans live on the wall clock; timestamps are rebased to the
    earliest span so the track starts at zero.  Each trace gets its own
    process (``spans:<trace-id>``, pids from ``first_pid`` up — clear
    of the kernel pids :func:`chrome_trace` assigns); each ``job``
    subtree gets its own thread lane so parallel jobs render as
    side-by-side nested slices instead of fighting over one lane.
    """
    from repro.obs.spans import dedupe_spans

    records = dedupe_spans(span_records)
    if not records:
        return []
    events: List[dict] = []
    t_base = min(r.get("t0", 0.0) for r in records)
    by_id = {str(r.get("span_id", "")): r for r in records}
    lanes = _job_lanes(records)
    pids: Dict[str, int] = {}
    for record in records:
        trace_id = str(record.get("trace_id", "") or "trace")
        if trace_id not in pids:
            pids[trace_id] = first_pid + len(pids)
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[trace_id],
                "tid": 0, "args": {"name": f"spans:{trace_id}"},
            })
        # lane: the enclosing job subtree's lane; 0 for run/plan/reduce
        # and the serve.* spans that hang straight off the root
        lane = 0
        node, hops = record, 0
        while node is not None and hops < 64:
            lane = lanes.get(str(node.get("span_id", "")), 0)
            if lane or node.get("name") == "job":
                break
            node = by_id.get(str(node.get("parent_id", "")))
            hops += 1
        name = str(record.get("name", "span"))
        q = str(record.get("q", "") or "")
        args = {k: v for k, v in record.items()
                if k not in _SPAN_META_FIELDS}
        events.append({
            "name": f"{name} {q[:12]}" if q else name,
            "cat": "span",
            "ph": "X",
            "ts": round((record.get("t0", 0.0) - t_base) * 1e6, 3),
            "dur": round(record.get("dur_s", 0.0) * 1e6, 3),
            "pid": pids[trace_id],
            "tid": lane,
            "args": args,
        })
    return events


def chrome_trace(records: Iterable[dict],
                 span_records: Optional[Iterable[dict]] = None) -> dict:
    """Convert probe event records into a Chrome trace document.

    ``records`` are the parsed JSONL lines (or
    :class:`~repro.obs.probes.ListTraceSink` records).  Events without a
    simulated-time ``t`` field land at t=0; ordering within a timestamp
    follows the input (``seq``) order, which Chrome's format permits.

    ``span_records`` optionally merges a run's wall-clock span tree
    (see :func:`span_chrome_events`) into the same document, on its own
    process tracks.
    """
    events: List[dict] = []
    pids: Dict[str, int] = {}
    for record in records:
        name = str(record.get("event", "event"))
        ts = float(record.get("t", 0.0)) * US_PER_SIM_SECOND
        kernel = str(record.get("kernel", "") or "sim")
        if kernel not in pids:
            pids[kernel] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pids[kernel],
                "tid": 0, "args": {"name": kernel},
            })
        pid = pids[kernel]
        tid = int(record.get("bank", 0))
        args = {k: v for k, v in record.items() if k not in _META_FIELDS}
        events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for field in COUNTER_FIELDS.get(name, ()):
            if field in record:
                events.append({
                    "name": f"{name}.{field}",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {field: record[field]},
                })
    if span_records is not None:
        events.extend(span_chrome_events(span_records))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.obs"},
    }


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a probe-trace JSONL file into event records."""
    records = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def write_chrome_trace(
    records: Iterable[dict],
    path: Union[str, Path],
    span_records: Optional[Iterable[dict]] = None,
) -> int:
    """Write records as a Chrome trace file; returns the event count."""
    payload = chrome_trace(records, span_records=span_records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True) + "\n",
                    encoding="utf-8")
    return len(payload["traceEvents"])


def convert_jsonl(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Convert a JSONL probe trace into a Chrome trace file.

    Span-store files (records carrying ``span_id``) are detected per
    line, so pointing this at ``<cache>/spans/<run-id>.jsonl`` — or at
    a mixed stream — does the right thing.
    """
    records = read_jsonl(src)
    spans = [r for r in records if "span_id" in r]
    events = [r for r in records if "span_id" not in r]
    return write_chrome_trace(events, dst, span_records=spans or None)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Convert a JSONL probe trace to Chrome-trace/Perfetto "
                    "JSON (open at https://ui.perfetto.dev).",
    )
    parser.add_argument("trace", type=Path, help="JSONL probe trace file")
    parser.add_argument("-o", "--out", type=Path, default=None,
                        help="output path (default: <trace>.chrome.json)")
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else args.trace.with_suffix(
        args.trace.suffix + ".chrome.json"
    )
    n = convert_jsonl(args.trace, out)
    print(f"{out}: {n} trace events")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
