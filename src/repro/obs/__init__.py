"""Observability: the probe bus and its process-wide activation.

Components accept a ``probes`` argument and default to the ambient bus,
so instrumentation normally flows in one of two ways:

* explicitly — build a :class:`ProbeBus` and hand it to
  :class:`~repro.core.zero_refresh.ZeroRefreshSystem` (or
  ``repro.api.run_experiment(probes=...)``);
* ambiently — ``with repro.obs.instrument(trace="run.jsonl") as bus:``
  installs the bus as the process default picked up by every system
  constructed inside the block (what the ``--trace``/``--profile`` CLI
  flags do).

The ambient bus is per-process: engine worker processes do not inherit
it, so instrumented experiment runs execute with ``jobs=1``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.probes import NULL_PROBES, JsonlTraceSink, ProbeBus

__all__ = [
    "JsonlTraceSink",
    "NULL_PROBES",
    "ProbeBus",
    "get_probes",
    "instrument",
    "use_probes",
]

_ACTIVE: Optional[ProbeBus] = None


def get_probes():
    """The ambient bus, or :data:`NULL_PROBES` when none is installed."""
    return _ACTIVE if _ACTIVE is not None else NULL_PROBES


@contextmanager
def use_probes(bus: ProbeBus) -> Iterator[ProbeBus]:
    """Install ``bus`` as the ambient probe bus for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bus
    try:
        yield bus
    finally:
        _ACTIVE = previous


@contextmanager
def instrument(trace: Optional[Union[str, object]] = None) -> Iterator[ProbeBus]:
    """Build, install and (on exit) close an instrumentation bus.

    ``trace`` may be a path or open file for the JSONL event stream;
    ``None`` keeps counters and phase timings without event output.
    """
    sink = None
    if trace is not None:
        sink = trace if isinstance(trace, JsonlTraceSink) else JsonlTraceSink(trace)
    bus = ProbeBus(trace=sink)
    try:
        with use_probes(bus):
            yield bus
    finally:
        bus.close()
