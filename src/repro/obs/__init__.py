"""Observability: probe bus, metrics, watchdogs — process-wide activation.

Components accept a ``probes`` argument and default to the ambient bus,
so instrumentation normally flows in one of two ways:

* explicitly — build a :class:`ProbeBus` and hand it to
  :class:`~repro.core.zero_refresh.ZeroRefreshSystem` (or
  ``repro.api.run_experiment(probes=...)``);
* ambiently — ``with repro.obs.instrument(trace="run.jsonl") as bus:``
  installs the bus as the process default picked up by every system
  constructed inside the block (what the ``--trace``/``--profile`` CLI
  flags do).

The ambient bus is per-process, but since PR 3 that no longer limits
fan-out: the experiment engine runs every job under its own bus, ships
each job's :meth:`ProbeBus.snapshot` back with the result, and merges
the snapshots (``repro.obs.metrics.merge_snapshots``) into a run-level
metrics manifest — counters, histograms and gauges from a ``jobs=4``
run merge to exactly the ``jobs=1`` numbers, and cached jobs replay
their stored metrics.  Tooling on top of the bus:

* :mod:`repro.obs.metrics` — histogram/gauge types and the snapshot
  algebra;
* :mod:`repro.obs.invariants` — opt-in runtime invariant watchdogs;
* :mod:`repro.obs.export` — JSONL trace → Chrome-trace/Perfetto;
* :mod:`repro.obs.report` — bench-artifact regression reporter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.metrics import (
    Gauge,
    Histogram,
    empty_snapshot,
    merge_snapshots,
    prometheus_text,
    register_histogram,
)
from repro.obs.probes import (
    NULL_PROBES,
    JsonlTraceSink,
    ListTraceSink,
    ProbeBus,
)
from repro.obs.spans import (
    NULL_TRACER,
    SpanContext,
    SpanTracer,
    get_tracer,
    span_tree,
    trace_id_for_run,
    tree_signature,
    use_tracer,
)

__all__ = [
    "Gauge",
    "Histogram",
    "InvariantWatchdog",
    "JsonlTraceSink",
    "ListTraceSink",
    "NULL_PROBES",
    "NULL_TRACER",
    "NULL_WATCHDOG",
    "ProbeBus",
    "SpanContext",
    "SpanTracer",
    "empty_snapshot",
    "get_probes",
    "get_tracer",
    "get_watchdog",
    "instrument",
    "merge_snapshots",
    "prometheus_text",
    "register_histogram",
    "span_tree",
    "trace_id_for_run",
    "tree_signature",
    "use_probes",
    "use_tracer",
    "use_watchdog",
    "watch",
]

_ACTIVE: Optional[ProbeBus] = None


def get_probes():
    """The ambient bus, or :data:`NULL_PROBES` when none is installed."""
    return _ACTIVE if _ACTIVE is not None else NULL_PROBES


@contextmanager
def use_probes(bus: ProbeBus) -> Iterator[ProbeBus]:
    """Install ``bus`` as the ambient probe bus for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bus
    try:
        yield bus
    finally:
        _ACTIVE = previous


@contextmanager
def instrument(trace: Optional[Union[str, object]] = None) -> Iterator[ProbeBus]:
    """Build, install and (on exit) close an instrumentation bus.

    ``trace`` may be a path or open file for the JSONL event stream;
    ``None`` keeps counters and phase timings without event output.
    """
    sink = None
    if trace is not None:
        if isinstance(trace, (JsonlTraceSink, ListTraceSink)):
            sink = trace
        else:
            sink = JsonlTraceSink(trace)
    bus = ProbeBus(trace=sink)
    try:
        with use_probes(bus):
            yield bus
    finally:
        bus.close()


# imported after get_probes exists: invariants report violations on the
# ambient bus
from repro.obs.invariants import (  # noqa: E402
    NULL_WATCHDOG,
    InvariantWatchdog,
    get_watchdog,
    use_watchdog,
    watch,
)
