"""``repro inspect <run-id>``: reconstruct one run's timeline.

The engine leaves three artifacts per run under the cache root: a
journal (which jobs finished/failed), a span store (where the wall
time went — see :mod:`repro.obs.spans`) and the content-addressed
result cache (each done job's metrics snapshot).  This module joins
the three into one report: run state, cache hit ratio, per-phase
breakdown, retry/quarantine events, slowest jobs, the critical path
and a flat timeline — as text for humans or JSON for machines.

Deliberately import-light at module init: the experiment-layer imports
happen inside :func:`inspect_run` so ``repro.obs`` never depends on
``repro.experiments`` at import time.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Union


class UnknownRunError(KeyError):
    """No journal, no spans: nothing recorded under that run id."""


def _merge_cached_metrics(cache_root: Path, done_keys) -> dict:
    """Fold the cached metrics snapshots of the run's done jobs."""
    from repro.experiments.cache import ResultCache
    from repro.obs.metrics import empty_snapshot, merge_snapshots

    merged = empty_snapshot()
    cache = ResultCache(cache_root)
    for key in sorted(done_keys):
        payload = cache.get(key)
        if (isinstance(payload, dict)
                and set(payload) == {"result", "metrics"}
                and payload["metrics"]):
            merged = merge_snapshots(merged, payload["metrics"])
    return merged


def _critical_path(roots: List[dict]) -> List[dict]:
    """The max-duration child chain from the tree's slowest root."""
    path: List[dict] = []
    candidates = roots
    while candidates:
        node = max(candidates, key=lambda n: n.get("dur_s", 0.0))
        path.append({
            "name": node.get("name", ""),
            "q": node.get("q", ""),
            "dur_s": node.get("dur_s", 0.0),
        })
        candidates = node["children"]
    return path


def inspect_run(cache_root: Union[str, Path], run_id: str) -> dict:
    """Everything known about ``run_id``, as one JSON-able document.

    Raises :class:`UnknownRunError` when neither a journal nor a span
    store exists for the id.
    """
    from repro.experiments import journal as journal_mod
    from repro.obs.spans import (
        dedupe_spans,
        read_spans,
        span_path,
        span_tree,
    )

    cache_root = Path(cache_root)
    state = journal_mod.load_state(cache_root, run_id)
    spans = dedupe_spans(read_spans(span_path(cache_root, run_id)))
    if state is None and not spans:
        raise UnknownRunError(run_id)

    tree = span_tree(spans)
    by_name: dict = {}
    for span in spans:
        by_name.setdefault(span.get("name"), []).append(span)
    run_span = next(iter(by_name.get("run", [])), None)
    plan_span = next(iter(by_name.get("plan", [])), None)

    if run_span is not None:
        status = run_span.get("status", "ok")
        run_state = "finished" if status == "ok" else status
    else:
        run_state = "interrupted"

    hits = (run_span or {}).get("cache_hits")
    misses = (run_span or {}).get("cache_misses")
    attempted = (hits or 0) + (misses or 0)
    cache_doc = {
        "hits": hits,
        "misses": misses,
        "hit_ratio": round(hits / attempted, 4) if attempted else None,
    }

    phases: dict = {}
    for name in ("warmup", "measure"):
        records = by_name.get(name, [])
        if records:
            total = sum(s.get("dur_s", 0.0) for s in records)
            phases[name] = {
                "count": len(records),
                "total_s": round(total, 6),
                "mean_s": round(total / len(records), 6),
            }

    retries = sorted(
        (
            {
                "attempt": s.get("q", ""),
                "job": s.get("parent_id", ""),
                "error": s["error"],
                "t0": s.get("t0", 0.0),
            }
            for s in by_name.get("attempt", ())
            if "error" in s
        ),
        key=lambda r: r["t0"],
    )
    quarantined = (
        [
            dict(info, digest=key)
            for key, info in sorted(state.failed.items())
        ]
        if state else []
    )

    job_spans = sorted(by_name.get("job", ()),
                       key=lambda s: s.get("dur_s", 0.0), reverse=True)
    slowest = [
        {
            "digest": s.get("digest", s.get("q", "")),
            "index": s.get("index"),
            "dur_s": s.get("dur_s", 0.0),
            "attempts": s.get("attempts", 1),
            "status": s.get("status", "done"),
        }
        for s in job_spans[:5]
    ]

    t_base = min((s.get("t0", 0.0) for s in spans), default=0.0)
    timeline = [
        {
            "t": round(s.get("t0", 0.0) - t_base, 6),
            "name": s.get("name", ""),
            "q": s.get("q", ""),
            "dur_s": s.get("dur_s", 0.0),
            **({"error": s["error"]} if "error" in s else {}),
            **({"status": s["status"]} if "status" in s else {}),
        }
        for s in sorted(spans, key=lambda s: (s.get("t0", 0.0),
                                              s.get("name", "")))
    ]

    merged = _merge_cached_metrics(
        cache_root, state.done if state else ())
    interesting = {
        name: value
        for name, value in merged.get("counters", {}).items()
        if name.startswith(("sim.", "refresh.", "engine."))
    }

    return {
        "run_id": run_id,
        "trace_id": spans[0]["trace_id"] if spans else None,
        "experiment_id": (state.experiment_id if state
                          else (run_span or {}).get("experiment_id")),
        "state": run_state,
        "wall_s": (run_span or {}).get("dur_s"),
        "jobs": {
            # the plan span carries the count; legacy runs only stamp
            # it on the root span
            "planned": (plan_span or run_span or {}).get("planned"),
            "done": len(state.done) if state else None,
            "failed": len(state.failed) if state else None,
        },
        "cache": cache_doc,
        "phases": phases,
        "retries": retries,
        "quarantined": quarantined,
        "slowest_jobs": slowest,
        "critical_path": _critical_path(tree),
        "timeline": timeline,
        "counters": interesting,
    }


def list_runs(cache_root: Union[str, Path]) -> List[dict]:
    """Every run id with recorded artifacts, newest first.

    A run is listed when it left a journal, a span store, or both
    under ``cache_root``; the state column comes from the run span
    when one exists (``finished`` / ``partial-failure`` / ...) and
    falls back to ``interrupted`` for runs that never closed one.
    """
    from repro.experiments import journal as journal_mod
    from repro.obs.spans import dedupe_spans, read_spans, span_path, spans_dir

    cache_root = Path(cache_root)
    stamps: dict = {}
    for directory in (journal_mod.journal_dir(cache_root),
                      spans_dir(cache_root)):
        if not directory.is_dir():
            continue
        for path in directory.glob("*.jsonl"):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            stamps[path.stem] = max(mtime, stamps.get(path.stem, 0.0))

    rows: List[dict] = []
    for run_id, mtime in sorted(stamps.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        state = journal_mod.load_state(cache_root, run_id)
        spans = dedupe_spans(read_spans(span_path(cache_root, run_id)))
        run_span = next((s for s in spans if s.get("name") == "run"), None)
        if run_span is not None:
            status = run_span.get("status", "ok")
            run_state = "finished" if status == "ok" else status
        else:
            run_state = "interrupted"
        rows.append({
            "run_id": run_id,
            "state": run_state,
            "experiment_id": (state.experiment_id if state
                              else (run_span or {}).get("experiment_id")),
            "done": len(state.done) if state else None,
            "failed": len(state.failed) if state else None,
            "mtime": mtime,
        })
    return rows


def render_run_list(rows: List[dict]) -> str:
    """The human-readable ``repro inspect --list`` table."""
    if not rows:
        return "no recorded runs"
    lines = [f"{'run id':<28} {'state':<16} {'experiment':<10} "
             f"{'done':>5} {'failed':>6}"]
    for row in rows:
        done = "?" if row["done"] is None else row["done"]
        failed = "?" if row["failed"] is None else row["failed"]
        lines.append(
            f"{row['run_id']:<28} {row['state']:<16} "
            f"{row.get('experiment_id') or '-':<10} "
            f"{done:>5} {failed:>6}")
    return "\n".join(lines)


def render_report(doc: dict) -> str:
    """The human-readable ``repro inspect`` view of one run document."""
    lines = []
    wall = doc.get("wall_s")
    lines.append(
        f"run {doc['run_id']}  (trace {doc.get('trace_id') or '-'})")
    lines.append(
        f"  experiment: {doc.get('experiment_id') or '-'}"
        f"   state: {doc['state']}"
        + (f"   wall: {wall:.3f}s" if wall is not None else ""))
    jobs = doc["jobs"]
    cache = doc["cache"]
    ratio = cache.get("hit_ratio")
    def n(value):
        return "?" if value is None else value

    lines.append(
        f"  jobs: {n(jobs.get('planned'))} planned, "
        f"{n(jobs.get('done'))} done, "
        f"{jobs.get('failed') or 0} failed"
        f"   cache: {n(cache.get('hits'))} hits / "
        f"{n(cache.get('misses'))} misses"
        + (f" ({ratio:.0%} hit)" if ratio is not None else ""))
    if doc["phases"]:
        lines.append("  phases:")
        lines.append(f"    {'phase':<10} {'count':>5} {'total_s':>10} "
                     f"{'mean_s':>10}")
        for name, p in sorted(doc["phases"].items()):
            lines.append(f"    {name:<10} {p['count']:>5} "
                         f"{p['total_s']:>10.4f} {p['mean_s']:>10.4f}")
    if doc["retries"]:
        lines.append(f"  retries ({len(doc['retries'])}):")
        for r in doc["retries"]:
            lines.append(f"    attempt {r['attempt']}: {r['error']}")
    if doc["quarantined"]:
        lines.append(f"  quarantined ({len(doc['quarantined'])}):")
        for q in doc["quarantined"]:
            lines.append(
                f"    {q['digest'][:12]}: {q.get('error', '?')} "
                f"({q.get('attempts', '?')} attempts)")
    if doc["slowest_jobs"]:
        lines.append("  slowest jobs:")
        for j in doc["slowest_jobs"]:
            lines.append(
                f"    {str(j['digest'])[:12]:<12} {j['dur_s']:>8.3f}s "
                f"{j['attempts']} attempt(s)  {j['status']}")
    if doc["critical_path"]:
        chain = " > ".join(
            f"{n['name']}" + (f"[{n['q'][:8]}]" if n["q"] else "")
            for n in doc["critical_path"])
        lines.append(f"  critical path: {chain}")
    if doc["timeline"]:
        lines.append("  timeline:")
        for ev in doc["timeline"]:
            mark = ""
            if "error" in ev:
                mark = f"  ERROR {ev['error']}"
            elif "status" in ev and ev["status"] != "done":
                mark = f"  {ev['status']}"
            q = f"[{str(ev['q'])[:8]}]" if ev["q"] else ""
            lines.append(
                f"    t+{ev['t']:>8.3f}s  {ev['name']}{q} "
                f"({ev['dur_s']:.3f}s){mark}")
    if doc["counters"]:
        shown = sorted(doc["counters"].items())[:8]
        lines.append("  counters: " + ", ".join(
            f"{k}={v:g}" for k, v in shown))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro inspect",
        description="Reconstruct a run's timeline from its journal, "
                    "span store and cached metrics.",
    )
    parser.add_argument("run_id", nargs="?", default=None,
                        help="run id (the resume token printed "
                             "on stderr / X-Repro-Run-Id)")
    parser.add_argument("--list", action="store_true", dest="list_runs",
                        help="enumerate recorded runs, newest first")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default: $REPRO_CACHE_DIR or "
                             ".repro-cache)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full document as JSON")
    args = parser.parse_args(argv)

    from repro.experiments.cache import default_cache_dir

    cache_root = (Path(args.cache_dir) if args.cache_dir
                  else default_cache_dir())
    if args.list_runs:
        if args.run_id is not None:
            parser.error("--list takes no run id")
        rows = list_runs(cache_root)
        try:
            if args.json:
                print(json.dumps(rows, sort_keys=True, indent=2))
            else:
                print(render_run_list(rows))
            sys.stdout.flush()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if args.run_id is None:
        parser.error("give a run id, or --list to enumerate runs")
    try:
        doc = inspect_run(cache_root, args.run_id)
    except UnknownRunError:
        print(f"unknown run {args.run_id!r}: no journal or span store "
              f"under {cache_root}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(json.dumps(doc, sort_keys=True, indent=2))
        else:
            print(render_report(doc))
        sys.stdout.flush()
    except BrokenPipeError:
        # reader (e.g. `| head`) went away — not an error for a report CLI
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover - python -m repro.obs.inspect
    sys.exit(main())
