"""Route handlers for the serving daemon.

Each handler takes the :class:`~repro.serve.server.ReproServer` it runs
inside plus the parsed :class:`~repro.serve.http.HttpRequest`, and
returns a :class:`Response`.  Handlers validate eagerly and raise
:class:`~repro.serve.http.HttpError` for anything malformed, so the
dispatch layer can map problems onto 4xx responses uniformly.

Response bodies are canonical JSON (sorted keys): two requests with
identical inputs receive byte-identical bodies whether they were
coalesced into one batch, served from the result cache, or executed
fresh — the end-to-end tests assert exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.obs.metrics import prometheus_text
from repro.serve.batching import TransformItem
from repro.serve.http import HttpError, HttpRequest, json_body


@dataclass
class Response:
    """What a handler returns: status, body and extra headers."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def error_response(status: int, message: str,
                   headers: Dict[str, str] = None) -> Response:
    """Uniform JSON error body used by every failure path."""
    return Response(
        status=status,
        body=json_body({"error": message, "status": status}),
        headers=dict(headers or {}),
    )


# ----------------------------------------------------------------------
# control plane: /healthz and /metrics (never subject to backpressure)
# ----------------------------------------------------------------------
def handle_healthz(server, request: HttpRequest) -> Response:
    return Response(body=json_body({
        "status": "ok" if server.state == "serving" else server.state,
        "state": server.state,
        "inflight": server.inflight,
        "max_pending": server.config.max_pending,
    }))


def handle_metrics(server, request: HttpRequest) -> Response:
    text = prometheus_text(server.metrics_snapshot())
    return Response(
        body=text.encode("utf-8"),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


# ----------------------------------------------------------------------
# data plane: /v1/transform
# ----------------------------------------------------------------------
def parse_transform_request(server, request: HttpRequest) -> TransformItem:
    """Validate a transform body into a :class:`TransformItem`."""
    payload = request.json()
    if not isinstance(payload, dict):
        raise HttpError(400, "body must be a JSON object")
    op = payload.get("op", "encode")
    if op not in ("encode", "decode"):
        raise HttpError(400, f"op must be 'encode' or 'decode', got {op!r}")
    row_index = payload.get("row_index", 0)
    if not isinstance(row_index, int) or isinstance(row_index, bool):
        raise HttpError(400, "row_index must be an integer")
    if not 0 <= row_index < server.num_rows:
        raise HttpError(
            400,
            f"row_index {row_index} out of range [0, {server.num_rows})",
        )
    lines = payload.get("lines")
    if not isinstance(lines, list) or not lines:
        raise HttpError(400, "lines must be a non-empty list of word lists")
    words_per_line = server.codec.line_bytes // server.codec.word_bytes
    for line in lines:
        if not isinstance(line, list) or len(line) != words_per_line:
            raise HttpError(
                400, f"each line must be a list of {words_per_line} words"
            )
    try:
        array = np.array(lines, dtype=server.codec.dtype)
    except (ValueError, TypeError, OverflowError) as exc:
        raise HttpError(400, f"invalid word values: {exc}") from None
    return TransformItem(op=op, lines=array, row_index=row_index)


async def handle_transform(server, request: HttpRequest) -> Response:
    item = parse_transform_request(server, request)
    server.bus.count("serve.transform_requests")
    server.bus.count("serve.transform_lines", len(item.lines))
    result = await server.transform_batcher.submit(item)
    body = json_body({
        "op": item.op,
        "row_index": item.row_index,
        "lines": result.tolist(),
    })
    return Response(body=body)


# ----------------------------------------------------------------------
# data plane: /v1/experiments/{id}
# ----------------------------------------------------------------------
def parse_experiment_request(server, experiment_id: str,
                             request: HttpRequest):
    """Validate an experiment body into an engine ExperimentRequest."""
    from repro.experiments import REGISTRY
    from repro.experiments.engine import ExperimentRequest

    if experiment_id not in REGISTRY:
        raise HttpError(404, f"unknown experiment {experiment_id!r}")
    payload = request.json()
    if not isinstance(payload, dict):
        raise HttpError(400, "body must be a JSON object")
    unknown = sorted(set(payload) - {"quick", "overrides", "resume"})
    if unknown:
        raise HttpError(
            400, f"unknown request field(s): {', '.join(unknown)}"
        )
    quick = payload.get("quick", True)
    if not isinstance(quick, bool):
        raise HttpError(400, "quick must be a boolean")
    overrides = payload.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise HttpError(400, "overrides must be a JSON object")
    resume = payload.get("resume")
    if resume is not None and not isinstance(resume, str):
        raise HttpError(400, "resume must be a run-id string")
    try:
        json.dumps(overrides)
    except (TypeError, ValueError) as exc:  # pragma: no cover - json gave it
        raise HttpError(400, f"overrides not JSON-able: {exc}") from None
    return ExperimentRequest(
        experiment_id=experiment_id,
        quick=quick,
        overrides=overrides or None,
        use_cache=server.config.use_cache,
        cache_dir=server.config.cache_dir,
        jobs=1,
        resume=resume,
        backend=server.config.experiment_backend,
        workers=server.config.experiment_workers,
    )


# ----------------------------------------------------------------------
# data plane: /v1/sweeps
# ----------------------------------------------------------------------
def parse_sweep_request(server, request: HttpRequest):
    """Validate a sweep body into an engine ExperimentRequest.

    The body carries a full :class:`~repro.scenarios.spec.ScenarioSpec`
    wire dict under ``spec`` plus the same ``quick``/``overrides``/
    ``resume`` knobs the experiment endpoint takes.  The spec is parsed
    and expanded eagerly so an unknown axis, override key or reduction
    is a 400 here, never a failed engine run.
    """
    from repro.experiments.engine import ExperimentRequest
    from repro.experiments.runner import ExperimentSettings
    from repro.scenarios.executor import expand
    from repro.scenarios.spec import ScenarioError, ScenarioSpec

    payload = request.json()
    if not isinstance(payload, dict):
        raise HttpError(400, "body must be a JSON object")
    unknown = sorted(set(payload) - {"spec", "quick", "overrides", "resume"})
    if unknown:
        raise HttpError(
            400, f"unknown request field(s): {', '.join(unknown)}"
        )
    quick = payload.get("quick", True)
    if not isinstance(quick, bool):
        raise HttpError(400, "quick must be a boolean")
    overrides = payload.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise HttpError(400, "overrides must be a JSON object")
    resume = payload.get("resume")
    if resume is not None and not isinstance(resume, str):
        raise HttpError(400, "resume must be a run-id string")
    spec_data = payload.get("spec")
    if not isinstance(spec_data, dict):
        raise HttpError(400, "spec must be a JSON object (the wire form "
                             "of a ScenarioSpec; see repro list / "
                             "ScenarioSpec.to_dict)")
    try:
        spec = ScenarioSpec.from_dict(spec_data)
        settings = ExperimentSettings.from_dict(overrides or None,
                                                quick=quick)
        expand(spec, settings)
    except ScenarioError as exc:
        raise HttpError(400, f"invalid sweep spec: {exc}") from None
    except ValueError as exc:
        raise HttpError(400, str(exc)) from None
    return ExperimentRequest(
        spec=spec.to_dict(),
        quick=quick,
        overrides=overrides or None,
        use_cache=server.config.use_cache,
        cache_dir=server.config.cache_dir,
        jobs=1,
        resume=resume,
        backend=server.config.experiment_backend,
        workers=server.config.experiment_workers,
    )


async def handle_sweep(server, request: HttpRequest) -> Response:
    engine_request = parse_sweep_request(server, request)
    server.bus.count("serve.sweep_requests")
    try:
        payload = await server.submit_experiment(engine_request)
    except ValueError as exc:
        raise HttpError(400, str(exc)) from None
    headers = {}
    if payload.get("run_id"):
        headers["X-Repro-Run-Id"] = str(payload["run_id"])
    return Response(body=payload["result_json"].encode("utf-8"),
                    headers=headers)


# ----------------------------------------------------------------------
# data plane: /v1/runs/{run_id}
# ----------------------------------------------------------------------
def handle_run_status(server, run_id: str, request: HttpRequest) -> Response:
    """Live/finished status of one run, from journal + span store.

    A run is known if it has a journal, a span store, or is executing
    in a worker right now.  ``state`` is ``running`` while in flight;
    otherwise the root ``run`` span's recorded status (``ok`` /
    ``partial`` / ``failed``) decides, and a journal with no root span
    means the run was ``interrupted`` (killed before finishing — its
    resume token still works).
    """
    from pathlib import Path

    from repro.experiments import journal as journal_mod
    from repro.experiments.cache import default_cache_dir
    from repro.experiments.engine import request_run_id
    from repro.obs.spans import dedupe_spans, read_spans, span_path

    root = (Path(server.config.cache_dir) if server.config.cache_dir
            else default_cache_dir())
    state = journal_mod.load_state(root, run_id)
    spans = dedupe_spans(read_spans(span_path(root, run_id)))
    running = any(
        (req.resume or request_run_id(req)) == run_id
        for req in list(server._inflight_experiments.values())
    )
    if state is None and not spans and not running:
        raise HttpError(404, f"unknown run {run_id!r}")

    by_name = {}
    for span in spans:
        by_name.setdefault(span.get("name"), []).append(span)
    run_span = next(iter(by_name.get("run", [])), None)
    plan_span = next(iter(by_name.get("plan", [])), None)
    if running:
        run_state = "running"
    elif run_span is not None:
        status = run_span.get("status", "ok")
        run_state = "finished" if status == "ok" else status
    elif state is not None or spans:
        run_state = "interrupted"

    planned = plan_span.get("planned") if plan_span else None
    done = len(state.done) if state else 0
    failed = len(state.failed) if state else 0
    retries = sum(1 for s in by_name.get("attempt", ()) if "error" in s)
    body = {
        "run_id": run_id,
        "trace_id": spans[0]["trace_id"] if spans else None,
        "experiment_id": (state.experiment_id if state
                          else (run_span or {}).get("experiment_id")),
        "state": run_state,
        "jobs": {"planned": planned, "done": done, "failed": failed},
        "retries": retries,
        "spans": len(spans),
        "resumable": state is not None,
    }
    if run_span is not None:
        body["wall_s"] = run_span.get("dur_s")
        body["cache_hits"] = run_span.get("cache_hits")
        body["cache_misses"] = run_span.get("cache_misses")
    return Response(body=json_body(body))


async def handle_experiment(server, experiment_id: str,
                            request: HttpRequest) -> Response:
    engine_request = parse_experiment_request(server, experiment_id, request)
    try:
        payload = await server.submit_experiment(engine_request)
    except ValueError as exc:
        # ExperimentSettings.from_dict rejected the overrides
        raise HttpError(400, str(exc)) from None
    # the resume token rides in a header so the body stays byte-identical
    # across fresh / cached / resumed executions of the same request
    headers = {}
    if payload.get("run_id"):
        headers["X-Repro-Run-Id"] = str(payload["run_id"])
    return Response(body=payload["result_json"].encode("utf-8"),
                    headers=headers)
