"""Closed/open-loop load generator for the serving daemon.

Two driving disciplines, selected with ``--mode``:

* **closed** — ``concurrency`` workers each issue the next request as
  soon as the previous response lands (one keep-alive connection per
  worker).  Throughput is whatever the server sustains; latency is the
  in-system time under that concurrency.
* **open** — requests start on a fixed schedule at ``rate`` per second
  regardless of completions (fresh connection each), which is how real
  user traffic arrives; latency here includes queueing delay and the
  429 rejections show the backpressure boundary.

Each completed request records wall latency by status code; the run
report carries throughput plus p50/p90/p99/max latency and lands as
JSON (``--report``), in the shape the ``BENCH_*`` regression pipeline
consumes — the CI ``serve-smoke`` job uploads ``BENCH_serve.json``
built by this module.

Usage::

    python -m repro.serve.loadgen --port 8023 --mode closed \
        --concurrency 8 --duration 5 --endpoint transform \
        --report BENCH_serve.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve.http import ClientConnection, fetch, json_body


@dataclass
class LoadgenResult:
    """Everything one load-generation run measured."""

    mode: str
    endpoint: str
    duration_s: float
    requests: int = 0
    errors: int = 0
    by_status: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)

    def record(self, status: int, latency_s: float) -> None:
        self.requests += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if status == 200:
            self.latencies_s.append(latency_s)

    def record_error(self) -> None:
        self.requests += 1
        self.errors += 1

    @property
    def ok(self) -> int:
        return self.by_status.get(200, 0)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of successful-request latency."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def report(self) -> dict:
        """JSON-able summary in ``BENCH_*`` pipeline shape."""
        throughput = self.ok / self.duration_s if self.duration_s else 0.0
        return {
            "mode": self.mode,
            "endpoint": self.endpoint,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "by_status": {str(k): v
                          for k, v in sorted(self.by_status.items())},
            "throughput_rps": round(throughput, 2),
            "latency_ms": {
                "p50": round(self.percentile(0.50) * 1e3, 3),
                "p90": round(self.percentile(0.90) * 1e3, 3),
                "p99": round(self.percentile(0.99) * 1e3, 3),
                "max": round(max(self.latencies_s, default=0.0) * 1e3, 3),
                "mean": round(
                    sum(self.latencies_s)
                    / len(self.latencies_s) * 1e3, 3
                ) if self.latencies_s else 0.0,
            },
        }

    def render(self) -> str:
        rep = self.report()
        lat = rep["latency_ms"]
        return (
            f"loadgen [{self.mode}/{self.endpoint}]: "
            f"{rep['ok']}/{rep['requests']} ok in {rep['duration_s']}s "
            f"({rep['throughput_rps']} req/s), latency ms "
            f"p50={lat['p50']} p90={lat['p90']} p99={lat['p99']} "
            f"max={lat['max']}, errors={self.errors}"
        )


# ----------------------------------------------------------------------
# request bodies
# ----------------------------------------------------------------------
def transform_body(lines: int = 4, words_per_line: int = 8,
                   row_index: int = 0) -> bytes:
    """A deterministic transform request body (mixed-content lines)."""
    data = [
        [(i * words_per_line + j) * 0x0101 for j in range(words_per_line)]
        for i in range(lines)
    ]
    return json_body({"op": "encode", "row_index": row_index, "lines": data})


def build_request(endpoint: str, experiment_id: str,
                  lines: int) -> "tuple[str, str, Optional[bytes]]":
    """Map an endpoint name to ``(method, path, body)``."""
    if endpoint == "healthz":
        return "GET", "/healthz", None
    if endpoint == "metrics":
        return "GET", "/metrics", None
    if endpoint == "transform":
        return "POST", "/v1/transform", transform_body(lines=lines)
    if endpoint == "experiment":
        return ("POST", f"/v1/experiments/{experiment_id}",
                json_body({"quick": True}))
    raise ValueError(f"unknown endpoint {endpoint!r}")


# ----------------------------------------------------------------------
# driving disciplines
# ----------------------------------------------------------------------
async def run_closed_loop(
    host: str, port: int, *, concurrency: int, duration_s: float,
    method: str, path: str, body: Optional[bytes],
    result: LoadgenResult,
) -> None:
    """``concurrency`` workers, each back-to-back on one connection."""
    deadline = time.perf_counter() + duration_s

    async def worker() -> None:
        conn = ClientConnection(host, port)
        try:
            while time.perf_counter() < deadline:
                start = time.perf_counter()
                try:
                    status, _, _ = await conn.request(method, path, body=body)
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    result.record_error()
                    await conn.close()
                    continue
                result.record(status, time.perf_counter() - start)
        finally:
            await conn.close()

    await asyncio.gather(*(worker() for _ in range(concurrency)))


async def run_open_loop(
    host: str, port: int, *, rate: float, duration_s: float,
    method: str, path: str, body: Optional[bytes],
    result: LoadgenResult, max_outstanding: int = 1024,
) -> None:
    """Fire requests on a fixed schedule, completions notwithstanding."""
    interval = 1.0 / rate
    outstanding: "set[asyncio.Task]" = set()
    start_time = time.perf_counter()
    n = 0
    while True:
        now = time.perf_counter()
        if now - start_time >= duration_s:
            break
        target = start_time + n * interval
        if target > now:
            await asyncio.sleep(target - now)

        async def one() -> None:
            begin = time.perf_counter()
            try:
                status, _, _ = await fetch(host, port, method, path,
                                           body=body)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                result.record_error()
                return
            result.record(status, time.perf_counter() - begin)

        if len(outstanding) >= max_outstanding:
            # shed load locally rather than buffering without bound
            result.record_error()
        else:
            task = asyncio.ensure_future(one())
            outstanding.add(task)
            task.add_done_callback(outstanding.discard)
        n += 1
    if outstanding:
        await asyncio.gather(*outstanding, return_exceptions=True)


async def run_loadgen(
    host: str, port: int, *, mode: str = "closed", endpoint: str = "transform",
    concurrency: int = 4, rate: float = 100.0, duration_s: float = 5.0,
    experiment_id: str = "fig19", lines: int = 4,
) -> LoadgenResult:
    """Drive one load-generation run and return its measurements."""
    method, path, body = build_request(endpoint, experiment_id, lines)
    result = LoadgenResult(mode=mode, endpoint=endpoint,
                           duration_s=duration_s)
    start = time.perf_counter()
    if mode == "closed":
        await run_closed_loop(
            host, port, concurrency=concurrency, duration_s=duration_s,
            method=method, path=path, body=body, result=result,
        )
    elif mode == "open":
        await run_open_loop(
            host, port, rate=rate, duration_s=duration_s,
            method=method, path=path, body=body, result=result,
        )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    result.duration_s = time.perf_counter() - start
    return result


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Load-generate against a running repro-serve daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    parser.add_argument("--endpoint",
                        choices=("transform", "experiment", "healthz",
                                 "metrics"),
                        default="transform")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="closed-loop worker count")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="open-loop request rate per second")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="run length in seconds")
    parser.add_argument("--lines", type=int, default=4,
                        help="cachelines per transform request")
    parser.add_argument("--experiment-id", default="fig19",
                        help="experiment for --endpoint experiment")
    parser.add_argument("--report", type=Path, default=None, metavar="PATH",
                        help="write the run report as JSON (BENCH_* shape)")
    parser.add_argument("--require-success", action="store_true",
                        help="exit 1 unless every request returned 200")
    args = parser.parse_args(argv)

    result = asyncio.run(run_loadgen(
        args.host, args.port, mode=args.mode, endpoint=args.endpoint,
        concurrency=args.concurrency, rate=args.rate,
        duration_s=args.duration, experiment_id=args.experiment_id,
        lines=args.lines,
    ))
    print(result.render())
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(result.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.report}", file=sys.stderr)
    if args.require_success and (result.errors
                                 or result.ok != result.requests):
        print("loadgen: FAILED (non-200 responses or transport errors)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
