"""``repro.serve`` — asyncio batch-serving layer for the reproduction.

A long-lived, stdlib-only daemon in front of the simulator:

* ``POST /v1/transform`` — encode/decode cachelines through the
  :mod:`repro.transform` codec with request micro-batching;
* ``POST /v1/experiments/{id}`` — run experiments through the
  cache-aware engine, single-flighted and offloaded to worker
  processes;
* ``GET /healthz`` / ``GET /metrics`` — liveness and Prometheus text
  exposition of the merged :mod:`repro.obs` snapshot.

Start it with ``repro-serve`` (or ``python -m repro.serve``) and drive
it with :mod:`repro.serve.loadgen`.  See DESIGN.md's "serving layer"
section for the queue/batcher/worker architecture and the
backpressure semantics.
"""

from __future__ import annotations

from repro.obs import register_histogram

# Serving-layer histogram bounds, registered at import so snapshots
# merge identically wherever they are produced (server, tests, CI).
register_histogram("serve.request_latency_s", (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0,
))
register_histogram("serve.batch_size", (1, 2, 4, 8, 16, 32, 64, 128))
register_histogram("serve.experiment_wall_s", (
    0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
))

from repro.serve.batching import (  # noqa: E402
    MicroBatcher,
    TransformItem,
    make_transform_processor,
)
from repro.serve.server import ReproServer, ServeConfig, serve  # noqa: E402

__all__ = [
    "MicroBatcher",
    "ReproServer",
    "ServeConfig",
    "TransformItem",
    "make_transform_processor",
    "serve",
]
