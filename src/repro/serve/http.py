"""Minimal HTTP/1.1 over asyncio streams — no third-party deps.

The serving layer deliberately avoids aiohttp: requests here are tiny
JSON bodies on long-lived connections, so a ~150-line subset of
HTTP/1.1 (request line, headers, ``Content-Length`` bodies, keep-alive)
is all :mod:`repro.serve.server` needs, and keeping it stdlib-only
means the daemon runs anywhere the simulator does.

Server side: :func:`read_request` parses one request off a stream
(``None`` on clean EOF) and :func:`render_response` produces the wire
bytes.  Client side: :class:`ClientConnection` is the keep-alive
client used by the load generator and the tests.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

MAX_HEADER_BYTES = 16 * 1024
"""Bound on the request line plus headers of one request."""

DEFAULT_MAX_BODY = 8 * 1024 * 1024
"""Default bound on request body size (8 MiB)."""

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request problem that maps onto one HTTP error response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class HttpRequest:
    """One parsed request: start line, lower-cased headers, raw body."""

    method: str
    target: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self):
        """The body decoded as JSON (empty body reads as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        line = exc.partial
    except asyncio.LimitOverrunError:
        raise HttpError(413, "header line too long") from None
    if len(line) > MAX_HEADER_BYTES:
        raise HttpError(413, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input — the connection
    handler turns that into an error response and closes.
    """
    start_line = await _read_line(reader)
    if not start_line.strip():
        return None
    parts = start_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {start_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    total = len(start_line)
    while True:
        line = await _read_line(reader)
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(413, "headers too large")
        if not line.strip():
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "invalid Content-Length") from None
        if length < 0:
            raise HttpError(400, "invalid Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    return HttpRequest(method=method, target=target, headers=headers,
                       body=body)


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response to wire bytes (always ``Content-Length``)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload) -> bytes:
    """Canonical JSON encoding used for every JSON response body."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class ClientConnection:
    """Keep-alive HTTP/1.1 client over one asyncio stream pair.

    Used by :mod:`repro.serve.loadgen` (one connection per closed-loop
    worker) and by the integration tests.  Not safe for concurrent
    requests on the same instance — HTTP/1.1 pipelining is deliberately
    out of scope.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ClientConnection":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Issue one request; returns ``(status, headers, body)``.

        Reconnects transparently if the server closed the connection
        between keep-alive requests.
        """
        if self._reader is None:
            await self.connect()
        payload = body or b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        wire = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload
        assert self._writer is not None and self._reader is not None
        self._writer.write(wire)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2:
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        resp_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line.strip():
                break
            name, _, value = line.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0"))
        resp_body = await self._reader.readexactly(length) if length else b""
        if resp_headers.get("connection", "").lower() == "close":
            await self.close()
        return status, resp_headers, resp_body


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One-shot request on a fresh connection (open-loop client path)."""
    async with ClientConnection(host, port) as conn:
        return await conn.request(method, path, body=body, headers=headers)
