"""``repro-serve`` — command-line entry point of the serving daemon.

Examples::

    repro-serve --port 8023 --workers 4
    repro-serve --port 0                 # ephemeral port, printed on boot
    repro-serve --workers 0              # in-process thread workers (debug)

The daemon serves until SIGTERM/SIGINT, then drains: the listener
closes, in-flight requests get ``--drain-grace`` seconds to finish,
and the worker pool shuts down.  ``--metrics-json`` writes the final
merged observability snapshot on exit.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    from repro.api import version

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve codec transforms and experiment runs over HTTP.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {version()}")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023,
                        help="listen port (0 picks an ephemeral port)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="in-flight bound before 429 backpressure")
    parser.add_argument("--request-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-request deadline (504 on expiry)")
    parser.add_argument("--batch-max", type=int, default=32,
                        help="transform micro-batch size bound")
    parser.add_argument("--batch-delay-ms", type=float, default=2.0,
                        help="transform micro-batch coalescing window")
    parser.add_argument("--workers", type=int, default=2,
                        help="experiment worker processes "
                             "(0: in-process threads)")
    parser.add_argument("--rows", type=int, default=4096,
                        help="codec cell-type table size (valid row_index "
                             "range of /v1/transform)")
    parser.add_argument("--experiment-backend",
                        choices=["serial", "pool", "cluster"], default=None,
                        help="execution backend for offloaded experiment "
                             "runs (default: derived from jobs=1); "
                             "'cluster' schedules each run's jobs over "
                             "--experiment-workers cluster workers")
    parser.add_argument("--experiment-workers", type=int, default=None,
                        metavar="N",
                        help="(with --experiment-backend cluster) cluster "
                             "fleet size per offloaded run (default 2)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the engine result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--drain-grace", type=float, default=10.0,
                        metavar="SECONDS",
                        help="in-flight grace period on shutdown")
    parser.add_argument("--gc-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="run a store retention GC sweep every N "
                             "seconds (0: disabled)")
    parser.add_argument("--gc-max-bytes", type=int, default=None,
                        metavar="N",
                        help="GC policy: cache payload byte budget")
    parser.add_argument("--gc-max-age", default=None, metavar="AGE",
                        help="GC policy: drop state older than AGE "
                             "(e.g. 90s, 15m, 6h, 7d)")
    parser.add_argument("--gc-keep-runs", type=int, default=None,
                        metavar="N",
                        help="GC policy: keep only the newest N runs' "
                             "journals and span stores")
    parser.add_argument("--metrics-json", type=Path, default=None,
                        metavar="PATH",
                        help="write the final metrics snapshot on exit")
    args = parser.parse_args(argv)

    from repro.serve import ServeConfig, serve
    from repro.store.gc import parse_age

    try:
        gc_max_age_s = (parse_age(args.gc_max_age)
                        if args.gc_max_age is not None else None)
    except ValueError as exc:
        parser.error(str(exc))

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        request_timeout_s=args.request_timeout,
        batch_max=args.batch_max,
        batch_delay_s=args.batch_delay_ms / 1e3,
        workers=args.workers,
        num_rows=args.rows,
        use_cache=not args.no_cache,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        drain_grace_s=args.drain_grace,
        experiment_backend=args.experiment_backend,
        experiment_workers=args.experiment_workers,
        gc_interval_s=args.gc_interval,
        gc_max_bytes=args.gc_max_bytes,
        gc_max_age_s=gc_max_age_s,
        gc_keep_runs=args.gc_keep_runs,
    )
    server = asyncio.run(serve(config))
    if args.metrics_json is not None:
        args.metrics_json.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_json.write_text(
            json.dumps(server.metrics_snapshot(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"metrics: {args.metrics_json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
