"""Request micro-batching: coalesce, vectorise, fan results back out.

The transform endpoint's unit of work is small — a handful of
cachelines — but the numpy codec paths amortise beautifully over many
lines (see ``ValueTransformCodec.transform_lines_many``).
:class:`MicroBatcher` is the generic coalescing core: submitted items
queue up, a single collector task drains up to ``max_batch`` of them
or as many as arrive within ``max_delay_s`` of the first, hands the
batch to a processing callback in one call, and resolves each
submitter's future with its own slice of the output.

Correctness contract: the processor must return one result per item,
order-aligned, and each result must equal what processing the item
alone would produce — batching is a throughput optimisation, never a
semantic change (the serve tests assert bit-identity against the
single-request codec path).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.obs import NULL_PROBES


@dataclass
class TransformItem:
    """One transform request: operation, lines array, target row."""

    op: str  # "encode" | "decode"
    lines: np.ndarray  # (n_lines, words_per_line)
    row_index: int


class MicroBatcher:
    """Coalesce submitted items into bounded, time-boxed batches.

    Parameters
    ----------
    process:
        ``process(items) -> results`` called with 1..max_batch items;
        runs on the event loop thread, so it must be fast (vectorised
        numpy, no I/O).
    max_batch:
        Upper bound on items per batch.
    max_delay_s:
        How long the collector waits for more items after the first
        one arrives before dispatching a partial batch.
    probes:
        Probe bus receiving the ``serve.batch_size`` histogram and
        ``serve.batched_items`` counter.
    """

    def __init__(
        self,
        process: Callable[[List], Sequence],
        max_batch: int = 32,
        max_delay_s: float = 0.002,
        probes=NULL_PROBES,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self._process = process
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.probes = probes
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the collector task on the running event loop."""
        if self._task is not None:
            return
        self._queue = asyncio.Queue()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Stop the collector; pending submissions get CancelledError."""
        if self._task is None:
            return
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        if self._queue is not None:
            while not self._queue.empty():
                _, future = self._queue.get_nowait()
                if not future.done():
                    future.cancel()
            self._queue = None

    async def submit(self, item):
        """Queue ``item`` and await its individual result."""
        if self._queue is None:
            raise RuntimeError("MicroBatcher is not started")
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future))
        return await future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.max_delay_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    if self._queue.empty():
                        break
                    batch.append(self._queue.get_nowait())
                    continue
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._dispatch(batch)

    def _dispatch(self, batch: List) -> None:
        items = [item for item, future in batch]
        self.probes.observe("serve.batch_size", len(items))
        self.probes.count("serve.batched_items", len(items))
        try:
            results = self._process(items)
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != len(items):
            exc = RuntimeError(
                f"batch processor returned {len(results)} results "
                f"for {len(items)} items"
            )
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)


def make_transform_processor(codec) -> Callable[[List[TransformItem]], List]:
    """Batch processor vectorising transform items through ``codec``.

    Encode and decode items are grouped and each group runs through the
    codec's ``*_lines_many`` fast path in one numpy pass; results come
    back in submission order.  Each output is bit-identical to the
    single-request ``transform_lines``/``untransform_lines`` call — the
    per-line stages are row-independent, so concatenating requests
    before the vectorised pass cannot change any line's image.
    """

    def process(items: List[TransformItem]) -> List[np.ndarray]:
        results: List[Optional[np.ndarray]] = [None] * len(items)
        for op, method in (
            ("encode", codec.transform_lines_many),
            ("decode", codec.untransform_lines_many),
        ):
            indices = [i for i, item in enumerate(items) if item.op == op]
            if not indices:
                continue
            groups = method(
                [items[i].lines for i in indices],
                [items[i].row_index for i in indices],
            )
            for i, group in zip(indices, groups):
                results[i] = group
        return results  # type: ignore[return-value]

    return process
