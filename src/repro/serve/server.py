"""The asyncio serving daemon: admission control, offload, drain.

:class:`ReproServer` is a single-process asyncio server with three
planes:

* **control** — ``GET /healthz`` and ``GET /metrics`` answer
  immediately, bypassing admission control, so the server stays
  observable even when saturated (the backpressure tests rely on it);
* **transform** — ``POST /v1/transform`` requests flow through the
  :class:`~repro.serve.batching.MicroBatcher`, which coalesces up to
  ``batch_max`` lines-groups or ``batch_delay_s`` worth of arrivals
  into one vectorised codec pass;
* **experiments** — ``POST /v1/experiments/{id}`` submissions are
  single-flighted by request digest (concurrent identical requests
  share one execution) and offloaded to a ``ProcessPoolExecutor`` via
  :func:`~repro.experiments.engine.execute_request`, so CPU-bound
  simulation never blocks the event loop; the engine's
  content-addressed result cache makes repeat submissions cache hits.
  ``POST /v1/sweeps`` is the same machinery for ad-hoc
  :class:`~repro.scenarios.spec.ScenarioSpec` bodies: the spec digest
  keys the single-flight table and the cache, so a never-registered
  user sweep coalesces and caches exactly like a registered figure.

Robustness is structural, not best-effort: a bounded in-flight counter
rejects excess data-plane requests with ``429`` + ``Retry-After``
before any work is queued for them; every data-plane request runs
under a deadline (``504`` on expiry); and ``drain()`` — wired to
SIGTERM/SIGINT by ``repro-serve`` — stops the listener, lets in-flight
work finish within a grace period, journals any experiment requests
still executing to ``<cache>/journal/serve-inflight.json``, and only
then tears down the batcher and the worker pool.  The next
``start()`` picks that file up and resubmits each interrupted request
with its resume token, so the engine's per-run journal lets it skip
every job the cut-short run already completed.

Observability rides the ambient :mod:`repro.obs` machinery: request
latency / batch size / experiment wall-time histograms, an in-flight
gauge, per-status counters, and the metrics snapshots shipped back by
experiment workers all merge into one probe bus whose snapshot
``GET /metrics`` renders via
:func:`repro.obs.metrics.prometheus_text`.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.cache import default_cache_dir
from repro.experiments.engine import (
    ExperimentRequest,
    execute_request,
    request_digest,
    request_run_id,
)
from repro.obs import ProbeBus, merge_snapshots
from repro.obs.spans import SpanTracer, append_spans, root_context
from repro.serve import handlers
from repro.serve.batching import MicroBatcher, make_transform_processor
from repro.serve.http import (
    DEFAULT_MAX_BODY,
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from repro.transform.celltype import CellTypeLayout, CellTypePredictor
from repro.transform.codec import ValueTransformCodec


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving daemon."""

    host: str = "127.0.0.1"
    port: int = 8023
    # -- backpressure and deadlines ------------------------------------
    max_pending: int = 64
    request_timeout_s: float = 60.0
    retry_after_s: int = 1
    max_body_bytes: int = DEFAULT_MAX_BODY
    drain_grace_s: float = 10.0
    # -- transform micro-batching --------------------------------------
    batch_max: int = 32
    batch_delay_s: float = 0.002
    num_rows: int = 4096
    interleave: int = 512
    # -- experiment offload --------------------------------------------
    workers: int = 2
    use_cache: bool = True
    cache_dir: Optional[str] = None
    # Execution backend the offloaded engine run uses inside its
    # worker process ("serial" | "pool" | "cluster"); cluster runs
    # spawn `experiment_workers` cluster workers per request.
    experiment_backend: Optional[str] = None
    experiment_workers: Optional[int] = None
    # -- store retention GC --------------------------------------------
    # A background sweep applies the GC policy to the cache dir every
    # `gc_interval_s` seconds (0 disables it).  The policy knobs mirror
    # `repro gc`: unset knobs impose no bound, and state referenced by
    # an in-progress run's lock is never removed.
    gc_interval_s: float = 0.0
    gc_max_bytes: Optional[int] = None
    gc_max_age_s: Optional[float] = None
    gc_keep_runs: Optional[int] = None


class ReproServer:
    """One serving daemon; see the module docstring for the design."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 probes: Optional[ProbeBus] = None):
        self.config = config or ServeConfig()
        self.bus = probes if probes is not None else ProbeBus()
        self.num_rows = self.config.num_rows
        predictor = CellTypePredictor.from_layout(
            CellTypeLayout(interleave=self.config.interleave),
            num_rows=self.config.num_rows,
        )
        self.codec = ValueTransformCodec(predictor)
        self.transform_batcher = MicroBatcher(
            make_transform_processor(self.codec),
            max_batch=self.config.batch_max,
            max_delay_s=self.config.batch_delay_s,
            probes=self.bus,
        )
        self.state = "idle"  # idle -> serving -> draining -> stopped
        self.inflight = 0
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task]" = set()
        self._executor: Optional[Executor] = None
        self._singleflight: Dict[str, asyncio.Task] = {}
        # experiment requests currently executing in a worker, keyed by
        # request digest — drained servers journal these to disk so a
        # restart can resume their runs instead of redoing finished jobs
        self._inflight_experiments: Dict[str, ExperimentRequest] = {}
        # created in start(): asyncio primitives bind the running loop
        # on Python 3.9, and servers may be constructed outside one
        self._idle_event: Optional[asyncio.Event] = None
        self._stopped_event: Optional[asyncio.Event] = None
        self._gc_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and spawn the worker machinery."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._stopped_event = asyncio.Event()
        if self.config.workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers
            )
        else:
            # workers=0: run experiment jobs on threads in-process —
            # test/debug mode where REGISTRY monkey-patching is visible
            self._executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-serve"
            )
        self.transform_batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self.state = "serving"
        self._resume_journaled_experiments()
        if self.config.gc_interval_s > 0:
            self._gc_task = asyncio.get_running_loop().create_task(
                self._gc_loop()
            )

    async def drain(self) -> None:
        """Graceful shutdown: stop listening, finish in-flight, stop."""
        if self.state in ("draining", "stopped"):
            return
        self.state = "draining"
        if self._gc_task is not None:
            self._gc_task.cancel()
            try:
                await self._gc_task
            except asyncio.CancelledError:
                pass
            self._gc_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._idle_event is not None:
            try:
                await asyncio.wait_for(
                    self._idle_event.wait(), self.config.drain_grace_s
                )
            except asyncio.TimeoutError:
                self.bus.count("serve.drain_timeouts")
        self._journal_inflight_experiments()
        # idle keep-alive connections are parked in read_request; they
        # will never produce another request once the listener is gone
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.transform_batcher.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.state = "stopped"
        if self._stopped_event is not None:
            self._stopped_event.set()

    async def run_until_stopped(self, install_signals: bool = True) -> None:
        """Serve until :meth:`drain` completes (SIGTERM/SIGINT trigger it)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, lambda: loop.create_task(self.drain())
                    )
                except (NotImplementedError, RuntimeError):
                    # platforms/embedded loops without signal support
                    break
        await self._stopped_event.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as exc:
                    response = handlers.error_response(
                        exc.status, exc.message, exc.headers
                    )
                    writer.write(render_response(
                        response.status, response.body,
                        response.content_type, response.headers,
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and self.state == "serving"
                response = await self._dispatch(request)
                writer.write(render_response(
                    response.status, response.body, response.content_type,
                    response.headers, keep_alive=keep_alive,
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except asyncio.CancelledError:
            # drain() cancels parked keep-alive handlers; ending the
            # task cleanly keeps the streams teardown quiet
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: HttpRequest) -> handlers.Response:
        """Route one request: control plane direct, data plane guarded."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        self.bus.count("serve.requests")
        path = request.path

        if path in ("/healthz", "/metrics"):
            if request.method != "GET":
                response = handlers.error_response(405, "use GET")
            elif path == "/healthz":
                response = handlers.handle_healthz(self, request)
            else:
                response = handlers.handle_metrics(self, request)
            return self._finish(request, response, start)

        # -- data plane: admission control, then deadline ---------------
        if self.state != "serving":
            return self._finish(request, handlers.error_response(
                503, f"server is {self.state}"), start)
        if self.inflight >= self.config.max_pending:
            self.bus.count("serve.rejected_429")
            return self._finish(request, handlers.error_response(
                429, "request queue is full",
                {"Retry-After": str(self.config.retry_after_s)}), start)

        self.inflight += 1
        self.bus.gauge("serve.queue_depth", self.inflight)
        self._idle_event.clear()
        try:
            response = await asyncio.wait_for(
                self._route(request), self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.bus.count("serve.timeouts")
            response = handlers.error_response(
                504, f"deadline of {self.config.request_timeout_s}s exceeded"
            )
        except HttpError as exc:
            response = handlers.error_response(
                exc.status, exc.message, exc.headers
            )
        except Exception as exc:  # noqa: BLE001 - boundary of the daemon
            self.bus.count("serve.errors")
            response = handlers.error_response(
                500, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.inflight -= 1
            self.bus.gauge("serve.queue_depth", self.inflight)
            if self.inflight == 0:
                self._idle_event.set()
        return self._finish(request, response, start)

    async def _route(self, request: HttpRequest) -> handlers.Response:
        path = request.path
        if path == "/v1/transform":
            if request.method != "POST":
                raise HttpError(405, "use POST")
            return await handlers.handle_transform(self, request)
        if path == "/v1/sweeps":
            if request.method != "POST":
                raise HttpError(405, "use POST")
            return await handlers.handle_sweep(self, request)
        if path.startswith("/v1/experiments/"):
            if request.method != "POST":
                raise HttpError(405, "use POST")
            experiment_id = path[len("/v1/experiments/"):]
            if not experiment_id or "/" in experiment_id:
                raise HttpError(404, f"no such route: {path}")
            return await handlers.handle_experiment(
                self, experiment_id, request
            )
        if path.startswith("/v1/runs/"):
            if request.method != "GET":
                raise HttpError(405, "use GET")
            run_id = path[len("/v1/runs/"):]
            if not run_id or "/" in run_id:
                raise HttpError(404, f"no such route: {path}")
            return handlers.handle_run_status(self, run_id, request)
        raise HttpError(404, f"no such route: {path}")

    def _finish(self, request: HttpRequest, response: handlers.Response,
                start: float) -> handlers.Response:
        elapsed = asyncio.get_running_loop().time() - start
        self.bus.observe("serve.request_latency_s", elapsed)
        self.bus.count(f"serve.status.{response.status}")
        return response

    # ------------------------------------------------------------------
    # experiment submission: single-flight + executor offload
    # ------------------------------------------------------------------
    async def submit_experiment(self, request: ExperimentRequest) -> dict:
        """Run ``request``, coalescing concurrent identical submissions.

        The digest covers the experiment id and fully-resolved settings
        — the same identity the result cache keys on — so while one
        execution is in flight every further identical submission
        awaits it instead of spawning another worker job.  The shared
        task is shielded: one waiter timing out does not cancel the
        execution for the others.
        """
        key = request_digest(request)
        task = self._singleflight.get(key)
        coalesced = task is not None
        if not coalesced:
            task = asyncio.get_running_loop().create_task(
                self._execute_experiment(request)
            )
            self._singleflight[key] = task
            task.add_done_callback(
                lambda _t, key=key: self._singleflight.pop(key, None)
            )
        else:
            self.bus.count("serve.experiments_coalesced")
        t_req = time.time()
        payload = await asyncio.shield(task)
        if coalesced:
            # followers joined an execution the leader's spans cover;
            # their own wait still gets a (coalesced) request span
            self._record_serve_spans(request, payload, t_req,
                                     time.time() - t_req, coalesced=True)
        return payload

    async def _execute_experiment(self, request: ExperimentRequest) -> dict:
        self.bus.count("serve.experiments_submitted")
        loop = asyncio.get_running_loop()
        key = request_digest(request)
        self._inflight_experiments[key] = request
        t_req = time.time()
        t_mono = loop.time()
        try:
            payload = await loop.run_in_executor(
                self._executor, execute_request, request
            )
        finally:
            self._inflight_experiments.pop(key, None)
        offload_s = loop.time() - t_mono
        self.bus.count("serve.experiment_cache_hits", payload["cache_hits"])
        self.bus.count("serve.experiment_cache_misses",
                       payload["cache_misses"])
        self.bus.observe("serve.experiment_wall_s", payload["wall_s"])
        # fold the worker's simulation metrics into the server bus so
        # /metrics exposes engine counters alongside serving metrics
        if payload.get("metrics"):
            self.bus.merge_snapshot(payload["metrics"])
        self._record_serve_spans(
            request, payload, t_req, time.time() - t_req,
            coalesced=False, offload_s=offload_s,
        )
        return payload

    def _record_serve_spans(self, request: ExperimentRequest, payload: dict,
                            t_req: float, dur_s: float, *, coalesced: bool,
                            offload_s: Optional[float] = None) -> None:
        """Append this submission's serve-side spans to the run's store.

        The engine already wrote the run's own tree (root/plan/jobs)
        under the deterministic trace id; serve spans attach to the same
        root so ``repro inspect`` shows queueing and offload next to
        the work itself.  Qualifiers carry the pid and submission time
        — serve spans describe *this* submission, so unlike the engine's
        structural spans they must never dedupe across submissions.
        """
        trace_id = payload.get("trace_id")
        run_id = payload.get("run_id")
        if not self.config.use_cache or not trace_id or not run_id:
            return
        try:
            tracer = SpanTracer(trace_id)
            q = f"{os.getpid()}.{int(t_req * 1e6)}"
            req_ctx = tracer.record_span(
                "serve.request", parent=root_context(trace_id), qualifier=q,
                t0=t_req, dur_s=dur_s, digest=request_digest(request),
                coalesced=True if coalesced else None,
            )
            if offload_s is not None:
                # queue wait: executor round-trip minus the worker's own
                # measured wall time
                queue_s = max(0.0, offload_s - payload.get("wall_s", 0.0))
                tracer.record_span(
                    "serve.offload", parent=req_ctx, qualifier=q,
                    t0=t_req, dur_s=offload_s, queue_s=round(queue_s, 6),
                    worker_wall_s=payload.get("wall_s"),
                )
            root = (Path(self.config.cache_dir) if self.config.cache_dir
                    else default_cache_dir())
            append_spans(root, run_id, tracer.records)
        except OSError:  # pragma: no cover - span store is best-effort
            pass

    # ------------------------------------------------------------------
    # drain-time journaling of in-flight experiments
    # ------------------------------------------------------------------
    def _inflight_journal_path(self) -> Path:
        root = (Path(self.config.cache_dir) if self.config.cache_dir
                else default_cache_dir())
        return root / "journal" / "serve-inflight.json"

    def _journal_inflight_experiments(self) -> None:
        """Persist experiment requests still executing at drain time.

        The engine journals each run's per-job progress under the result
        cache as it goes; this file only records *which* requests were
        cut short, so :meth:`start` can resubmit them with their resume
        tokens and skip every job the interrupted run already finished.
        """
        if not self._inflight_experiments:
            return
        from repro.store.envelope import snapshot_digest

        records = [asdict(req) for req in self._inflight_experiments.values()]
        path = self._inflight_journal_path()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                fh.write(json.dumps(
                    {"schema": 1, "requests": records,
                     "sha256": snapshot_digest(records)},
                    sort_keys=True,
                ))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            return
        self.bus.count("serve.journaled_inflight", len(records))

    def _resume_journaled_experiments(self) -> None:
        """Pick up requests a previous drain journaled, and resume them."""
        path = self._inflight_journal_path()
        try:
            raw = path.read_text()
        except OSError:
            return
        try:
            path.unlink()
        except OSError:
            pass
        from repro.store.envelope import snapshot_digest

        try:
            doc = json.loads(raw)
            records = doc["requests"]
            if not isinstance(records, list):
                raise ValueError("requests must be a list")
        except (KeyError, TypeError, ValueError):
            self.bus.count("serve.resume_journal_corrupt")
            self.bus.count("store.corrupt.truncated")
            return
        declared = doc.get("sha256")
        if declared is not None and declared != snapshot_digest(records):
            # the document parses but its content digest disagrees: a
            # flipped bit could resubmit a mangled request — refuse it
            self.bus.count("serve.resume_journal_corrupt")
            self.bus.count("store.corrupt.bit_flipped")
            return
        loop = asyncio.get_running_loop()
        for record in records:
            try:
                request = ExperimentRequest(**record)
                request = replace(
                    request, resume=request.resume or request_run_id(request)
                )
            except (TypeError, ValueError):
                self.bus.count("serve.resume_journal_corrupt")
                continue
            self.bus.count("serve.resumed_runs")
            task = loop.create_task(self.submit_experiment(request))
            # background resubmission: nobody awaits this response, so
            # retrieve any exception to keep the loop's logs quiet
            task.add_done_callback(
                lambda t: t.cancelled() or t.exception()
            )

    # ------------------------------------------------------------------
    # store retention GC (background sweep)
    # ------------------------------------------------------------------
    def _gc_policy(self):
        from repro.store.gc import GCPolicy

        return GCPolicy(max_bytes=self.config.gc_max_bytes,
                        max_age_s=self.config.gc_max_age_s,
                        keep_runs=self.config.gc_keep_runs)

    def _gc_once(self) -> dict:
        """One synchronous GC sweep of the configured cache dir.

        Separated from the async loop so tests (and operators via a
        REPL) can invoke a sweep directly; the sweep's ``store.gc.*``
        gauges land on this server's bus.
        """
        from repro.obs import use_probes
        from repro.store.gc import collect

        root = (Path(self.config.cache_dir) if self.config.cache_dir
                else default_cache_dir())
        with use_probes(self.bus):
            stats = collect(root, self._gc_policy())
        self.bus.count("serve.gc_sweeps")
        return stats

    async def _gc_loop(self) -> None:
        """Apply the retention policy on a fixed interval until drain."""
        while True:
            await asyncio.sleep(self.config.gc_interval_s)
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._gc_once
                )
            except asyncio.CancelledError:
                raise
            except OSError:
                self.bus.count("serve.gc_errors")

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The merged observability snapshot ``/metrics`` renders."""
        return merge_snapshots(self.bus.snapshot())


async def serve(config: Optional[ServeConfig] = None,
                probes: Optional[ProbeBus] = None,
                ready=None) -> ReproServer:
    """Start a server, announce readiness, and block until drained."""
    server = ReproServer(config, probes=probes)
    await server.start()
    if ready is not None:
        ready(server)
    else:
        print(f"repro-serve listening on http://{server.host}:{server.port} "
              f"(pid {os.getpid()})", flush=True)
    await server.run_until_stopped()
    return server
