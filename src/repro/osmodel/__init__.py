"""Operating-system memory model (paper Secs. III-B and VI-A).

ZERO-REFRESH's unallocated-page benefit needs only one OS property:
pages are *zero when idle*.  The OS already cleanses pages for security;
moving the zero-fill from allocation time to **deallocation time** keeps
idle pages zeroed for their whole idle lifetime, which the DRAM-side
mechanism then detects by value alone — no new hardware interface.

* :mod:`repro.osmodel.pages` — a page allocator over the simulated
  memory with three cleansing policies (zero-on-free, zero-on-alloc,
  none), writing its zero fills through the memory controller so the
  transformation pipeline sees them.
* :mod:`repro.osmodel.scenarios` — the four allocation scenarios of the
  evaluation: 100 % (no idle pages) plus the Alibaba (88 %), Google
  (70 %) and Bitbrains (28 %) utilisation levels of Table I.
"""

from repro.osmodel.lifecycle import Process, ProcessLifecycle
from repro.osmodel.pages import CleansePolicy, PageAllocator
from repro.osmodel.scenarios import (
    PAPER_SCENARIOS,
    AllocationScenario,
    scenario_by_name,
)

__all__ = [
    "AllocationScenario",
    "CleansePolicy",
    "PAPER_SCENARIOS",
    "PageAllocator",
    "Process",
    "ProcessLifecycle",
    "scenario_by_name",
]
