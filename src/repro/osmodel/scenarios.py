"""Memory-allocation scenarios of the evaluation (paper Table I, Sec. VI-A).

The paper evaluates four utilisation levels: the pessimistic 100 %
(every page holds application data) and three levels taken from
data-center traces — Alibaba 88 %, Google 70 % and Bitbrains 28 %
allocated on average.  A scenario fixes the fraction of pages the OS
hands to applications; the remainder are idle and, under the
zero-on-free policy, hold zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class AllocationScenario:
    """A named memory-utilisation level.

    ``allocated_fraction`` is the share of pages holding application
    data; ``source`` documents where the number comes from.
    """

    name: str
    allocated_fraction: float
    source: str = ""

    def __post_init__(self):
        if not 0.0 <= self.allocated_fraction <= 1.0:
            raise ValueError("allocated_fraction must be within [0, 1]")

    @property
    def idle_fraction(self) -> float:
        return 1.0 - self.allocated_fraction

    def allocated_page_count(self, total_pages: int) -> int:
        return int(round(self.allocated_fraction * total_pages))

    @classmethod
    def from_utilization_trace(cls, name: str, samples: np.ndarray,
                               source: str = "") -> "AllocationScenario":
        """Scenario at the *average* utilisation of a trace (Table I)."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ValueError("utilisation trace is empty")
        return cls(name=name, allocated_fraction=float(samples.mean()),
                   source=source)


PAPER_SCENARIOS: Dict[str, AllocationScenario] = {
    "100%": AllocationScenario("100%", 1.00, source="no idle pages"),
    "88%": AllocationScenario("88%", 0.88, source="Alibaba cluster trace"),
    "70%": AllocationScenario("70%", 0.70, source="Google cluster trace"),
    "28%": AllocationScenario("28%", 0.28, source="Bitbrains trace (CPU>30%)"),
}
"""The four utilisation scenarios of Fig. 14/15 keyed by their label."""


def scenario_by_name(name: str) -> AllocationScenario:
    """Look up one of the paper's scenarios ("100%", "88%", "70%", "28%")."""
    try:
        return PAPER_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(PAPER_SCENARIOS)}"
        ) from None
