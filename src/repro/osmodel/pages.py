"""Page allocator with configurable cleansing policy (paper Sec. III-B).

The allocator manages the simulated DRAM as 4 KB pages.  Its cleansing
policy decides *when* the zero fill that every OS performs for security
actually happens:

``ZERO_ON_FREE``
    The paper's proposed (small) OS change: pages are zeroed the moment
    they are deallocated, so they hold zeros for their entire idle
    time and the charge-aware mechanism can skip their refreshes.

``ZERO_ON_ALLOC``
    Common Linux behaviour: pages are zeroed right before reuse.  Idle
    pages keep their stale contents, so unallocated memory earns no
    refresh reduction (only the transient zero right after allocation).

``NONE``
    No cleansing (for controlled experiments).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.controller.memctrl import MemoryController


class CleansePolicy(enum.Enum):
    ZERO_ON_FREE = "zero-on-free"
    ZERO_ON_ALLOC = "zero-on-alloc"
    NONE = "none"


class PageAllocator:
    """FIFO free-list page allocator writing through the controller."""

    def __init__(
        self,
        controller: MemoryController,
        policy: CleansePolicy = CleansePolicy.ZERO_ON_FREE,
        rng: Optional[np.random.Generator] = None,
    ):
        self.controller = controller
        self.policy = policy
        self.rng = rng or np.random.default_rng()
        self.total_pages = controller.mapper.total_pages
        self._allocated = np.zeros(self.total_pages, dtype=bool)
        self._free_list = list(range(self.total_pages))
        self.zero_fills = 0

    # ------------------------------------------------------------------
    @property
    def allocated_pages(self) -> np.ndarray:
        return np.flatnonzero(self._allocated)

    @property
    def free_pages(self) -> np.ndarray:
        return np.flatnonzero(~self._allocated)

    @property
    def allocated_fraction(self) -> float:
        return float(self._allocated.mean())

    def is_allocated(self, page: int) -> bool:
        return bool(self._allocated[page])

    # ------------------------------------------------------------------
    def allocate(self, count: int, time_s: float = 0.0) -> np.ndarray:
        """Take ``count`` pages off the free list.

        Under ``ZERO_ON_ALLOC`` the pages are zeroed now; under
        ``ZERO_ON_FREE`` they are already zero.
        """
        if count > len(self._free_list):
            raise MemoryError(
                f"requested {count} pages, only {len(self._free_list)} free"
            )
        pages = np.array([self._free_list.pop(0) for _ in range(count)], dtype=np.int64)
        self._allocated[pages] = True
        if self.policy is CleansePolicy.ZERO_ON_ALLOC:
            self.controller.zero_pages(pages, time_s)
            self.zero_fills += count
        return pages

    def free(self, pages: np.ndarray, time_s: float = 0.0) -> None:
        """Return pages to the free list.

        Under ``ZERO_ON_FREE`` (the paper's policy) the pages are zeroed
        immediately — through the controller, so the stored image
        becomes fully discharged bits and future refreshes are skipped.
        """
        pages = np.atleast_1d(np.asarray(pages, dtype=np.int64))
        if not self._allocated[pages].all():
            raise ValueError("double free: some pages are not allocated")
        self._allocated[pages] = False
        self._free_list.extend(int(p) for p in pages)
        if self.policy is CleansePolicy.ZERO_ON_FREE:
            self.controller.zero_pages(pages, time_s)
            self.zero_fills += len(pages)

    # ------------------------------------------------------------------
    def seed_allocated_fraction(self, fraction: float, time_s: float = 0.0,
                                shuffle: bool = True) -> np.ndarray:
        """Allocate a fraction of all pages (scenario setup).

        Pages are drawn randomly (``shuffle=True``) to mimic a
        fragmented long-running system rather than one contiguous
        region.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        count = int(round(fraction * self.total_pages))
        if shuffle:
            order = self.rng.permutation(len(self._free_list))
            self._free_list = [self._free_list[i] for i in order]
        return self.allocate(count, time_s)
