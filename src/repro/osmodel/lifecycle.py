"""Process lifecycle model: allocation churn over time (Sec. III-B).

The unallocated-page benefit of ZERO-REFRESH depends on memory demand
*fluctuating*: processes arrive, grow, and exit, and under zero-on-free
the pages they leave behind are skippable until reused.  This module
simulates that churn:

* :class:`Process` — a tenant holding pages for a bounded lifetime;
* :class:`ProcessLifecycle` — a birth/death process targeting a mean
  utilisation level, applied to a live
  :class:`~repro.core.zero_refresh.ZeroRefreshSystem` between retention
  windows (allocations are populated with the process's workload
  content; frees go through the allocator's cleansing policy).

This gives the data-center scenarios dynamics instead of a fixed
allocation fraction — the setting where zero-on-free vs zero-on-alloc
policies actually differ, exercised by the policy-comparison tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.workloads.benchmarks import BenchmarkProfile


@dataclass
class Process:
    """A tenant process occupying pages for a bounded lifetime."""

    pid: int
    pages: np.ndarray
    windows_left: int
    profile_name: str

    @property
    def size_pages(self) -> int:
        return len(self.pages)


class ProcessLifecycle:
    """Birth/death allocation churn over a running system.

    Parameters
    ----------
    system:
        A populated or empty :class:`ZeroRefreshSystem`.
    profile:
        Content profile for arriving processes.
    target_utilization:
        Long-run allocated fraction the arrival rate aims for.
    mean_size_pages / mean_lifetime_windows:
        Process size and lifetime distributions (geometric).
    """

    def __init__(
        self,
        system,
        profile: BenchmarkProfile,
        target_utilization: float = 0.7,
        mean_size_pages: int = 128,
        mean_lifetime_windows: int = 8,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        self.system = system
        self.profile = profile
        self.target = target_utilization
        self.mean_size = mean_size_pages
        self.mean_lifetime = mean_lifetime_windows
        self.rng = rng or np.random.default_rng()
        self.processes: List[Process] = []
        self._next_pid = 0
        self.arrivals = 0
        self.departures = 0

    # ------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        return self.system.allocator.allocated_fraction

    def _spawn(self) -> Optional[Process]:
        size = min(
            1 + int(self.rng.geometric(1.0 / self.mean_size)),
            len(self.system.allocator.free_pages),
        )
        if size <= 0:
            return None
        pages = self.system.allocator.allocate(size, self.system.time_s)
        pages = np.sort(pages)
        content = self.profile.generate_pages(
            len(pages), self.rng, self.system.config.geometry.lines_per_page
        )
        self.system.controller.populate_pages(
            pages, self.system._as_words(content), self.system.time_s,
            notify=True,
        )
        lifetime = 1 + int(self.rng.geometric(1.0 / self.mean_lifetime))
        process = Process(self._next_pid, pages, lifetime, self.profile.name)
        self._next_pid += 1
        self.processes.append(process)
        self.arrivals += 1
        return process

    def _reap(self) -> None:
        survivors = []
        for process in self.processes:
            process.windows_left -= 1
            if process.windows_left <= 0:
                self.system.allocator.free(process.pages, self.system.time_s)
                self.departures += 1
            else:
                survivors.append(process)
        self.processes = survivors

    def step(self) -> None:
        """One window of churn: age/exit processes, spawn toward target."""
        self._reap()
        guard = 0
        while self.utilization < self.target and guard < 1000:
            if self._spawn() is None:
                break
            guard += 1

    # ------------------------------------------------------------------
    def run(self, n_windows: int) -> List:
        """Interleave churn steps with refresh windows; returns the
        per-window :class:`~repro.dram.refresh.RefreshStats`."""
        results = []
        for _ in range(n_windows):
            self.step()
            delta = self.system.engine.run_window(self.system.time_s)
            self.system.time_s += self.system.config.timing.tret_s
            results.append(delta)
        return results
