"""Extension experiment: VRT exposure of retention-aware skipping
(ext-vrt).

The paper dismisses retention-time-based reduction (VRA, RAIDR) because
retention changes dynamically (VRT), silently invalidating a static
profile (Sec. I, II-D).  This experiment quantifies the trade it
alludes to: RAIDR's refresh reduction is excellent, but hours of VRT
leave a growing population of rows refreshed more slowly than their
*current* retention tolerates.  ZERO-REFRESH's skipping is value-based:
a skipped row holds no charge, so its retention time cannot matter, and
rows that do hold charge stay on the standard 64 ms schedule the floor
guarantee covers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.raidr import RaidrScheduler
from repro.dram.variation import RetentionProfile, VrtProcess
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
)

VRT_HOURS = (0, 1, 4, 16)


def run(settings: ExperimentSettings = ExperimentSettings(),
        num_rows: int = 65536,
        flips_per_row_per_hour: float = 0.02) -> ExperimentResult:
    rng = np.random.default_rng(settings.seed)
    profile = RetentionProfile.sample(num_rows, rng=rng)
    scheduler = RaidrScheduler(profile)
    vrt = VrtProcess(profile, flips_per_row_per_hour, rng=rng)

    # ZERO-REFRESH on a representative benchmark for the comparison row.
    zr = simulate_benchmark(settings, "mcf", 1.0)

    rows = []
    elapsed = 0.0
    for hours in VRT_HOURS:
        vrt.advance(hours * 3600.0 - elapsed)
        elapsed = hours * 3600.0
        unsafe = vrt.unsafe_rows(scheduler.assigned_period_s)
        rows.append([
            f"RAIDR @ {hours}h VRT",
            1.0 - scheduler.expected_reduction(),
            int(len(unsafe)),
            len(unsafe) / num_rows,
        ])
    rows.append([
        "ZERO-REFRESH (any age)",
        zr.normalized_refresh,
        0,
        0.0,
    ])
    return ExperimentResult(
        experiment_id="ext-vrt",
        title="Retention-aware vs value-aware skipping under VRT",
        headers=["mechanism", "norm refresh", "unsafe rows",
                 "unsafe fraction"],
        rows=rows,
        notes=(
            "RAIDR reduces more but its static profile accrues rows whose "
            "current retention no longer covers their bin period; "
            "value-based skipping has no retention exposure by "
            "construction (skipped rows hold no charge)"
        ),
    )
