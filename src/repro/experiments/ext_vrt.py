"""Extension experiment: VRT exposure of retention-aware skipping
(ext-vrt).

The paper dismisses retention-time-based reduction (VRA, RAIDR) because
retention changes dynamically (VRT), silently invalidating a static
profile (Sec. I, II-D).  This experiment quantifies the trade it
alludes to: RAIDR's refresh reduction is excellent, but hours of VRT
leave a growing population of rows refreshed more slowly than their
*current* retention tolerates.  ZERO-REFRESH's skipping is value-based:
a skipped row holds no charge, so its retention time cannot matter, and
rows that do hold charge stay on the standard 64 ms schedule the floor
guarantee covers.

The VRT process is stateful across the hour marks (one shared RNG), so
the whole sweep is a single table point.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import ScenarioSpec

VRT_HOURS = (0, 1, 4, 16)

SPEC = ScenarioSpec(
    scenario_id="ext-vrt",
    description="RAIDR under VRT drift vs value-aware skipping",
    point="repro.experiments.ext_vrt:vrt_point",
    point_params={"num_rows": 65536, "flips_per_row_per_hour": 0.02},
    reduction="table",
    reduction_params={
        "title": "Retention-aware vs value-aware skipping under VRT",
        "headers": ["mechanism", "norm refresh", "unsafe rows",
                    "unsafe fraction"],
        "notes": (
            "RAIDR reduces more but its static profile accrues rows whose "
            "current retention no longer covers their bin period; "
            "value-based skipping has no retention exposure by "
            "construction (skipped rows hold no charge)"
        ),
    },
)


def vrt_point(settings, job) -> list:
    from repro.baselines.raidr import RaidrScheduler
    from repro.dram.variation import RetentionProfile, VrtProcess
    from repro.experiments.runner import simulate_benchmark

    num_rows = int(job.params["num_rows"])
    flips_per_row_per_hour = float(job.params["flips_per_row_per_hour"])
    rng = np.random.default_rng(settings.seed)
    profile = RetentionProfile.sample(num_rows, rng=rng)
    scheduler = RaidrScheduler(profile)
    vrt = VrtProcess(profile, flips_per_row_per_hour, rng=rng)

    # ZERO-REFRESH on a representative benchmark for the comparison row.
    zr = simulate_benchmark(settings, "mcf", 1.0)

    rows = []
    elapsed = 0.0
    for hours in VRT_HOURS:
        vrt.advance(hours * 3600.0 - elapsed)
        elapsed = hours * 3600.0
        unsafe = vrt.unsafe_rows(scheduler.assigned_period_s)
        rows.append([
            f"RAIDR @ {hours}h VRT",
            1.0 - scheduler.expected_reduction(),
            int(len(unsafe)),
            len(unsafe) / num_rows,
        ])
    rows.append([
        "ZERO-REFRESH (any age)",
        zr.normalized_refresh,
        0,
        0.0,
    ])
    return rows


def run(settings=None, num_rows: int = 65536,
        flips_per_row_per_hour: float = 0.02):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    params = {"num_rows": num_rows,
              "flips_per_row_per_hour": flips_per_row_per_hour}
    if params != SPEC.point_params_dict:
        spec = replace(SPEC, point_params=params)
    return as_experiment(spec)(settings)
