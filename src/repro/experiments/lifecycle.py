"""The unified run lifecycle: one request object, one runner recipe.

There used to be three slightly different ways to ask for a run —
``repro.api.run_experiment`` kwargs, the CLI's flag soup, and the
serving layer's :class:`~repro.experiments.engine.ExperimentRequest` —
each re-resolving cache config and each with its own idea of what
``probes`` or ``jobs`` meant.  :class:`RunRequest` collapses them:
every entry point builds one of these, and the policy knobs (cache,
journal, timeout, retry, resume, fault injection) are defined exactly
once, here.

The functions below are the whole lifecycle:

:func:`resolve_jobs`
    The one place the ``probes`` → ``jobs=1`` coercion lives (and
    warns when it overrides an explicit ``jobs``).
:func:`build_runner`
    The one place a :class:`~repro.experiments.engine.Runner` is
    assembled from policy knobs.
:func:`runner_for`
    ``build_runner`` applied to a request.
:func:`execute`
    Run the request (optionally on a shared runner), installing its
    probe bus and threading its resume token through the journal.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.experiments.cache import ResultCache
from repro.experiments.engine import RetryPolicy, Runner
from repro.experiments.faults import FaultPlan
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "RunRequest",
    "build_runner",
    "execute",
    "resolve_jobs",
    "runner_for",
]


@dataclass(frozen=True)
class RunRequest:
    """Everything one experiment run needs, in one immutable object.

    This is the blessed entry point for running experiments
    (``repro.api.run(RunRequest(...))``); the engine, the CLI and the
    serving layer all construct runs from it, so resume/retry/timeout
    policy has exactly one definition.

    Fields
    ------
    experiment_id:
        Registered experiment id (see ``repro.api.list_experiments``).
        Exactly one of ``experiment_id`` and ``spec`` must be given.
    spec:
        A :class:`~repro.scenarios.spec.ScenarioSpec` to run instead of
        a registered experiment — the ad-hoc sweep path.  The spec is
        expanded by the generic executor and runs through the same
        cache/journal/resume machinery (its ``scenario_id`` is the
        cache and journal identity).
    settings:
        :class:`ExperimentSettings`; ``None`` means paper defaults.
    jobs:
        Worker processes (``None``: all cores).  **Coercion rule:** a
        request carrying ``probes`` runs in-process — the probe bus is
        per-process, so fan-out would bypass live tracing.  ``jobs``
        other than ``None``/``1`` is overridden to ``1`` with a
        :class:`RuntimeWarning` (see :func:`resolve_jobs`).  Per-job
        metric *snapshots* survive fan-out regardless; the coercion
        only affects live streaming.
    cache:
        ``True`` (default location), ``False`` (no caching — also
        disables the journal), or a ready :class:`ResultCache`.
    cache_dir:
        Cache location when ``cache=True`` (default:
        ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
    probes:
        A :class:`repro.obs.ProbeBus` installed for the run's duration.
    watchdog:
        Run every job under an invariant watchdog.
    timeout_s / retry:
        Per-job wall-clock budget and :class:`RetryPolicy` (defaults:
        no timeout; 3 attempts, 2 worker crashes, exponential backoff).
    resume:
        A previous run's journal token: journaled-done jobs replay
        from the cache, only the remainder executes.
    run_id:
        Override the journal's (otherwise deterministic) run id.
    faults:
        A :class:`FaultPlan` for deterministic chaos testing.
    journal:
        Set ``False`` to suppress the per-run journal.
    span_flush_every:
        Flush the run's span store every N records so the trace
        survives a crash (``None``: buffer until close; the chaos
        driver arms ``1``).
    backend:
        Execution backend name — ``"serial"``, ``"pool"`` or
        ``"cluster"`` — or a ready
        :class:`~repro.experiments.backends.ExecutionBackend`.
        ``None`` (default) derives serial/pool from ``jobs``.  A
        cluster run spawns ``workers`` local worker processes, or
        binds ``worker_address`` and waits for external
        ``repro worker --connect`` processes to join.  Everything
        else on this request — resume, retry, quarantine, faults,
        journal — behaves identically across backends.
    workers:
        Cluster fleet size (``backend="cluster"`` only; default 2).
    worker_address:
        Address to bind for external workers (``HOST:PORT`` or a unix
        socket path); ``None`` spawns the fleet locally.
    """

    experiment_id: Optional[str] = None
    spec: Optional["ScenarioSpec"] = None
    settings: Optional[ExperimentSettings] = None
    jobs: Optional[int] = None
    cache: Union[bool, ResultCache] = True
    cache_dir: Optional[os.PathLike] = None
    probes: Optional[object] = None
    watchdog: bool = False
    timeout_s: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    resume: Optional[str] = None
    run_id: Optional[str] = None
    faults: Optional[FaultPlan] = None
    journal: bool = True
    span_flush_every: Optional[int] = None
    backend: Optional[object] = None
    workers: Optional[int] = None
    worker_address: Optional[str] = None


def resolve_jobs(jobs: Optional[int], probes) -> Optional[int]:
    """Apply the ``probes`` → in-process coercion, loudly.

    The probe bus is per-process: live tracing through ``probes`` only
    sees jobs executed in-process, so an instrumented run forces
    ``jobs=1``.  When that overrides an explicit ``jobs`` value the
    caller is told via :class:`RuntimeWarning` instead of silently
    getting a serial run.
    """
    if probes is None:
        return jobs
    if jobs not in (None, 1):
        warnings.warn(
            f"probes force in-process execution: overriding jobs={jobs} "
            f"with jobs=1 (drop probes= to fan out; per-job metric "
            f"snapshots are captured either way)",
            RuntimeWarning,
            stacklevel=3,
        )
    return 1


def build_runner(
    *,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultCache] = True,
    cache_dir: Optional[os.PathLike] = None,
    watchdog: bool = False,
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    journal: bool = True,
    span_flush_every: Optional[int] = None,
    backend=None,
    workers: Optional[int] = None,
    worker_address: Optional[str] = None,
) -> Runner:
    """Assemble a :class:`Runner` from policy knobs.

    The single runner-construction recipe shared by ``repro.api``
    (``make_runner``, ``run_experiment``, ``run_all``), the CLI and
    the serving layer.  A runner whose backend holds long-lived
    machinery (a cluster fleet) should be released with
    ``Runner.close()`` when the caller is done with it.
    """
    from repro.experiments.backends import resolve_backend

    if isinstance(cache, ResultCache):
        store = cache
    elif cache:
        store = ResultCache(cache_dir)
    else:
        store = None
    return Runner(
        jobs=jobs,
        cache=store,
        watchdog=watchdog,
        timeout_s=timeout_s,
        retry=retry,
        faults=faults,
        journal=journal,
        span_flush_every=span_flush_every,
        backend=resolve_backend(backend, workers=workers,
                                worker_address=worker_address),
    )


def runner_for(request: RunRequest) -> Runner:
    """The runner a :class:`RunRequest` asks for."""
    return build_runner(
        jobs=resolve_jobs(request.jobs, request.probes),
        cache=request.cache,
        cache_dir=request.cache_dir,
        watchdog=request.watchdog,
        timeout_s=request.timeout_s,
        retry=request.retry,
        faults=request.faults,
        journal=request.journal,
        span_flush_every=request.span_flush_every,
        backend=request.backend,
        workers=request.workers,
        worker_address=request.worker_address,
    )


def execute(request: RunRequest, runner: Optional[Runner] = None) -> ExperimentResult:
    """Run one :class:`RunRequest` to completion.

    Pass a shared ``runner`` to reuse one cache/manifest across several
    requests (``repro.api.run_all`` and the CLI's ``all`` do); it is
    built from the request otherwise — and an internally-built runner
    is closed before returning, so its backend machinery and the run's
    advisory lock are released the moment the run ends rather than at
    garbage-collection time.  The request's probe bus, resume token and
    run id are threaded through either way.
    """
    if (request.experiment_id is None) == (request.spec is None):
        raise ValueError(
            "RunRequest needs exactly one of experiment_id or spec"
        )
    if request.spec is not None:
        from repro.scenarios.executor import as_experiment

        experiment = as_experiment(request.spec)
    else:
        from repro.experiments import REGISTRY

        try:
            experiment = REGISTRY[request.experiment_id]
        except KeyError:
            known = ", ".join(REGISTRY)
            raise KeyError(
                f"unknown experiment {request.experiment_id!r}; "
                f"known ids: {known}"
            ) from None
    owned = runner is None
    if owned:
        runner = runner_for(request)
    try:
        if request.probes is None:
            return runner.run_experiment(
                experiment, request.settings,
                run_id=request.run_id, resume=request.resume,
            )
        from repro.obs import use_probes

        with use_probes(request.probes):
            return runner.run_experiment(
                experiment, request.settings,
                run_id=request.run_id, resume=request.resume,
            )
    finally:
        if owned:
            runner.close()


def execute_all(
    request_defaults: RunRequest,
    runner: Optional[Runner] = None,
) -> Dict[str, ExperimentResult]:
    """Run every registered experiment with one shared runner.

    ``request_defaults.experiment_id`` is ignored; each experiment runs
    with the same settings/policy.  The shared runner means one cache,
    one journal namespace and one merged metrics manifest across the
    whole sweep.
    """
    from dataclasses import replace

    from repro.experiments import REGISTRY

    if runner is None:
        runner = runner_for(request_defaults)
    return {
        experiment_id: execute(
            replace(request_defaults, experiment_id=experiment_id),
            runner=runner,
        )
        for experiment_id in REGISTRY
    }
