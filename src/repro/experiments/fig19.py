"""Fig. 19 — Smart Refresh vs. ZERO-REFRESH as capacity scales (mcf).

Smart Refresh skips rows the program touched within the window, so its
normalised refresh is ``1 - touched_fraction`` — and the touched
fraction collapses as installed memory grows past the (fixed) working
set: the paper measures mcf going from 52.6 % normalised refresh at
4 GB to 94.1 % at 32 GB.  ZERO-REFRESH stays roughly flat because value
statistics, not access reach, drive it; per the paper the unused space
is filled with application data (not zeros) to keep the comparison
fair.

Capacities are simulated at 1/1024 scale (4 MB stands for 4 GB, etc.);
all ratio metrics are scale-invariant, and the working set and traffic
are held at a fixed *absolute* size across the sweep exactly as the
paper's fixed benchmark does.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.smart_refresh import SmartRefreshTracker
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.scenarios.resolve import config_for
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.sim.kernel import SimKernel
from repro.sim.schemes import AccessFeed, SmartRefreshScheme
from repro.workloads.benchmarks import benchmark_profile

CAPACITIES_MB = (4, 8, 16, 32)  # stand-ins for 4/8/16/32 GB

DEFAULT_BENCHMARK = "mcf"

SPEC = ScenarioSpec(
    scenario_id="fig19",
    description="Smart Refresh vs ZERO-REFRESH across capacities (mcf)",
    axes=(SweepAxis("params.cap_mb", values=list(CAPACITIES_MB)),),
    point="repro.experiments.fig19:capacity_point",
    point_params={"benchmark": DEFAULT_BENCHMARK},
    reduction="repro.experiments.fig19:reduce_scenario",
)


def capacity_point(settings, job) -> Tuple[float, float]:
    """One capacity of the sweep: (smart refresh, zero-refresh) normalised.

    Runs in engine workers; everything that determines the outcome is in
    ``settings`` and ``job.params`` so the result is cacheable.
    """
    cap_mb = int(job.params["cap_mb"])
    benchmark = str(job.params["benchmark"])
    profile = benchmark_profile(benchmark)
    smallest_pages = (CAPACITIES_MB[0] << 20) // 4096
    # mcf's per-window *touch* reach is huge (pointer chasing covers
    # about half of a 4 GB machine within 32 ms) but read-dominated:
    # reads recharge rows — which is all Smart Refresh needs — while
    # only the small write stream dirties ZERO-REFRESH's access bits.
    ws_pages_abs = int(0.55 * smallest_pages)
    accesses = ws_pages_abs * 6
    write_fraction = 0.08

    config = config_for(settings, memory_bytes=cap_mb << 20)
    system = ZeroRefreshSystem(config)
    total_pages = system.allocator.total_pages
    system.populate(
        profile,
        allocated_fraction=1.0,
        working_set_fraction=ws_pages_abs / total_pages,
        accesses_per_window=accesses,
        write_fraction=write_fraction,
    )
    result = system.run_windows(settings.windows)

    # Smart Refresh on the same machine and the same traffic, driven
    # through the same kernel as every other scheme.
    tracker = SmartRefreshTracker(config.geometry)
    kernel = SimKernel(
        SmartRefreshScheme(tracker, smart_refresh_feed(system, config)),
        window_s=config.timing.tret_s, name="smart-refresh",
    )
    kernel.run(settings.windows)
    return tracker.stats.normalized_refresh(), result.normalized_refresh


def smart_refresh_feed(system: ZeroRefreshSystem, config) -> "AccessFeed":
    """Per-window (banks, rows) touched, from the system's trace stream."""
    generator = system._trace_generator
    lines_per_page = config.geometry.lines_per_page
    num_banks = config.geometry.num_banks

    def feed():
        trace = generator.window_trace()
        pages = np.unique(trace.line_addrs // lines_per_page)
        return pages % num_banks, pages // num_banks

    return feed


def reduce_scenario(spec, settings, axes, results):
    from repro.experiments.runner import ExperimentResult

    benchmark = spec.point_params_dict["benchmark"]
    rows = [
        [f"{cap_mb} GB", smart, zero]
        for cap_mb, (smart, zero) in zip(axes["params.cap_mb"], results)
    ]
    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title=f"Smart Refresh vs ZERO-REFRESH scalability ({benchmark})",
        headers=["capacity", "smart refresh", "zero-refresh"],
        rows=rows,
        paper_reference={"smart@4GB": 0.526, "smart@32GB": 0.941,
                         "zero-refresh": "~flat"},
        notes="capacities simulated at 1/1024 scale with a fixed working set",
    )


def run(settings=None, benchmark: str = DEFAULT_BENCHMARK):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    if benchmark != DEFAULT_BENCHMARK:
        # Same sweep, different workload: the spec is data, so rebind
        # its point parameter instead of re-rolling the loop.
        spec = replace(SPEC, point_params={"benchmark": benchmark})
    return as_experiment(spec)(settings)
