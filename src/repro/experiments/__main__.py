"""Command-line entry point for the experiment runners.

Examples::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments fig18 --memory-mb 64 --windows 8
    python -m repro.experiments fig17 --json
    python -m repro.experiments all --csv-out out/ --no-cache

Simulation points fan out over ``--jobs`` worker processes and land in
a content-addressed on-disk cache (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``.repro-cache``), so re-runs and figures that
share points are served from disk.  Every run appends a JSONL manifest
(one line per job: digest, cache hit/miss, wall time, worker id) under
``<cache-dir>/manifests/`` and prints a summary at the end.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import repro.api as api
from repro.experiments import REGISTRY
from repro.experiments.cache import default_cache_dir


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; one of: {', '.join(REGISTRY)}",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small scale: 16 MB, 2 windows, 9 benchmarks")
    parser.add_argument("--memory-mb", type=int, default=None,
                        help="simulated capacity in MB (default 32)")
    parser.add_argument("--windows", type=int, default=None,
                        help="measured retention windows (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON instead of tables")
    parser.add_argument("--csv-out", type=Path, default=None, metavar="DIR",
                        help="also write each result as DIR/<id>.csv")
    args = parser.parse_args(argv)

    settings = (api.quick_settings(seed=args.seed)
                if args.quick else api.default_settings(seed=args.seed))
    overrides = {}
    if args.memory_mb is not None:
        overrides["memory_bytes"] = args.memory_mb << 20
    if args.windows is not None:
        overrides["windows"] = args.windows
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in REGISTRY:
            parser.error(f"unknown experiment {name!r}")
    if args.csv_out is not None:
        args.csv_out.mkdir(parents=True, exist_ok=True)

    runner = api.make_runner(jobs=args.jobs, cache=not args.no_cache,
                             cache_dir=args.cache_dir)
    # Tables/JSON go to stdout; timings and engine diagnostics go to
    # stderr so repeated runs produce byte-identical result streams.
    run_start = time.time()
    for name in names:
        start = time.time()
        result = api.run_experiment(name, settings, runner=runner)
        print(result.to_json(indent=2) if args.json else result.render())
        if not args.json:
            print()
        print(f"[{name}] {time.time() - start:.1f}s", file=sys.stderr)
        if args.csv_out is not None:
            result.save_csv(args.csv_out / f"{name}.csv")

    elapsed = time.time() - run_start
    manifest_dir = (args.cache_dir or default_cache_dir()) / "manifests"
    manifest_path = manifest_dir / f"run-{int(run_start)}-{os.getpid()}.jsonl"
    runner.write_manifest(manifest_path)
    print(f"engine: {runner.summary(elapsed)}", file=sys.stderr)
    print(f"manifest: {manifest_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
