"""Command-line entry point for the experiment runners.

Examples::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments fig18 --memory-mb 64 --windows 8
    python -m repro.experiments fig17 --json
    python -m repro.experiments all --csv-out out/ --no-cache
    python -m repro.experiments list
    python -m repro.experiments inspect <run-id>
    python -m repro.experiments inspect --list
    python -m repro.experiments sweep --quick \\
        --axis temperature=NORMAL,EXTENDED --axis memory_mb=16,64 \\
        --set stages.rotation=false
    python -m repro.experiments fig17 --backend cluster --workers 2
    python -m repro.experiments worker --connect 127.0.0.1:7071
    python -m repro.experiments fsck --repair
    python -m repro.experiments gc --max-age 7d --keep-runs 20

``list`` prints every registered scenario with its description.
``inspect`` reconstructs a finished (or interrupted) run's timeline
from its journal and span store (``--list`` enumerates every recorded
run, newest first) — see :mod:`repro.obs.inspect`.
``worker`` joins a cluster coordinator (``repro run/sweep --backend
cluster --bind ADDR`` on the scheduling side) and executes its jobs —
see :mod:`repro.cluster`.
``fsck`` verifies every durable artifact under the cache dir (and with
``--repair`` quarantines damage to ``lost+found/``); ``gc`` applies a
retention policy without ever touching an in-progress run's state —
see :mod:`repro.store`.
``sweep`` runs an ad-hoc, never-registered scenario: each ``--axis``
adds a sweep dimension (settings fields, config overrides, dotted
``stages.<flag>`` keys, ``allocated_fraction`` ...), ``--set`` pins an
override for every cell, and a benchmark axis is appended innermost
unless given.  The sweep runs through the same engine, cache and
journal as the registered figures — repeating an identical sweep is
served from the cache.

Simulation points fan out over ``--jobs`` worker processes and land in
a content-addressed on-disk cache (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``.repro-cache``), so re-runs and figures that
share points are served from disk.  Every run appends a JSONL manifest
(one line per job: digest, cache hit/miss, wall time, worker id) under
``<cache-dir>/manifests/`` and prints a summary at the end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import repro.api as api
from repro.experiments import REGISTRY
from repro.experiments.cache import default_cache_dir


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["inspect"]:
        # `inspect` takes its own flags (--json/--cache-dir mean
        # different things there), so it bypasses the run parser.
        from repro.obs.inspect import main as inspect_main

        return inspect_main(argv[1:])
    if argv[:1] == ["worker"]:
        # `repro worker --connect ADDR`: join a cluster coordinator
        # and execute its jobs until shutdown.
        from repro.cluster.worker import main as worker_main

        return worker_main(argv[1:])
    if argv[:1] == ["fsck"]:
        # `repro fsck [--repair]`: verify the durable store's envelopes
        from repro.store.fsck import main as fsck_main

        return fsck_main(argv[1:])
    if argv[:1] == ["gc"]:
        # `repro gc`: apply a retention policy to the durable store
        from repro.store.gc import main as gc_main

        return gc_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {api.version()}")
    parser.add_argument(
        "experiment",
        help=f"experiment id, 'all', 'list' (describe registered "
             f"scenarios), 'sweep' (ad-hoc --axis/--set sweep), "
             f"'inspect <run-id>' (reconstruct a run's timeline), "
             f"'fsck' (verify/repair the store) or 'gc' (apply a "
             f"retention policy); one of: {', '.join(REGISTRY)}",
    )
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=V1,V2,...",
                        help="(sweep) add a sweep axis: a settings/config "
                             "override key, 'allocated_fraction' or "
                             "'benchmark', with comma-separated values; "
                             "repeatable, first axis is outermost")
    parser.add_argument("--set", action="append", default=[], dest="sets",
                        metavar="KEY=VALUE",
                        help="(sweep) pin one dotted override (e.g. "
                             "stages.rotation=false) for every cell; "
                             "repeatable")
    parser.add_argument("--benchmarks", default=None, metavar="A,B,C",
                        help="(sweep) benchmark axis values (default: the "
                             "settings' suite)")
    parser.add_argument("--quick", action="store_true",
                        help="small scale: 16 MB, 2 windows, 9 benchmarks")
    parser.add_argument("--memory-mb", type=int, default=None,
                        help="simulated capacity in MB (default 32)")
    parser.add_argument("--windows", type=int, default=None,
                        help="measured retention windows (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--backend", choices=["serial", "pool", "cluster"],
                        default=None,
                        help="execution backend (default: serial or pool "
                             "derived from --jobs); 'cluster' schedules "
                             "jobs to worker processes over sockets")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="(cluster) fleet size: local workers to "
                             "spawn, or external workers expected on "
                             "--bind (default 2)")
    parser.add_argument("--bind", default=None, metavar="ADDR",
                        help="(cluster) bind HOST:PORT or a unix socket "
                             "path and wait for external 'repro worker "
                             "--connect ADDR' processes instead of "
                             "spawning local ones")
    parser.add_argument("--resume", metavar="RUN_ID", default=None,
                        help="resume a journaled run: completed jobs "
                             "replay from the cache, only the remainder "
                             "executes (tokens print on stderr at the "
                             "end of every cached run)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget; a job over "
                             "budget counts as a failed attempt")
    parser.add_argument("--retries", type=int, default=None,
                        metavar="N",
                        help="attempts per job before quarantine "
                             "(default 3)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON instead of tables")
    parser.add_argument("--csv-out", type=Path, default=None, metavar="DIR",
                        help="also write each result as DIR/<id>.csv")
    parser.add_argument("--trace", type=Path, nargs="?", metavar="PATH",
                        const=Path("repro-trace.jsonl"), default=None,
                        help="write a JSONL probe event trace (default "
                             "path: repro-trace.jsonl); implies --jobs 1")
    parser.add_argument("--profile", action="store_true",
                        help="collect per-phase wall times and probe "
                             "counters, summarised on stderr; implies "
                             "--jobs 1")
    parser.add_argument("--bench-json", type=Path, default=None,
                        metavar="PATH",
                        help="with --profile: also write phase timings, "
                             "counters and cache stats as JSON")
    parser.add_argument("--trace-chrome", type=Path, default=None,
                        metavar="PATH",
                        help="write probe events as a Chrome-trace/"
                             "Perfetto JSON file (open at "
                             "https://ui.perfetto.dev); implies --jobs 1")
    parser.add_argument("--watchdog", action="store_true",
                        help="run invariant watchdogs in every job; "
                             "violations land in the metrics manifest "
                             "and a summary prints on stderr")
    parser.add_argument("--metrics-json", type=Path, default=None,
                        metavar="PATH",
                        help="write the merged run-level metrics "
                             "manifest (per-job probe snapshots folded "
                             "in plan order) as JSON")
    args = parser.parse_args(argv)
    if args.bench_json is not None and not args.profile:
        parser.error("--bench-json requires --profile")
    if args.resume is not None and args.experiment == "all":
        parser.error("--resume names one run's journal; use it with a "
                     "single experiment id")
    if args.resume is not None and args.no_cache:
        parser.error("--resume needs the cache (journal replays are "
                     "served from it); drop --no-cache")
    if (args.experiment != "sweep"
            and (args.axis or args.sets or args.benchmarks is not None)):
        parser.error("--axis/--set/--benchmarks only apply to 'sweep'")
    if args.backend != "cluster" and (args.workers is not None
                                      or args.bind is not None):
        parser.error("--workers/--bind require --backend cluster")

    if args.experiment == "list":
        from repro.experiments import SCENARIOS

        width = max(len(scenario_id) for scenario_id in SCENARIOS)
        for scenario_id, spec in SCENARIOS.items():
            print(f"{scenario_id:<{width}}  {spec.description}")
        return 0

    settings = (api.quick_settings(seed=args.seed)
                if args.quick else api.default_settings(seed=args.seed))
    overrides = {}
    if args.memory_mb is not None:
        overrides["memory_bytes"] = args.memory_mb << 20
    if args.windows is not None:
        overrides["windows"] = args.windows
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    sweep_spec = None
    if args.experiment == "sweep":
        sweep_spec = build_sweep_spec(parser, args)
        names = [sweep_spec.scenario_id]
    else:
        names = (list(REGISTRY) if args.experiment == "all"
                 else [args.experiment])
        for name in names:
            if name not in REGISTRY:
                parser.error(f"unknown experiment {name!r}")
    if args.csv_out is not None:
        args.csv_out.mkdir(parents=True, exist_ok=True)

    instrumented = (args.profile or args.trace is not None
                    or args.trace_chrome is not None)
    bus = None
    chrome_records = None
    if instrumented:
        from repro.obs import JsonlTraceSink, ListTraceSink, ProbeBus

        if args.trace is not None:
            sink = JsonlTraceSink(args.trace)
        elif args.trace_chrome is not None:
            # no JSONL requested: buffer events in memory for conversion
            sink = ListTraceSink()
            chrome_records = sink.records
        else:
            sink = None
        bus = ProbeBus(trace=sink)

    # The probe bus is per-process: instrumented runs stay in-process.
    jobs = 1 if instrumented else args.jobs
    retry = (api.RetryPolicy(max_attempts=args.retries)
             if args.retries is not None else None)
    runner = api.make_runner(jobs=jobs, cache=not args.no_cache,
                             cache_dir=args.cache_dir,
                             watchdog=args.watchdog,
                             timeout_s=args.job_timeout, retry=retry,
                             backend=args.backend, workers=args.workers,
                             worker_address=args.bind)
    # Tables/JSON go to stdout; timings, profiles and engine diagnostics
    # go to stderr so repeated runs produce byte-identical result
    # streams — instrumented or not.
    run_start = time.time()
    try:
        for name in names:
            start = time.time()
            request = api.RunRequest(
                experiment_id=None if sweep_spec is not None else name,
                spec=sweep_spec, settings=settings, probes=bus,
                resume=args.resume,
            )
            result = api.run(request, runner=runner)
            if args.json:
                # the result doc plus the run/trace identity, so
                # machine consumers can feed `repro inspect` without
                # scraping stderr; both ids are deterministic functions
                # of experiment + settings, keeping cold/warm output
                # byte-identical
                doc = result.to_dict()
                doc["run_id"] = runner.last_run_id
                doc["trace_id"] = runner.last_trace_id
                print(json.dumps(doc, indent=2))
            else:
                print(result.render())
                print()
            print(f"[{name}] {time.time() - start:.1f}s", file=sys.stderr)
            if runner.last_run_id is not None:
                print(f"[{name}] run id: {runner.last_run_id} "
                      f"(trace {runner.last_trace_id}; resume with "
                      f"--resume, inspect with 'inspect')",
                      file=sys.stderr)
            if args.csv_out is not None:
                result.save_csv(args.csv_out / f"{name}.csv")
    finally:
        # release the backend's machinery (a cluster fleet) before the
        # summary prints, so worker teardown noise precedes it
        runner.close()
        if bus is not None:
            bus.close()

    elapsed = time.time() - run_start
    manifest_dir = (args.cache_dir or default_cache_dir()) / "manifests"
    manifest_path = manifest_dir / f"run-{int(run_start)}-{os.getpid()}.jsonl"
    runner.write_manifest(manifest_path)
    print(f"engine: {runner.summary(elapsed)}", file=sys.stderr)
    print(f"manifest: {manifest_path}", file=sys.stderr)
    if args.profile:
        print(bus.profile_report(), file=sys.stderr)
    if args.trace is not None:
        print(f"trace: {args.trace} "
              f"({bus.trace.events_written} events)", file=sys.stderr)
    if args.trace_chrome is not None:
        from repro.obs.export import read_jsonl, write_chrome_trace

        records = (chrome_records if chrome_records is not None
                   else read_jsonl(args.trace))
        spans = runner.span_records + [
            r for t in ([runner.tracer] if runner.tracer else [])
            for r in t.records
        ]
        n = write_chrome_trace(records, args.trace_chrome,
                               span_records=spans or None)
        print(f"chrome trace: {args.trace_chrome} ({n} events) — open at "
              f"https://ui.perfetto.dev", file=sys.stderr)
    if args.metrics_json is not None:
        runner.write_metrics_manifest(args.metrics_json)
        print(f"metrics: {args.metrics_json}", file=sys.stderr)
    if args.watchdog:
        inv = runner.merged_metrics.get("invariants") or {}
        print(f"invariants: {inv.get('checks', 0)} checks, "
              f"{inv.get('violation_count', 0)} violations",
              file=sys.stderr)
        for violation in inv.get("violations", [])[:10]:
            fields = ", ".join(f"{k}={v}"
                               for k, v in sorted(violation.items())
                               if k != "check")
            print(f"  {violation.get('check')}: {fields}", file=sys.stderr)
    if args.bench_json is not None:
        write_bench_json(args.bench_json, bus, runner, elapsed)
        print(f"bench: {args.bench_json}", file=sys.stderr)
    return 0


def build_sweep_spec(parser, args):
    """An ad-hoc :class:`ScenarioSpec` from ``--axis``/``--set`` flags.

    Axis and override values parse as JSON scalars with a bare-string
    fallback (``16`` is an int, ``false`` a bool, ``NORMAL`` a string),
    matching the wire form a sweep request body would carry.
    """
    from repro.scenarios import ScenarioError, parse_value

    if not args.axis:
        parser.error("sweep needs at least one --axis NAME=V1,V2,...")
    axes = {}
    for item in args.axis:
        name, sep, raw = item.partition("=")
        if not sep or not name or not raw:
            parser.error(f"--axis expects NAME=V1,V2,..., got {item!r}")
        if name in axes:
            parser.error(f"duplicate --axis name {name!r}")
        axes[name] = [parse_value(token) for token in raw.split(",")]
    overrides = {}
    for item in args.sets:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            parser.error(f"--set expects KEY=VALUE, got {item!r}")
        overrides[key] = parse_value(raw)
    benchmarks = (args.benchmarks.split(",")
                  if args.benchmarks is not None else None)
    try:
        spec = api.adhoc_sweep_spec(axes, overrides=overrides or None,
                                    benchmarks=benchmarks)
        # Fail on unknown keys/values now, before any engine setup.
        from repro.scenarios import expand

        expand(spec)
    except ScenarioError as exc:
        parser.error(str(exc))
    return spec


def write_bench_json(path: Path, bus, runner, elapsed_s: float) -> None:
    """Write the benchmark-smoke artifact: phase timings, probe
    counters and engine cache statistics (the CI ``BENCH_sim.json``)."""
    import json

    stats = runner.stats
    looked_up = stats.cache_hits + stats.cache_misses
    invariants = runner.merged_metrics.get("invariants")
    payload = {
        "elapsed_s": round(elapsed_s, 3),
        **bus.snapshot(),
        **({"invariants": {"checks": invariants["checks"],
                           "violation_count": invariants["violation_count"]}}
           if invariants else {}),
        "engine": {
            "jobs": stats.jobs,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_hit_rate": (round(stats.cache_hits / looked_up, 4)
                               if looked_up else None),
            "sim_seconds": round(stats.sim_seconds, 3),
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    sys.exit(main())
