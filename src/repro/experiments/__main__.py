"""Command-line entry point for the experiment runners.

Examples::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all
    python -m repro.experiments fig18 --memory-mb 64 --windows 8
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import REGISTRY, ExperimentSettings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id or 'all'; one of: {', '.join(REGISTRY)}",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small scale: 8 MB, 2 windows, 9 benchmarks")
    parser.add_argument("--memory-mb", type=int, default=None,
                        help="simulated capacity in MB (default 32)")
    parser.add_argument("--windows", type=int, default=None,
                        help="measured retention windows (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    settings = (ExperimentSettings.quick(seed=args.seed)
                if args.quick else ExperimentSettings(seed=args.seed))
    overrides = {}
    if args.memory_mb is not None:
        overrides["memory_bytes"] = args.memory_mb << 20
    if args.windows is not None:
        overrides["windows"] = args.windows
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)

    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in REGISTRY:
            parser.error(f"unknown experiment {name!r}")
        start = time.time()
        result = REGISTRY[name](settings)
        print(result.render())
        print(f"({time.time() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
