"""Fig. 15 — normalised refresh energy, overheads included.

Same sweep as Fig. 14, but accounting energy: row refreshes performed
plus the EBDI modules (15 pJ/op), the access-bit SRAM leakage and the
DRAM-resident status-table traffic, all relative to the conventional
baseline's refresh energy.  Paper averages: 36.5 % / 44 % / 55 % / 82 %
energy reduction — a hair under the refresh-count reduction because of
the overheads.
"""

from __future__ import annotations

from repro.osmodel.scenarios import PAPER_SCENARIOS
from repro.scenarios.spec import ScenarioSpec, SweepAxis

SCENARIO_ORDER = ("100%", "88%", "70%", "28%")
PAPER_AVG_REDUCTION = {"100%": 0.365, "88%": 0.44, "70%": 0.55, "28%": 0.82}

SPEC = ScenarioSpec(
    scenario_id="fig15",
    description="Normalized refresh energy incl. overheads, four levels",
    axes=(
        SweepAxis("allocated_fraction",
                  values=[PAPER_SCENARIOS[s].allocated_fraction
                          for s in SCENARIO_ORDER]),
        SweepAxis("benchmark"),
    ),
    reduction="benchmark_grid",
    reduction_params={
        "title": "Normalized refresh energy incl. ZERO-REFRESH overheads",
        "metric": "normalized_energy",
        "columns": list(SCENARIO_ORDER),
        "extra_rows": [["paper avg"] + [1.0 - PAPER_AVG_REDUCTION[s]
                                        for s in SCENARIO_ORDER]],
        "paper_reference": {f"avg@{s}": 1.0 - PAPER_AVG_REDUCTION[s]
                            for s in SCENARIO_ORDER},
        "notes": "energy reduction trails refresh reduction slightly "
                 "(overheads)",
    },
)


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
