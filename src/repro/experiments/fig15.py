"""Fig. 15 — normalised refresh energy, overheads included.

Same sweep as Fig. 14, but accounting energy: row refreshes performed
plus the EBDI modules (15 pJ/op), the access-bit SRAM leakage and the
DRAM-resident status-table traffic, all relative to the conventional
baseline's refresh energy.  Paper averages: 36.5 % / 44 % / 55 % / 82 %
energy reduction — a hair under the refresh-count reduction because of
the overheads.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.engine import Experiment, SimJob, sweep_jobs
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.osmodel.scenarios import PAPER_SCENARIOS

SCENARIO_ORDER = ("100%", "88%", "70%", "28%")
PAPER_AVG_REDUCTION = {"100%": 0.365, "88%": 0.44, "70%": 0.55, "28%": 0.82}


def plan(settings: ExperimentSettings) -> List[SimJob]:
    jobs = []
    for label in SCENARIO_ORDER:
        jobs.extend(sweep_jobs(
            settings,
            allocated_fraction=PAPER_SCENARIOS[label].allocated_fraction,
        ))
    return jobs


def reduce(settings: ExperimentSettings, results: list) -> ExperimentResult:
    it = iter(results)
    per_scenario = {
        label: {name: next(it) for name in settings.benchmarks}
        for label in SCENARIO_ORDER
    }
    rows = []
    for name in settings.benchmarks:
        rows.append(
            [name] + [per_scenario[s][name].normalized_energy
                      for s in SCENARIO_ORDER]
        )
    averages = [
        float(np.mean([per_scenario[s][b].normalized_energy
                       for b in settings.benchmarks]))
        for s in SCENARIO_ORDER
    ]
    rows.append(["average"] + averages)
    rows.append(["paper avg"] + [1.0 - PAPER_AVG_REDUCTION[s]
                                 for s in SCENARIO_ORDER])
    return ExperimentResult(
        experiment_id="fig15",
        title="Normalized refresh energy incl. ZERO-REFRESH overheads",
        headers=["benchmark"] + list(SCENARIO_ORDER),
        rows=rows,
        paper_reference={f"avg@{s}": 1.0 - PAPER_AVG_REDUCTION[s]
                         for s in SCENARIO_ORDER},
        notes="energy reduction trails refresh reduction slightly (overheads)",
    )


EXPERIMENT = Experiment("fig15", plan=plan, reduce=reduce)


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return EXPERIMENT(settings)
