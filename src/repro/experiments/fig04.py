"""Fig. 4 — refresh share of device power vs. density and temperature.

Reproduces the Micron-calculator analysis: DDR4-2400, 8 % read / 2 %
write cycles, densities 1-16 Gb, normal (64 ms) and extended (32 ms)
retention.  The paper's headline: at 32 ms, a 16 Gb device spends more
than half its power on refresh.
"""

from __future__ import annotations

from typing import Sequence

from repro.dram.timing import TemperatureMode
from repro.energy.dram_power import DramPowerModel
from repro.scenarios.spec import ScenarioSpec, SweepAxis

DENSITIES_GBIT = (1, 2, 4, 8, 16)

SPEC = ScenarioSpec(
    scenario_id="fig04",
    description="Refresh power share vs density and temperature",
    axes=(
        SweepAxis("params.temperature",
                  values=[TemperatureMode.NORMAL.value,
                          TemperatureMode.EXTENDED.value]),
        SweepAxis("params.density_gbit", values=list(DENSITIES_GBIT)),
    ),
    point="repro.experiments.fig04:power_point",
    reduction="concat_rows",
    reduction_params={
        "title": "Refresh power share vs. device density "
                 "(Micron-style model)",
        "headers": ["temperature", "density", "refresh mW", "total mW",
                    "refresh share"],
        "paper_reference": {"16Gb@32ms refresh share": ">0.50"},
        "notes": "8% read / 2% write bus cycles, DBI-era DDR4 currents "
                 "(Table II)",
    },
)


def power_point(settings, job) -> list:
    """One (temperature, density) cell: its power-breakdown table row."""
    temperature = TemperatureMode.parse(job.params["temperature"])
    density = int(job.params["density_gbit"])
    breakdown = DramPowerModel().device_power(
        density, temperature,
        read_cycle_fraction=0.08, write_cycle_fraction=0.02,
    )
    return [
        temperature.value,
        f"{density} Gb",
        breakdown.refresh_mw,
        breakdown.total_mw,
        breakdown.refresh_share,
    ]


def run(settings=None, densities: Sequence[int] = DENSITIES_GBIT):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    if tuple(densities) != DENSITIES_GBIT:
        spec = replace(SPEC, axes=(
            SPEC.axes[0],
            SweepAxis("params.density_gbit",
                      values=[int(d) for d in densities]),
        ))
    return as_experiment(spec)(settings)
