"""Fig. 4 — refresh share of device power vs. density and temperature.

Reproduces the Micron-calculator analysis: DDR4-2400, 8 % read / 2 %
write cycles, densities 1-16 Gb, normal (64 ms) and extended (32 ms)
retention.  The paper's headline: at 32 ms, a 16 Gb device spends more
than half its power on refresh.
"""

from __future__ import annotations

from typing import Sequence

from repro.dram.timing import TemperatureMode
from repro.energy.dram_power import DramPowerModel
from repro.experiments.runner import ExperimentResult, ExperimentSettings

DENSITIES_GBIT = (1, 2, 4, 8, 16)


def run(settings: ExperimentSettings = ExperimentSettings(),
        densities: Sequence[int] = DENSITIES_GBIT) -> ExperimentResult:
    model = DramPowerModel()
    rows = []
    for temperature in (TemperatureMode.NORMAL, TemperatureMode.EXTENDED):
        for density in densities:
            breakdown = model.device_power(
                density, temperature,
                read_cycle_fraction=0.08, write_cycle_fraction=0.02,
            )
            rows.append([
                temperature.value,
                f"{density} Gb",
                breakdown.refresh_mw,
                breakdown.total_mw,
                breakdown.refresh_share,
            ])
    return ExperimentResult(
        experiment_id="fig04",
        title="Refresh power share vs. device density (Micron-style model)",
        headers=["temperature", "density", "refresh mW", "total mW",
                 "refresh share"],
        rows=rows,
        paper_reference={"16Gb@32ms refresh share": ">0.50"},
        notes="8% read / 2% write bus cycles, DBI-era DDR4 currents (Table II)",
    )
