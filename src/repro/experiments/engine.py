"""Parallel, cache-aware experiment execution engine.

The serial harness regenerated every figure by looping over
``REGISTRY[name](settings)``; a full sweep re-simulated the same
(benchmark, allocation, config) point dozens of times across figures
and used one core.  This module splits experiments into *planning* and
*reduction* around a fan-out middle:

``plan(settings) -> list[SimJob]``
    Pure description of the simulation points the experiment needs.
``reduce(settings, results) -> ExperimentResult``
    Aggregation of the per-job results (ordered as planned) into the
    printable table.

Between the two, :class:`Runner` executes jobs — deduplicated, cache
checked via :class:`~repro.experiments.cache.ResultCache`, and fanned
out over a ``ProcessPoolExecutor`` when ``jobs > 1``.  Jobs are fully
deterministic (seeds are explicit in the job description), so parallel
and serial execution produce identical results.

Experiments that still expose only the legacy ``run(settings)``
callable are wrapped by :class:`Experiment` with a shim: they execute
in-process as one opaque job whose *whole* :class:`ExperimentResult`
is cached.

Every executed or cache-served job appends an entry to the runner's
manifest (experiment id, settings digest, cache hit/miss, wall time,
worker id), which :mod:`repro.experiments.__main__` writes as JSONL
and summarizes at the end of a run.
"""

from __future__ import annotations

import importlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.cache import ResultCache, stable_digest
from repro.experiments.runner import ExperimentResult, ExperimentSettings

SIMULATE = "repro.experiments.runner:simulate_benchmark"
"""Default job function: one full-system benchmark simulation."""


@dataclass(frozen=True)
class SimJob:
    """One simulation point of an experiment's plan.

    The default function is :func:`~repro.experiments.runner.simulate_benchmark`
    called with ``(settings, benchmark, allocated_fraction,
    config_overrides, seed_offset)``.  Experiments whose inner loop is
    not a plain benchmark simulation point ``fn`` at any importable
    ``"module:attr"`` callable with signature ``fn(settings, job)``;
    ``params`` carries its extra arguments.  Everything in a job must
    be picklable and canonicalizable — it crosses process boundaries
    and feeds the cache key.
    """

    benchmark: str = ""
    allocated_fraction: float = 1.0
    config_overrides: Optional[Dict[str, object]] = None
    seed_offset: int = 0
    fn: str = SIMULATE
    params: Optional[Dict[str, object]] = None


def resolve_job_fn(spec: str) -> Callable:
    """Import the ``"module:attr"`` callable a job names."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"job fn must be 'module:attr', got {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_job(settings: ExperimentSettings, job: SimJob):
    """Run one job to completion in the current process."""
    fn = resolve_job_fn(job.fn)
    if job.fn == SIMULATE:
        return fn(
            settings,
            job.benchmark,
            job.allocated_fraction,
            job.config_overrides,
            job.seed_offset,
        )
    return fn(settings, job)


def _timed_execute(settings: ExperimentSettings, job: SimJob):
    """Worker entry point: result plus wall time and worker id."""
    start = time.perf_counter()
    result = execute_job(settings, job)
    return result, time.perf_counter() - start, os.getpid()


class Experiment:
    """A registered experiment: ``plan``/``reduce`` or a legacy ``run``.

    Calling the experiment directly (``REGISTRY[name](settings)``) runs
    it serially with no cache — exactly the pre-engine behaviour — so
    existing callers and tests are untouched.  The engine-aware paths
    (:mod:`repro.api`, the CLI) construct a :class:`Runner` instead.
    """

    def __init__(
        self,
        experiment_id: str,
        *,
        plan: Optional[Callable[[ExperimentSettings], List[SimJob]]] = None,
        reduce: Optional[Callable[[ExperimentSettings, list], ExperimentResult]] = None,
        run: Optional[Callable[[ExperimentSettings], ExperimentResult]] = None,
    ):
        if run is None and (plan is None or reduce is None):
            raise ValueError(
                f"experiment {experiment_id!r} needs plan+reduce or a legacy run"
            )
        if run is not None and (plan is not None or reduce is not None):
            raise ValueError(
                f"experiment {experiment_id!r}: give plan+reduce or run, not both"
            )
        self.experiment_id = experiment_id
        self.plan = plan
        self.reduce = reduce
        self.legacy_run = run

    @property
    def is_legacy(self) -> bool:
        return self.legacy_run is not None

    def __call__(
        self, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentResult:
        return Runner(jobs=1, cache=None).run_experiment(self, settings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "legacy" if self.is_legacy else "plan/reduce"
        return f"Experiment({self.experiment_id!r}, {kind})"


@dataclass
class RunnerStats:
    """Aggregate counters over everything a runner executed."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sim_seconds: float = 0.0

    def merged_into_summary(self, elapsed_s: float) -> str:
        parts = [
            f"{self.jobs} jobs",
            f"{self.cache_hits} cache hits",
            f"{self.cache_misses} misses",
            f"{self.sim_seconds:.1f}s simulated",
            f"{elapsed_s:.1f}s elapsed",
        ]
        return ", ".join(parts)


class Runner:
    """Executes experiments: cache lookup, process fan-out, manifest.

    Parameters
    ----------
    jobs:
        Worker processes for plan/reduce experiments.  ``None`` means
        ``os.cpu_count()``; ``1`` runs everything in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.manifest: List[dict] = []
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def run_experiment(
        self, experiment: Experiment, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentResult:
        if settings is None:
            settings = ExperimentSettings()
        if experiment.is_legacy:
            return self._run_legacy(experiment, settings)
        jobs = experiment.plan(settings)
        results = self.run_jobs(experiment.experiment_id, settings, jobs)
        return experiment.reduce(settings, results)

    # ------------------------------------------------------------------
    def run_jobs(
        self,
        experiment_id: str,
        settings: ExperimentSettings,
        jobs: Sequence[SimJob],
    ) -> list:
        """Execute ``jobs``, returning results in plan order.

        Identical jobs are computed once; cached results are served
        without touching a worker.
        """
        keys = [
            self.cache.job_key(settings, job) if self.cache else stable_digest(job)
            for job in jobs
        ]
        results: Dict[str, object] = {}
        hit_keys = set()
        pending: Dict[str, SimJob] = {}
        for job, key in zip(jobs, keys):
            if key in results or key in pending:
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                results[key] = cached
                hit_keys.add(key)
            else:
                pending[key] = job

        timings = self._execute_pending(settings, pending, results)

        settings_digest = stable_digest(settings)
        for index, (job, key) in enumerate(zip(jobs, keys)):
            hit = key in hit_keys
            wall_s, worker = timings.get(key, (0.0, None))
            self._record(
                experiment_id=experiment_id,
                job_index=index,
                fn=job.fn,
                benchmark=job.benchmark,
                allocated_fraction=job.allocated_fraction,
                digest=key,
                settings_digest=settings_digest,
                cache_hit=hit,
                wall_s=0.0 if hit else wall_s,
                worker=worker,
            )
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _execute_pending(
        self,
        settings: ExperimentSettings,
        pending: Dict[str, SimJob],
        results: Dict[str, object],
    ) -> Dict[str, tuple]:
        """Run the cache misses, serially or over a process pool."""
        timings: Dict[str, tuple] = {}
        if not pending:
            return timings
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_timed_execute, settings, job): key
                    for key, job in pending.items()
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        key = futures[future]
                        result, wall_s, worker = future.result()
                        self._complete(key, result, wall_s, worker, results, timings)
        else:
            for key, job in pending.items():
                result, wall_s, worker = _timed_execute(settings, job)
                self._complete(key, result, wall_s, worker, results, timings)
        return timings

    def _complete(self, key, result, wall_s, worker, results, timings) -> None:
        results[key] = result
        timings[key] = (wall_s, worker)
        if self.cache:
            self.cache.put(key, result)

    # ------------------------------------------------------------------
    def _run_legacy(
        self, experiment: Experiment, settings: ExperimentSettings
    ) -> ExperimentResult:
        """The unmigrated-``run()`` shim: whole-result caching, serial."""
        key = (
            self.cache.experiment_key(experiment.experiment_id, settings)
            if self.cache
            else None
        )
        cached = self.cache.get(key) if self.cache else None
        if cached is not None:
            self._record(
                experiment_id=experiment.experiment_id,
                job_index=0,
                fn="legacy:run",
                benchmark="",
                allocated_fraction=1.0,
                digest=key,
                settings_digest=stable_digest(settings),
                cache_hit=True,
                wall_s=0.0,
                worker=None,
            )
            return cached
        start = time.perf_counter()
        result = experiment.legacy_run(settings)
        wall_s = time.perf_counter() - start
        if self.cache:
            self.cache.put(key, result)
        self._record(
            experiment_id=experiment.experiment_id,
            job_index=0,
            fn="legacy:run",
            benchmark="",
            allocated_fraction=1.0,
            digest=key or "",
            settings_digest=stable_digest(settings),
            cache_hit=False,
            wall_s=wall_s,
            worker=os.getpid(),
        )
        return result

    # ------------------------------------------------------------------
    def _record(self, *, cache_hit: bool, wall_s: float, **entry) -> None:
        self.manifest.append(dict(entry, cache_hit=cache_hit, wall_s=round(wall_s, 4)))
        self.stats.jobs += 1
        if cache_hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            self.stats.sim_seconds += wall_s

    def write_manifest(self, path) -> None:
        """Append the collected manifest entries to ``path`` as JSONL."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for entry in self.manifest:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def summary(self, elapsed_s: float) -> str:
        return self.stats.merged_into_summary(elapsed_s)


def sweep_jobs(
    settings: ExperimentSettings,
    allocated_fraction: float = 1.0,
    config_overrides: Optional[Dict[str, object]] = None,
) -> List[SimJob]:
    """Jobs equivalent to one :func:`~repro.experiments.runner.sweep_benchmarks`
    call: one per benchmark, ``seed_offset`` equal to its suite index,
    so migrated experiments reproduce the serial harness bit for bit.
    """
    return [
        SimJob(
            benchmark=name,
            allocated_fraction=allocated_fraction,
            config_overrides=config_overrides,
            seed_offset=i,
        )
        for i, name in enumerate(settings.benchmarks)
    ]
