"""Parallel, cache-aware experiment execution engine.

The serial harness regenerated every figure by looping over
``REGISTRY[name](settings)``; a full sweep re-simulated the same
(benchmark, allocation, config) point dozens of times across figures
and used one core.  This module splits experiments into *planning* and
*reduction* around a fan-out middle:

``plan(settings) -> list[SimJob]``
    Pure description of the simulation points the experiment needs.
``reduce(settings, results) -> ExperimentResult``
    Aggregation of the per-job results (ordered as planned) into the
    printable table.

Between the two, :class:`Runner` executes jobs — deduplicated, cache
checked via :class:`~repro.experiments.cache.ResultCache`, and fanned
out over a ``ProcessPoolExecutor`` when ``jobs > 1``.  Jobs are fully
deterministic (seeds are explicit in the job description), so parallel
and serial execution produce identical results.

Experiments that still expose only the legacy ``run(settings)``
callable are wrapped by :class:`Experiment` with a shim: they execute
in-process as one opaque job whose *whole* :class:`ExperimentResult`
is cached.

Every executed or cache-served job appends an entry to the runner's
manifest (experiment id, settings digest, cache hit/miss, wall time,
worker id), which :mod:`repro.experiments.__main__` writes as JSONL
and summarizes at the end of a run.

**Metrics pipeline.**  Every job — in-process or in a pool worker —
runs under its own probe bus (forked from the ambient bus when one is
installed, so ``--trace`` events still stream live).  The job's
:meth:`~repro.obs.ProbeBus.snapshot` ships back alongside its result,
is stored with it in the cache, and is folded into the runner's
``merged_metrics`` in **plan order**, deduplicated by job digest.
Plan-order merging makes the manifest independent of fan-out: a
``jobs=4`` run merges to exactly the ``jobs=1`` numbers, and cache hits
replay the stored snapshot so warm runs report the same simulation
counters as cold ones.  ``Runner(watchdog=True)`` additionally installs
a per-job :class:`~repro.obs.invariants.InvariantWatchdog` whose
findings ride along in the snapshot's ``invariants`` section.
"""

from __future__ import annotations

import importlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.cache import ResultCache, stable_digest
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.obs import (
    ProbeBus,
    empty_snapshot,
    get_probes,
    merge_snapshots,
    use_probes,
)
from repro.obs.invariants import InvariantWatchdog, use_watchdog

SIMULATE = "repro.experiments.runner:simulate_benchmark"
"""Default job function: one full-system benchmark simulation."""


@dataclass(frozen=True)
class SimJob:
    """One simulation point of an experiment's plan.

    The default function is :func:`~repro.experiments.runner.simulate_benchmark`
    called with ``(settings, benchmark, allocated_fraction,
    config_overrides, seed_offset)``.  Experiments whose inner loop is
    not a plain benchmark simulation point ``fn`` at any importable
    ``"module:attr"`` callable with signature ``fn(settings, job)``;
    ``params`` carries its extra arguments.  Everything in a job must
    be picklable and canonicalizable — it crosses process boundaries
    and feeds the cache key.
    """

    benchmark: str = ""
    allocated_fraction: float = 1.0
    config_overrides: Optional[Dict[str, object]] = None
    seed_offset: int = 0
    fn: str = SIMULATE
    params: Optional[Dict[str, object]] = None


def resolve_job_fn(spec: str) -> Callable:
    """Import the ``"module:attr"`` callable a job names."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"job fn must be 'module:attr', got {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_job(settings: ExperimentSettings, job: SimJob):
    """Run one job to completion in the current process."""
    fn = resolve_job_fn(job.fn)
    if job.fn == SIMULATE:
        return fn(
            settings,
            job.benchmark,
            job.allocated_fraction,
            job.config_overrides,
            job.seed_offset,
        )
    return fn(settings, job)


def _captured_call(fn: Callable[[], object], watchdog: bool = False):
    """Run ``fn`` under a scoped probe bus; return ``(result, snapshot)``.

    With an ambient bus installed the scoped bus is a fork of it, so
    trace events still stream to the live sink while counters,
    histograms, gauges and phase times accumulate separately for the
    per-job snapshot.  In pool workers (no ambient bus) a fresh bus
    captures the same metrics, which is what makes fan-out transparent
    to the metrics manifest.  ``watchdog=True`` also installs a fresh
    :class:`InvariantWatchdog` and attaches its findings to the
    snapshot.
    """
    ambient = get_probes()
    bus = ambient.fork() if ambient.enabled else ProbeBus()
    watch_ctx = use_watchdog(InvariantWatchdog()) if watchdog else nullcontext()
    with watch_ctx as wd, use_probes(bus):
        result = fn()
    snapshot = bus.snapshot()
    if wd is not None:
        snapshot["invariants"] = wd.snapshot()
    return result, snapshot


def _timed_execute(settings: ExperimentSettings, job: SimJob,
                   watchdog: bool = False):
    """Worker entry point: result, metrics snapshot, wall time, pid."""
    start = time.perf_counter()
    result, snapshot = _captured_call(
        lambda: execute_job(settings, job), watchdog
    )
    return result, snapshot, time.perf_counter() - start, os.getpid()


def _pack_cached(result, snapshot) -> dict:
    """The cache payload: result plus its captured metrics snapshot."""
    return {"result": result, "metrics": snapshot}


def _unpack_cached(payload):
    """Split a cache payload into ``(result, snapshot-or-None)``."""
    if isinstance(payload, dict) and set(payload) == {"result", "metrics"}:
        return payload["result"], payload["metrics"]
    return payload, None


class Experiment:
    """A registered experiment: ``plan``/``reduce`` or a legacy ``run``.

    Calling the experiment directly (``REGISTRY[name](settings)``) runs
    it serially with no cache — exactly the pre-engine behaviour — so
    existing callers and tests are untouched.  The engine-aware paths
    (:mod:`repro.api`, the CLI) construct a :class:`Runner` instead.
    """

    def __init__(
        self,
        experiment_id: str,
        *,
        plan: Optional[Callable[[ExperimentSettings], List[SimJob]]] = None,
        reduce: Optional[Callable[[ExperimentSettings, list], ExperimentResult]] = None,
        run: Optional[Callable[[ExperimentSettings], ExperimentResult]] = None,
    ):
        if run is None and (plan is None or reduce is None):
            raise ValueError(
                f"experiment {experiment_id!r} needs plan+reduce or a legacy run"
            )
        if run is not None and (plan is not None or reduce is not None):
            raise ValueError(
                f"experiment {experiment_id!r}: give plan+reduce or run, not both"
            )
        self.experiment_id = experiment_id
        self.plan = plan
        self.reduce = reduce
        self.legacy_run = run

    @property
    def is_legacy(self) -> bool:
        return self.legacy_run is not None

    def __call__(
        self, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentResult:
        return Runner(jobs=1, cache=None).run_experiment(self, settings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "legacy" if self.is_legacy else "plan/reduce"
        return f"Experiment({self.experiment_id!r}, {kind})"


@dataclass
class RunnerStats:
    """Aggregate counters over everything a runner executed."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sim_seconds: float = 0.0

    def merged_into_summary(self, elapsed_s: float) -> str:
        parts = [
            f"{self.jobs} jobs",
            f"{self.cache_hits} cache hits",
            f"{self.cache_misses} misses",
            f"{self.sim_seconds:.1f}s simulated",
            f"{elapsed_s:.1f}s elapsed",
        ]
        return ", ".join(parts)


class Runner:
    """Executes experiments: cache lookup, process fan-out, manifest.

    Parameters
    ----------
    jobs:
        Worker processes for plan/reduce experiments.  ``None`` means
        ``os.cpu_count()``; ``1`` runs everything in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    watchdog:
        When true, every job runs under its own
        :class:`~repro.obs.invariants.InvariantWatchdog`; check and
        violation totals land in the merged metrics manifest.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        watchdog: bool = False,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.watchdog = watchdog
        self.manifest: List[dict] = []
        self.stats = RunnerStats()
        self.merged_metrics: dict = empty_snapshot()
        self.metrics_entries: List[dict] = []
        self._metric_keys: set = set()

    # ------------------------------------------------------------------
    def run_experiment(
        self, experiment: Experiment, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentResult:
        if settings is None:
            settings = ExperimentSettings()
        if experiment.is_legacy:
            return self._run_legacy(experiment, settings)
        jobs = experiment.plan(settings)
        results = self.run_jobs(experiment.experiment_id, settings, jobs)
        return experiment.reduce(settings, results)

    # ------------------------------------------------------------------
    def run_jobs(
        self,
        experiment_id: str,
        settings: ExperimentSettings,
        jobs: Sequence[SimJob],
    ) -> list:
        """Execute ``jobs``, returning results in plan order.

        Identical jobs are computed once; cached results are served
        without touching a worker.
        """
        keys = [
            self.cache.job_key(settings, job) if self.cache else stable_digest(job)
            for job in jobs
        ]
        results: Dict[str, object] = {}
        metrics: Dict[str, Optional[dict]] = {}
        hit_keys = set()
        pending: Dict[str, SimJob] = {}
        ambient = get_probes()
        for job, key in zip(jobs, keys):
            if key in results or key in pending:
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                result, snapshot = _unpack_cached(cached)
                results[key] = result
                metrics[key] = snapshot
                hit_keys.add(key)
                # cache hits replay their stored metrics, so a warm run
                # reports the same simulation counters as a cold one
                if ambient.enabled and snapshot:
                    ambient.merge_snapshot(snapshot)
            else:
                pending[key] = job

        timings = self._execute_pending(settings, pending, results, metrics)
        self._merge_metrics(keys, metrics)

        settings_digest = stable_digest(settings)
        for index, (job, key) in enumerate(zip(jobs, keys)):
            hit = key in hit_keys
            wall_s, worker = timings.get(key, (0.0, None))
            self._record(
                experiment_id=experiment_id,
                job_index=index,
                fn=job.fn,
                benchmark=job.benchmark,
                allocated_fraction=job.allocated_fraction,
                digest=key,
                settings_digest=settings_digest,
                cache_hit=hit,
                wall_s=0.0 if hit else wall_s,
                worker=worker,
            )
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _execute_pending(
        self,
        settings: ExperimentSettings,
        pending: Dict[str, SimJob],
        results: Dict[str, object],
        metrics: Dict[str, Optional[dict]],
    ) -> Dict[str, tuple]:
        """Run the cache misses, serially or over a process pool."""
        timings: Dict[str, tuple] = {}
        if not pending:
            return timings
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_timed_execute, settings, job, self.watchdog): key
                    for key, job in pending.items()
                }
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        key = futures[future]
                        result, snapshot, wall_s, worker = future.result()
                        self._complete(key, result, snapshot, wall_s, worker,
                                       results, metrics, timings)
        else:
            for key, job in pending.items():
                result, snapshot, wall_s, worker = _timed_execute(
                    settings, job, self.watchdog
                )
                self._complete(key, result, snapshot, wall_s, worker,
                               results, metrics, timings)
        return timings

    def _complete(self, key, result, snapshot, wall_s, worker,
                  results, metrics, timings) -> None:
        results[key] = result
        metrics[key] = snapshot
        timings[key] = (wall_s, worker)
        if self.cache:
            self.cache.put(key, _pack_cached(result, snapshot))
        # freshly executed jobs fold into the ambient bus so --profile
        # and --trace runs see their counters and phase times live
        ambient = get_probes()
        if ambient.enabled and snapshot:
            ambient.merge_snapshot(snapshot, include_phases=True)

    def _merge_metrics(self, keys: Sequence[str],
                       metrics: Dict[str, Optional[dict]]) -> None:
        """Fold per-job snapshots into the run-level manifest.

        Merging happens in **plan order** and each job digest is merged
        once per runner lifetime, so the merged numbers do not depend on
        completion order, fan-out, or how many figures shared a job.
        """
        for key in keys:
            if key in self._metric_keys:
                continue
            self._metric_keys.add(key)
            snapshot = metrics.get(key)
            if snapshot:
                self.merged_metrics = merge_snapshots(
                    self.merged_metrics, snapshot
                )
                self.metrics_entries.append(
                    {"digest": key, "metrics": snapshot}
                )

    # ------------------------------------------------------------------
    def _run_legacy(
        self, experiment: Experiment, settings: ExperimentSettings
    ) -> ExperimentResult:
        """The unmigrated-``run()`` shim: whole-result caching, serial."""
        key = (
            self.cache.experiment_key(experiment.experiment_id, settings)
            if self.cache
            else None
        )
        cached = self.cache.get(key) if self.cache else None
        if cached is not None:
            result, snapshot = _unpack_cached(cached)
            ambient = get_probes()
            if ambient.enabled and snapshot:
                ambient.merge_snapshot(snapshot)
            self._merge_metrics([key], {key: snapshot})
            self._record(
                experiment_id=experiment.experiment_id,
                job_index=0,
                fn="legacy:run",
                benchmark="",
                allocated_fraction=1.0,
                digest=key,
                settings_digest=stable_digest(settings),
                cache_hit=True,
                wall_s=0.0,
                worker=None,
            )
            return result
        start = time.perf_counter()
        result, snapshot = _captured_call(
            lambda: experiment.legacy_run(settings), self.watchdog
        )
        wall_s = time.perf_counter() - start
        ambient = get_probes()
        if ambient.enabled and snapshot:
            ambient.merge_snapshot(snapshot, include_phases=True)
        legacy_key = key if key is not None else stable_digest(
            (experiment.experiment_id, settings)
        )
        self._merge_metrics([legacy_key], {legacy_key: snapshot})
        if self.cache:
            self.cache.put(key, _pack_cached(result, snapshot))
        self._record(
            experiment_id=experiment.experiment_id,
            job_index=0,
            fn="legacy:run",
            benchmark="",
            allocated_fraction=1.0,
            digest=key or "",
            settings_digest=stable_digest(settings),
            cache_hit=False,
            wall_s=wall_s,
            worker=os.getpid(),
        )
        return result

    # ------------------------------------------------------------------
    def _record(self, *, cache_hit: bool, wall_s: float, **entry) -> None:
        self.manifest.append(dict(entry, cache_hit=cache_hit, wall_s=round(wall_s, 4)))
        self.stats.jobs += 1
        if cache_hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            self.stats.sim_seconds += wall_s

    def metrics_manifest(self) -> dict:
        """The run-level metrics manifest.

        ``merged`` is the fold of every unique job's probe snapshot (in
        plan order — identical whatever ``jobs`` was); ``jobs`` lists
        the per-job snapshots keyed by digest, in merge order.
        """
        return {
            "merged": self.merged_metrics,
            "jobs": list(self.metrics_entries),
        }

    def write_metrics_manifest(self, path) -> None:
        """Write :meth:`metrics_manifest` to ``path`` as JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.metrics_manifest(), sort_keys=True, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def write_manifest(self, path) -> None:
        """Append the collected manifest entries to ``path`` as JSONL."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for entry in self.manifest:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def summary(self, elapsed_s: float) -> str:
        return self.stats.merged_into_summary(elapsed_s)


# ----------------------------------------------------------------------
# submittable experiment requests (the serving layer's job unit)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentRequest:
    """One self-contained, picklable experiment execution request.

    This is the unit :mod:`repro.serve` ships to a worker process: it
    names the experiment, carries the settings overrides in wire form
    (see :meth:`ExperimentSettings.from_dict`) and the cache location,
    and nothing else — so :func:`execute_request` can run it in any
    process with no shared state beyond the on-disk result cache.
    """

    experiment_id: str
    quick: bool = True
    overrides: Optional[Dict[str, object]] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    jobs: int = 1


def request_digest(request: ExperimentRequest) -> str:
    """Stable identity of a request's *outcome* (not its cache config).

    Two requests that must produce byte-identical results — same
    experiment, same settings — share a digest even if one disables
    the cache; the serving layer uses this for single-flight
    coalescing of concurrent identical submissions.
    """
    settings = ExperimentSettings.from_dict(request.overrides, request.quick)
    return stable_digest("experiment-request", request.experiment_id, settings)


def execute_request(request: ExperimentRequest) -> dict:
    """Run one :class:`ExperimentRequest` to completion, synchronously.

    Importable at module top level and driven only by its picklable
    argument, so it can be submitted to a ``ProcessPoolExecutor`` (or a
    thread executor) via ``loop.run_in_executor`` — the asyncio serving
    layer's offload path.  Returns a JSON-able payload: the rendered
    result (``result_json`` is deterministic for identical requests),
    engine cache statistics and the run's merged metrics snapshot.
    """
    from repro.experiments import REGISTRY

    experiment = REGISTRY.get(request.experiment_id)
    if experiment is None:
        raise KeyError(f"unknown experiment {request.experiment_id!r}")
    settings = ExperimentSettings.from_dict(request.overrides, request.quick)
    cache = ResultCache(request.cache_dir) if request.use_cache else None
    runner = Runner(jobs=request.jobs, cache=cache)
    start = time.perf_counter()
    result = runner.run_experiment(experiment, settings)
    return {
        "experiment_id": request.experiment_id,
        "digest": request_digest(request),
        "result_json": result.to_json(indent=2),
        "cache_hits": runner.stats.cache_hits,
        "cache_misses": runner.stats.cache_misses,
        "wall_s": round(time.perf_counter() - start, 4),
        "metrics": runner.merged_metrics,
    }


def sweep_jobs(
    settings: ExperimentSettings,
    allocated_fraction: float = 1.0,
    config_overrides: Optional[Dict[str, object]] = None,
) -> List[SimJob]:
    """Jobs equivalent to one :func:`~repro.experiments.runner.sweep_benchmarks`
    call: one per benchmark, ``seed_offset`` equal to its suite index,
    so migrated experiments reproduce the serial harness bit for bit.
    """
    return [
        SimJob(
            benchmark=name,
            allocated_fraction=allocated_fraction,
            config_overrides=config_overrides,
            seed_offset=i,
        )
        for i, name in enumerate(settings.benchmarks)
    ]
