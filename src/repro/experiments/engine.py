"""Parallel, cache-aware, fault-tolerant experiment execution engine.

The serial harness regenerated every figure by looping over
``REGISTRY[name](settings)``; a full sweep re-simulated the same
(benchmark, allocation, config) point dozens of times across figures
and used one core.  This module splits experiments into *planning* and
*reduction* around a fan-out middle:

``plan(settings) -> list[SimJob]``
    Pure description of the simulation points the experiment needs.
``reduce(settings, results) -> ExperimentResult``
    Aggregation of the per-job results (ordered as planned) into the
    printable table.

Between the two, :class:`Runner` executes jobs — deduplicated, cache
checked via :class:`~repro.experiments.cache.ResultCache`, and fanned
out over a ``ProcessPoolExecutor`` when ``jobs > 1``.  Jobs are fully
deterministic (seeds are explicit in the job description), so parallel
and serial execution produce identical results.

Experiments that still expose only the legacy ``run(settings)``
callable are wrapped by :class:`Experiment` with a shim: they execute
in-process as one opaque job whose *whole* :class:`ExperimentResult`
is cached.

Every executed or cache-served job appends an entry to the runner's
manifest (experiment id, settings digest, cache hit/miss, wall time,
worker id), which :mod:`repro.experiments.__main__` writes as JSONL
and summarizes at the end of a run.

**Metrics pipeline.**  Every job — in-process or in a pool worker —
runs under its own probe bus (forked from the ambient bus when one is
installed, so ``--trace`` events still stream live).  The job's
:meth:`~repro.obs.ProbeBus.snapshot` ships back alongside its result,
is stored with it in the cache, and is folded into the runner's
``merged_metrics`` in **plan order**, deduplicated by job digest.
Plan-order merging makes the manifest independent of fan-out: a
``jobs=4`` run merges to exactly the ``jobs=1`` numbers, and cache hits
replay the stored snapshot so warm runs report the same simulation
counters as cold ones.  ``Runner(watchdog=True)`` additionally installs
a per-job :class:`~repro.obs.invariants.InvariantWatchdog` whose
findings ride along in the snapshot's ``invariants`` section.

**Run lifecycle.**  With a cache attached, every ``run_experiment``
writes a per-run journal (:mod:`repro.experiments.journal`): a plan
digest plus one line per completed job.  ``run_experiment(resume=...)``
replays journaled-done jobs from the cache (counted as
``engine.journal_replays`` on the bus) and executes only the rest —
which is what makes a run killed 90% through a sweep cheap to finish.
Failures are bounded rather than fatal: a job exception retries with
exponential backoff up to :class:`RetryPolicy.max_attempts`; a job that
keeps breaking its worker process (``BrokenProcessPool``) is re-run
alone and quarantined after ``max_worker_crashes`` incidents; per-job
timeouts recycle the stuck pool.  Quarantined jobs become
:class:`JobFailure` records and the run returns a partial-failure
:class:`ExperimentResult` carrying the resume token — the rest of the
plan still completes and is journaled.  Deterministic chaos tests
script all of this through a
:class:`~repro.experiments.faults.FaultPlan`.
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments import faults as faults_mod
from repro.experiments import journal as journal_mod
from repro.experiments.backends import (
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.cache import ResultCache, stable_digest
from repro.experiments.faults import FaultPlan
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.experiments.worker import captured_call
from repro.obs import empty_snapshot, get_probes, merge_snapshots
from repro.obs.probes import JsonlTraceSink
from repro.obs.spans import (
    SpanContext,
    SpanTracer,
    root_context,
    span_path,
    trace_id_for_run,
)
from repro.store import locks as store_locks

SIMULATE = "repro.experiments.runner:simulate_benchmark"
"""Default job function: one full-system benchmark simulation."""


@dataclass(frozen=True)
class SimJob:
    """One simulation point of an experiment's plan.

    The default function is :func:`~repro.experiments.runner.simulate_benchmark`
    called with ``(settings, benchmark, allocated_fraction,
    config_overrides, seed_offset)``.  Experiments whose inner loop is
    not a plain benchmark simulation point ``fn`` at any importable
    ``"module:attr"`` callable with signature ``fn(settings, job)``;
    ``params`` carries its extra arguments.  Everything in a job must
    be picklable and canonicalizable — it crosses process boundaries
    and feeds the cache key.
    """

    benchmark: str = ""
    allocated_fraction: float = 1.0
    config_overrides: Optional[Dict[str, object]] = None
    seed_offset: int = 0
    fn: str = SIMULATE
    params: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runner fights for each job before giving up.

    ``max_attempts`` bounds ordinary job exceptions (and timeouts);
    ``max_worker_crashes`` bounds how often a job may take its worker
    process down with it before being quarantined as poison.  Backoff
    between retries is exponential: ``backoff_base_s * factor**(n-1)``
    capped at ``backoff_max_s``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    max_worker_crashes: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.max_worker_crashes < 1:
            raise ValueError("max_worker_crashes must be >= 1")

    def backoff_s(self, failure_count: int) -> float:
        """Delay before the retry that follows failure ``failure_count``."""
        exponent = max(0, failure_count - 1)
        return min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** exponent)


@dataclass(frozen=True)
class JobFailure:
    """One quarantined job in a partial-failure report."""

    digest: str
    job_index: int
    benchmark: str
    error: str
    attempts: int
    worker_crashes: int = 0


def resolve_job_fn(spec: str) -> Callable:
    """Import the ``"module:attr"`` callable a job names."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"job fn must be 'module:attr', got {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_job(settings: ExperimentSettings, job: SimJob):
    """Run one job to completion in the current process."""
    fn = resolve_job_fn(job.fn)
    if job.fn == SIMULATE:
        return fn(
            settings,
            job.benchmark,
            job.allocated_fraction,
            job.config_overrides,
            job.seed_offset,
        )
    return fn(settings, job)


def _pack_cached(result, snapshot) -> dict:
    """The cache payload: result plus its captured metrics snapshot."""
    return {"result": result, "metrics": snapshot}


def _unpack_cached(payload):
    """Split a cache payload into ``(result, snapshot-or-None)``."""
    if isinstance(payload, dict) and set(payload) == {"result", "metrics"}:
        return payload["result"], payload["metrics"]
    return payload, None


class Experiment:
    """A registered experiment: ``plan``/``reduce`` or a legacy ``run``.

    Calling the experiment directly (``REGISTRY[name](settings)``) runs
    it serially with no cache — exactly the pre-engine behaviour — so
    existing callers and tests are untouched.  The engine-aware paths
    (:mod:`repro.api`, the CLI) construct a :class:`Runner` instead.
    """

    def __init__(
        self,
        experiment_id: str,
        *,
        plan: Optional[Callable[[ExperimentSettings], List[SimJob]]] = None,
        reduce: Optional[Callable[[ExperimentSettings, list], ExperimentResult]] = None,
        run: Optional[Callable[[ExperimentSettings], ExperimentResult]] = None,
    ):
        if run is None and (plan is None or reduce is None):
            raise ValueError(
                f"experiment {experiment_id!r} needs plan+reduce or a legacy run"
            )
        if run is not None and (plan is not None or reduce is not None):
            raise ValueError(
                f"experiment {experiment_id!r}: give plan+reduce or run, not both"
            )
        self.experiment_id = experiment_id
        self.plan = plan
        self.reduce = reduce
        self.legacy_run = run

    @property
    def is_legacy(self) -> bool:
        return self.legacy_run is not None

    def __call__(
        self, settings: Optional[ExperimentSettings] = None
    ) -> ExperimentResult:
        return Runner(jobs=1, cache=None).run_experiment(self, settings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "legacy" if self.is_legacy else "plan/reduce"
        return f"Experiment({self.experiment_id!r}, {kind})"


@dataclass
class RunnerStats:
    """Aggregate counters over everything a runner executed."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sim_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    quarantined: int = 0
    journal_replays: int = 0
    journal_resumes: int = 0
    faults_injected: int = 0

    def merged_into_summary(self, elapsed_s: float) -> str:
        parts = [
            f"{self.jobs} jobs",
            f"{self.cache_hits} cache hits",
            f"{self.cache_misses} misses",
            f"{self.sim_seconds:.1f}s simulated",
            f"{elapsed_s:.1f}s elapsed",
        ]
        for label, value in (
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("worker crashes", self.worker_crashes),
            ("quarantined", self.quarantined),
            ("journal replays", self.journal_replays),
        ):
            if value:
                parts.append(f"{value} {label}")
        return ", ".join(parts)


class Runner:
    """Executes experiments: cache lookup, process fan-out, manifest.

    Parameters
    ----------
    jobs:
        Worker processes for plan/reduce experiments.  ``None`` means
        ``os.cpu_count()``; ``1`` runs everything in-process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching (which
        also disables journaling — the journal lives under the cache
        root and promises only cache-backed replays).
    watchdog:
        When true, every job runs under its own
        :class:`~repro.obs.invariants.InvariantWatchdog`; check and
        violation totals land in the merged metrics manifest.
    timeout_s:
        Per-job wall-clock budget in pool mode; a job over budget
        counts as a failed attempt and its stuck pool is recycled.
    retry:
        The :class:`RetryPolicy` (default: 3 attempts, 2 worker
        crashes, exponential backoff).
    faults:
        A :class:`~repro.experiments.faults.FaultPlan` for
        deterministic chaos testing; ``None`` in production.
    journal:
        Set ``False`` to suppress the per-run journal even with a
        cache attached.
    span_flush_every:
        Flush the on-disk span store after every N records so spans
        survive a crash (``None`` buffers until close; the chaos
        driver and kill→resume tests arm ``1``).
    backend:
        An :class:`~repro.experiments.backends.ExecutionBackend` name
        (``"serial"`` | ``"pool"`` | ``"cluster"``) or instance.
        ``None`` (the default) picks serial or pool per pending batch
        from ``jobs`` — the historical behaviour.  Long-lived backends
        (cluster workers, sockets) are released by :meth:`close`.
    clock / sleep:
        Injectable time sources for the retry/backoff machinery
        (tests pass fakes; production uses ``time.monotonic`` /
        ``time.sleep``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        watchdog: bool = False,
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        journal: bool = True,
        span_flush_every: Optional[int] = None,
        backend=None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.watchdog = watchdog
        self.backend = resolve_backend(backend)
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults if faults else None
        self.journal_enabled = journal
        self.span_flush_every = span_flush_every
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self.manifest: List[dict] = []
        self.stats = RunnerStats()
        self.merged_metrics: dict = empty_snapshot()
        self.metrics_entries: List[dict] = []
        self.failures: List[JobFailure] = []
        self.last_run_id: Optional[str] = None
        self.last_trace_id: Optional[str] = None
        self.tracer: Optional[SpanTracer] = None
        self.span_records: List[dict] = []
        self.run_records: List[dict] = []
        self._metric_keys: set = set()
        self._journal: Optional[journal_mod.RunJournal] = None
        self._run_lock = None
        self._resume_keys: Set[str] = set()
        self._job_index: Dict[str, int] = {}
        self._tries: Dict[str, int] = {}
        self._failcount: Dict[str, int] = {}
        self._crashes: Dict[str, int] = {}
        self._span_root: Optional[SpanContext] = None
        self._span_ctx: Dict[str, SpanContext] = {}
        self._job_t0: Dict[str, float] = {}
        self._attempt_t0: Dict[str, float] = {}
        self._stats_mark: dict = {}
        self._runner_faults_applied: set = set()

    # ------------------------------------------------------------------
    def run_experiment(
        self,
        experiment: Experiment,
        settings: Optional[ExperimentSettings] = None,
        *,
        run_id: Optional[str] = None,
        resume: Optional[str] = None,
    ) -> ExperimentResult:
        """Run one experiment; journal progress; survive job failures.

        ``resume`` names a previous run's journal: its completed jobs
        replay from the cache and only the remainder executes.
        ``run_id`` overrides the journal's (otherwise deterministic)
        name for this run.  When jobs were quarantined the returned
        result is a partial-failure report instead of the experiment's
        reduction; completed work is cached and journaled either way.
        """
        if settings is None:
            settings = ExperimentSettings()
        failures_before = len(self.failures)
        t_run0 = time.time()
        if experiment.is_legacy:
            key = (
                self.cache.experiment_key(experiment.experiment_id, settings)
                if self.cache
                else stable_digest((experiment.experiment_id, settings))
            )
            self._open_journal(experiment.experiment_id, settings, [key],
                               run_id, resume)
            try:
                return self._run_legacy(experiment, settings, key)
            finally:
                self._finish_run(experiment.experiment_id, 1,
                                 failures_before, t_run0)
        t_plan0 = time.time()
        plan = experiment.plan(settings)
        keys = self._plan_keys(settings, plan)
        t_plan1 = time.time()
        self._open_journal(experiment.experiment_id, settings, keys,
                           run_id, resume)
        # the plan ran before the trace existed (planning feeds the run
        # id); fabricate its span now so /v1/runs sees the plan size
        self.tracer.record_span(
            "plan", parent=self._span_root, qualifier="",
            t0=t_plan0, dur_s=t_plan1 - t_plan0, planned=len(plan))
        try:
            results = self.run_jobs(
                experiment.experiment_id, settings, plan, keys=keys
            )
            failures = self.failures[failures_before:]
            if failures:
                return self._partial_failure_result(
                    experiment.experiment_id, len(plan), failures
                )
            t_reduce0 = time.time()
            result = experiment.reduce(settings, results)
            self.tracer.record_span(
                "reduce", parent=self._span_root, qualifier="",
                t0=t_reduce0, dur_s=time.time() - t_reduce0)
            return result
        finally:
            self._finish_run(experiment.experiment_id, len(plan),
                             failures_before, t_run0)

    # ------------------------------------------------------------------
    # journal lifecycle
    # ------------------------------------------------------------------
    def _plan_keys(self, settings: ExperimentSettings,
                   jobs: Sequence[SimJob]) -> List[str]:
        return [
            self.cache.job_key(settings, job) if self.cache
            else stable_digest(job)
            for job in jobs
        ]

    def _open_journal(self, experiment_id: str, settings: ExperimentSettings,
                      keys: Sequence[str], run_id: Optional[str],
                      resume: Optional[str]) -> None:
        self._journal = None
        self._resume_keys = set()
        self.last_run_id = None
        rid = resume or run_id or journal_mod.default_run_id(
            experiment_id, settings
        )
        if self.cache is None or not self.journal_enabled:
            # no cache → no on-disk stores, but the trace still exists
            # in memory (--trace-chrome without a cache, direct calls)
            self._mint_trace(rid)
            return
        plan_digest = stable_digest("plan", list(keys))
        settings_digest = stable_digest(settings)
        ambient = get_probes()
        prior = None
        if resume is not None:
            prior = journal_mod.load_state(self.cache.root, resume)
            if prior is None:
                ambient.count("engine.journal_missing")
            else:
                if prior.truncated:
                    ambient.count("engine.journal_corrupt")
                if prior.plan_digest != plan_digest:
                    # a journal for a different plan (code or settings
                    # changed underneath the token): start clean
                    ambient.count("engine.journal_stale")
                    prior = None
                else:
                    self._resume_keys = set(prior.done)
                    self.stats.journal_resumes += 1
                    ambient.count("engine.journal_resumes")
        # claim the run id under an advisory lock: a concurrent run
        # sharing this cache dir holding `rid` pushes us to `rid.2`,
        # `rid.3`, ... so two processes can never interleave a journal
        rid, self._run_lock, conflicts = store_locks.acquire_run_id(
            self.cache.root, rid
        )
        if conflicts:
            ambient.count("store.run_id_conflicts", conflicts)
            # the journal under the original id belongs to the live run
            # that beat us to it — start fresh under the suffixed id.
            # `_resume_keys` survives: the prior run's done-set still
            # names valid cache entries, so replays stay replays (they
            # are re-recorded in *our* journal as they hit).
            prior = None
        self._journal = journal_mod.RunJournal.start(
            self.cache.root, rid, experiment_id=experiment_id,
            plan_digest=plan_digest, settings_digest=settings_digest,
            prior=prior,
        )
        self.last_run_id = rid
        # span store mirrors the journal: truncate on a fresh run,
        # append when resuming (the trace id is the same either way,
        # so dedup-by-span-id folds both runs into one tree)
        sink = JsonlTraceSink(
            span_path(self.cache.root, rid),
            flush_every=self.span_flush_every, append=prior is not None,
            checksum=True,
        )
        self._mint_trace(rid, sink=sink)

    def _close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._run_lock is not None:
            self._run_lock.release()
            self._run_lock = None

    # ------------------------------------------------------------------
    # trace lifecycle (mirrors the journal's)
    # ------------------------------------------------------------------
    def _mint_trace(self, rid: str, sink=None) -> None:
        self._retire_tracer()
        self.tracer = SpanTracer(trace_id_for_run(rid), sink=sink)
        self.last_trace_id = self.tracer.trace_id
        self._span_root = root_context(self.tracer.trace_id)
        self._span_ctx = {}
        self._stats_mark = asdict(self.stats)

    def _retire_tracer(self) -> None:
        if self.tracer is not None:
            self.span_records.extend(self.tracer.records)
            self.tracer.close()
            self.tracer = None
            self._span_root = None

    def _finish_run(self, experiment_id: str, planned: int,
                    failures_before: int, t_run0: float) -> None:
        """Close the journal, emit the root ``run`` span, retire the
        tracer.  Runs in a ``finally`` so even a raising run leaves a
        root record (status ``failed``) behind."""
        self._close_journal()
        if self.tracer is None:
            return
        failures_delta = len(self.failures) - failures_before
        mark = self._stats_mark
        delta = {name: value - mark.get(name, 0)
                 for name, value in asdict(self.stats).items()
                 if isinstance(value, int)}
        status = ("failed" if sys.exc_info()[0] is not None
                  else "partial" if failures_delta else "ok")
        self.tracer.emit_context(
            self._span_root, t_run0, time.time() - t_run0,
            experiment_id=experiment_id, run_id=self.last_run_id,
            status=status, planned=planned,
            cache_hits=delta.get("cache_hits", 0),
            cache_misses=delta.get("cache_misses", 0),
            retries=delta.get("retries", 0),
            timeouts=delta.get("timeouts", 0),
            worker_crashes=delta.get("worker_crashes", 0),
            quarantined=delta.get("quarantined", 0),
            journal_replays=delta.get("journal_replays", 0),
        )
        self.run_records.append({
            "experiment_id": experiment_id,
            "run_id": self.last_run_id,
            "trace_id": self.tracer.trace_id,
        })
        self._retire_tracer()

    # ------------------------------------------------------------------
    def run_jobs(
        self,
        experiment_id: str,
        settings: ExperimentSettings,
        jobs: Sequence[SimJob],
        keys: Optional[Sequence[str]] = None,
    ) -> list:
        """Execute ``jobs``, returning results in plan order.

        Identical jobs are computed once; cached results are served
        without touching a worker.  Quarantined jobs yield ``None`` in
        the returned list (and a :class:`JobFailure` on ``failures``).
        """
        if keys is None:
            keys = self._plan_keys(settings, jobs)
        if self.tracer is None:
            # direct run_jobs callers (no run_experiment envelope) still
            # get a deterministic trace, in memory only
            self._mint_trace(journal_mod.default_run_id(experiment_id,
                                                        settings))
        self._job_index = {}
        for index, key in enumerate(keys):
            self._job_index.setdefault(key, index)
        self._tries = {}
        self._failcount = {}
        self._crashes = {}
        self._job_t0 = {}
        self._attempt_t0 = {}
        results: Dict[str, object] = {}
        metrics: Dict[str, Optional[dict]] = {}
        hit_keys = set()
        replayed = set()
        pending: Dict[str, SimJob] = {}
        ambient = get_probes()
        for job, key in zip(jobs, keys):
            if key in results or key in pending:
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                result, snapshot = _unpack_cached(cached)
                results[key] = result
                metrics[key] = snapshot
                hit_keys.add(key)
                if key in self._resume_keys:
                    # a journaled-done job served from cache: the whole
                    # point of resume, counted so tests can assert it
                    replayed.add(key)
                    self.stats.journal_replays += 1
                    ambient.count("engine.journal_replays")
                if self._journal is not None:
                    self._journal.record_done(key)
                # cache hits replay their stored metrics, so a warm run
                # reports the same simulation counters as a cold one
                if ambient.enabled and snapshot:
                    ambient.merge_snapshot(snapshot)
            else:
                pending[key] = job

        timings = self._execute_pending(settings, pending, results, metrics)
        self._merge_metrics(keys, metrics)

        settings_digest = stable_digest(settings)
        failed_keys = {f.digest for f in self.failures}
        for index, (job, key) in enumerate(zip(jobs, keys)):
            hit = key in hit_keys
            wall_s, worker = timings.get(key, (0.0, None))
            extra = {}
            if key in replayed:
                extra["journal_replay"] = True
            if key in failed_keys and key not in results:
                extra["failed"] = True
            self._record(
                experiment_id=experiment_id,
                job_index=index,
                fn=job.fn,
                benchmark=job.benchmark,
                allocated_fraction=job.allocated_fraction,
                digest=key,
                settings_digest=settings_digest,
                cache_hit=hit,
                wall_s=0.0 if hit else wall_s,
                worker=worker,
                **extra,
            )
        return [results.get(key) for key in keys]

    # ------------------------------------------------------------------
    # execution: every backend shares the retry bookkeeping below
    # ------------------------------------------------------------------
    def _execute_pending(
        self,
        settings: ExperimentSettings,
        pending: Dict[str, SimJob],
        results: Dict[str, object],
        metrics: Dict[str, Optional[dict]],
    ) -> Dict[str, tuple]:
        """Run the cache misses through the configured backend.

        With no explicit backend, a pending batch of more than one job
        fans out over a process pool when ``jobs > 1``; otherwise it
        runs serially in-process — the historical behaviour, now two
        named backends.
        """
        timings: Dict[str, tuple] = {}
        if not pending:
            return timings
        backend = self.backend
        if backend is None:
            backend = (PoolBackend() if self.jobs > 1 and len(pending) > 1
                       else SerialBackend())
        backend.execute(self, settings, pending, results, metrics, timings)
        return timings

    def close(self) -> None:
        """Release the backend's long-lived machinery (workers, sockets)."""
        if self.backend is not None:
            self.backend.close()
        if self._run_lock is not None:
            self._run_lock.release()
            self._run_lock = None

    # ------------------------------------------------------------------
    # retry / fault bookkeeping
    # ------------------------------------------------------------------
    def _armed_fault(self, key: str, in_process: bool):
        """Consume one try for ``key``; return its armed fault, if any."""
        tries = self._tries[key] = self._tries.get(key, 0) + 1
        if self.faults is None:
            return None
        spec = self.faults.worker_fault(self._job_index.get(key, -1), tries)
        if spec is None:
            return None
        if in_process and spec.kind == "kill":
            spec = spec.as_crash()
        self.stats.faults_injected += 1
        get_probes().count("engine.faults_injected")
        return spec

    def _attempt_args(self, key: str) -> Tuple[Optional[dict], int]:
        """Span wire + attempt number for one submission of ``key``.

        The job span context is minted on the first submission (its
        record is only *emitted* at completion/quarantine — see
        :meth:`_emit_job_span`); the attempt number is whatever
        :meth:`_armed_fault` just counted the try up to.
        """
        if self._span_root is None:
            return None, self._tries.get(key, 1)
        ctx = self._span_ctx.get(key)
        if ctx is None:
            ctx = self._span_ctx[key] = self._span_root.child(
                "job", qualifier=key)
            self._job_t0[key] = time.time()
        self._attempt_t0[key] = time.time()
        return ctx.to_wire(), self._tries.get(key, 1)

    def _record_failed_attempt(self, key: str, error: str) -> None:
        """Fabricate the attempt span a failed/crashed worker couldn't
        ship back; same deterministic id a successful attempt would
        have used, so serial and pool trees stay identical."""
        ctx = self._span_ctx.get(key)
        if ctx is None or self.tracer is None:
            return
        now = time.time()
        t0 = self._attempt_t0.get(key, now)
        self.tracer.record_span(
            "attempt", parent=ctx, qualifier=str(self._tries.get(key, 0)),
            t0=t0, dur_s=now - t0, error=error)

    def _emit_job_span(self, key: str, status: str) -> None:
        ctx = self._span_ctx.get(key)
        if ctx is None or self.tracer is None:
            return
        now = time.time()
        t0 = self._job_t0.get(key, now)
        self.tracer.emit_context(
            ctx, t0, now - t0, digest=key,
            index=self._job_index.get(key, -1), status=status,
            attempts=self._tries.get(key, 0))

    def _note_failure(self, key: str, job: SimJob, exc: BaseException):
        """Record a failed attempt; backoff seconds, or ``None`` when
        the job is out of attempts and has been quarantined."""
        ambient = get_probes()
        fails = self._failcount[key] = self._failcount.get(key, 0) + 1
        ambient.count("engine.job_failures")
        self._record_failed_attempt(key, f"{type(exc).__name__}: {exc}")
        if fails >= self.retry.max_attempts:
            self._quarantine(key, job, error=f"{type(exc).__name__}: {exc}")
            return None
        self.stats.retries += 1
        ambient.count("engine.retries")
        return self.retry.backoff_s(fails)

    def _quarantine(self, key: str, job: SimJob, error: str) -> None:
        failure = JobFailure(
            digest=key,
            job_index=self._job_index.get(key, -1),
            benchmark=job.benchmark,
            error=error,
            attempts=self._tries.get(key, 0),
            worker_crashes=self._crashes.get(key, 0),
        )
        self.failures.append(failure)
        self.stats.quarantined += 1
        get_probes().count("engine.quarantined_jobs")
        self._emit_job_span(key, status="quarantined")
        if self._journal is not None:
            self._journal.record_failed(
                key, error=error, attempts=failure.attempts,
                worker_crashes=failure.worker_crashes,
            )

    def _partial_failure_result(self, experiment_id: str, total_jobs: int,
                                failures: List[JobFailure]) -> ExperimentResult:
        rows = [
            [f.job_index, f.benchmark, f.error, f.attempts, f.worker_crashes]
            for f in sorted(failures, key=lambda f: f.job_index)
        ]
        resume_hint = (
            f"; resume with run_id {self.last_run_id!r}"
            if self.last_run_id else ""
        )
        return ExperimentResult(
            experiment_id=experiment_id,
            title="PARTIAL FAILURE: quarantined jobs",
            headers=["job", "benchmark", "error", "attempts",
                     "worker_crashes"],
            rows=rows,
            notes=(f"{len(failures)} of {total_jobs} planned jobs "
                   f"quarantined; completed jobs are cached and "
                   f"journaled{resume_hint}"),
        )

    def _apply_runner_faults(self, key: str) -> None:
        index = self._job_index.get(key, -1)
        for spec in self.faults.runner_faults(index):
            marker = (index, spec.kind)
            if marker in self._runner_faults_applied:
                continue
            self._runner_faults_applied.add(marker)
            self.stats.faults_injected += 1
            get_probes().count("engine.faults_injected")
            if spec.kind == "corrupt-cache":
                if self.cache is not None:
                    faults_mod.corrupt_cache_entry(self.cache, key)
            elif spec.kind == "bitflip-cache":
                if self.cache is not None:
                    faults_mod.bitflip_cache_entry(self.cache, key)
            elif spec.kind == "abort-run":  # pragma: no cover - kills us
                faults_mod.abort_run()

    # ------------------------------------------------------------------
    def _complete(self, key, result, snapshot, wall_s, worker,
                  results, metrics, timings, span_records=()) -> None:
        results[key] = result
        metrics[key] = snapshot
        timings[key] = (wall_s, worker)
        if self.tracer is not None and span_records:
            # the worker's attempt + kernel-phase spans, recorded under
            # the job context we shipped it
            self.tracer.add_records(span_records)
        self._emit_job_span(key, status="done")
        if self.cache:
            self.cache.put(key, _pack_cached(result, snapshot))
        if self._journal is not None:
            # cache first, then journal: a journal line is only ever a
            # promise the cache can keep
            self._journal.record_done(key)
        # freshly executed jobs fold into the ambient bus so --profile
        # and --trace runs see their counters and phase times live
        ambient = get_probes()
        if ambient.enabled and snapshot:
            ambient.merge_snapshot(snapshot, include_phases=True)
        if self.faults is not None:
            self._apply_runner_faults(key)

    def _merge_metrics(self, keys: Sequence[str],
                       metrics: Dict[str, Optional[dict]]) -> None:
        """Fold per-job snapshots into the run-level manifest.

        Merging happens in **plan order** and each job digest is merged
        once per runner lifetime, so the merged numbers do not depend on
        completion order, fan-out, or how many figures shared a job.
        """
        for key in keys:
            if key in self._metric_keys:
                continue
            self._metric_keys.add(key)
            snapshot = metrics.get(key)
            if snapshot:
                self.merged_metrics = merge_snapshots(
                    self.merged_metrics, snapshot
                )
                self.metrics_entries.append(
                    {"digest": key, "metrics": snapshot}
                )

    # ------------------------------------------------------------------
    def _run_legacy(
        self, experiment: Experiment, settings: ExperimentSettings,
        key: Optional[str] = None,
    ) -> ExperimentResult:
        """The unmigrated-``run()`` shim: whole-result caching, serial."""
        if key is None:
            key = (
                self.cache.experiment_key(experiment.experiment_id, settings)
                if self.cache
                else stable_digest((experiment.experiment_id, settings))
            )
        cached = self.cache.get(key) if self.cache else None
        if cached is not None:
            result, snapshot = _unpack_cached(cached)
            ambient = get_probes()
            if key in self._resume_keys:
                self.stats.journal_replays += 1
                ambient.count("engine.journal_replays")
            if self._journal is not None:
                self._journal.record_done(key)
            if ambient.enabled and snapshot:
                ambient.merge_snapshot(snapshot)
            self._merge_metrics([key], {key: snapshot})
            self._record(
                experiment_id=experiment.experiment_id,
                job_index=0,
                fn="legacy:run",
                benchmark="",
                allocated_fraction=1.0,
                digest=key,
                settings_digest=stable_digest(settings),
                cache_hit=True,
                wall_s=0.0,
                worker=None,
            )
            return result
        start = time.perf_counter()
        t0_wall = time.time()
        result, snapshot = captured_call(
            lambda: experiment.legacy_run(settings), self.watchdog
        )
        wall_s = time.perf_counter() - start
        if self.tracer is not None:
            self.tracer.record_span(
                "job", parent=self._span_root, qualifier=key,
                t0=t0_wall, dur_s=wall_s, digest=key, status="done",
                legacy=True)
        ambient = get_probes()
        if ambient.enabled and snapshot:
            ambient.merge_snapshot(snapshot, include_phases=True)
        self._merge_metrics([key], {key: snapshot})
        if self.cache:
            self.cache.put(key, _pack_cached(result, snapshot))
        if self._journal is not None:
            self._journal.record_done(key)
        self._record(
            experiment_id=experiment.experiment_id,
            job_index=0,
            fn="legacy:run",
            benchmark="",
            allocated_fraction=1.0,
            digest=key or "",
            settings_digest=stable_digest(settings),
            cache_hit=False,
            wall_s=wall_s,
            worker=os.getpid(),
        )
        return result

    # ------------------------------------------------------------------
    def _record(self, *, cache_hit: bool, wall_s: float, **entry) -> None:
        self.manifest.append(dict(entry, cache_hit=cache_hit, wall_s=round(wall_s, 4)))
        self.stats.jobs += 1
        if cache_hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            self.stats.sim_seconds += wall_s

    def metrics_manifest(self) -> dict:
        """The run-level metrics manifest.

        ``merged`` is the fold of every unique job's probe snapshot (in
        plan order — identical whatever ``jobs`` was); ``jobs`` lists
        the per-job snapshots keyed by digest, in merge order; ``runs``
        names each run this runner executed with its run and trace ids
        so scripted callers can correlate without scraping stderr.
        """
        return {
            "merged": self.merged_metrics,
            "jobs": list(self.metrics_entries),
            "runs": [dict(entry) for entry in self.run_records],
        }

    def write_metrics_manifest(self, path) -> None:
        """Write :meth:`metrics_manifest` to ``path`` as JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.metrics_manifest(), sort_keys=True, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def write_manifest(self, path) -> None:
        """Append the collected manifest entries to ``path`` as JSONL."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            for entry in self.manifest:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")

    def summary(self, elapsed_s: float) -> str:
        return self.stats.merged_into_summary(elapsed_s)


# ----------------------------------------------------------------------
# submittable experiment requests (the serving layer's job unit)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentRequest:
    """One self-contained, picklable experiment execution request.

    This is the unit :mod:`repro.serve` ships to a worker process: it
    names the experiment, carries the settings overrides in wire form
    (see :meth:`ExperimentSettings.from_dict`), the cache location and
    the resume/retry policy, and nothing else — so
    :func:`execute_request` can run it in any process with no shared
    state beyond the on-disk result cache and journal.

    ``spec`` is the ad-hoc sweep path: a
    :class:`~repro.scenarios.spec.ScenarioSpec` wire dict run by the
    generic executor instead of a registered experiment.  Exactly one
    of ``experiment_id`` and ``spec`` must be set; the spec's
    ``scenario_id`` then serves as the experiment id everywhere (cache,
    journal, response payload).
    """

    experiment_id: Optional[str] = None
    quick: bool = True
    overrides: Optional[Dict[str, object]] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    jobs: int = 1
    resume: Optional[str] = None
    timeout_s: Optional[float] = None
    max_attempts: Optional[int] = None
    spec: Optional[Dict[str, object]] = None
    backend: Optional[str] = None
    workers: Optional[int] = None


def _request_spec(request: ExperimentRequest):
    """The request's parsed :class:`ScenarioSpec`, or ``None``."""
    if request.spec is None:
        return None
    from repro.scenarios.spec import ScenarioSpec

    return ScenarioSpec.from_dict(request.spec)


def _request_id(request: ExperimentRequest) -> str:
    """The id the request runs under: experiment or scenario id."""
    if request.spec is not None:
        return str(dict(request.spec).get("scenario_id", ""))
    return request.experiment_id or ""


def request_digest(request: ExperimentRequest) -> str:
    """Stable identity of a request's *outcome* (not its cache config).

    Two requests that must produce byte-identical results — same
    experiment, same settings — share a digest even if one disables
    the cache or carries a resume token; the serving layer uses this
    for single-flight coalescing of concurrent identical submissions.
    """
    settings = ExperimentSettings.from_dict(request.overrides, request.quick)
    if request.spec is not None:
        from repro.scenarios.spec import spec_digest

        return stable_digest("sweep-request",
                             spec_digest(_request_spec(request)), settings)
    return stable_digest("experiment-request", request.experiment_id, settings)


def request_run_id(request: ExperimentRequest) -> str:
    """The deterministic journal run id this request will write under."""
    settings = ExperimentSettings.from_dict(request.overrides, request.quick)
    return journal_mod.default_run_id(_request_id(request), settings)


def execute_request(request: ExperimentRequest) -> dict:
    """Run one :class:`ExperimentRequest` to completion, synchronously.

    Importable at module top level and driven only by its picklable
    argument, so it can be submitted to a ``ProcessPoolExecutor`` (or a
    thread executor) via ``loop.run_in_executor`` — the asyncio serving
    layer's offload path.  Internally the request is translated to a
    :class:`repro.experiments.lifecycle.RunRequest`, so serve-submitted
    runs get exactly the same journal/retry/resume lifecycle as API and
    CLI runs.  Returns a JSON-able payload: the rendered result
    (``result_json`` is deterministic for identical requests), engine
    cache statistics, the run's merged metrics snapshot, its resume
    token (``run_id``) and any partial-failure records.
    """
    from repro.experiments.lifecycle import RunRequest, execute, runner_for

    spec = _request_spec(request)
    if spec is not None:
        if request.experiment_id:
            raise ValueError(
                "give experiment_id or spec, not both"
            )
        # Expand eagerly so an unresolvable spec fails before any
        # scheduling (the serve layer turns this into a 400).
        from repro.scenarios.executor import expand

        expand(spec, ExperimentSettings.from_dict(request.overrides,
                                                  request.quick))
    else:
        from repro.experiments import REGISTRY

        if request.experiment_id not in REGISTRY:
            raise KeyError(f"unknown experiment {request.experiment_id!r}")
    settings = ExperimentSettings.from_dict(request.overrides, request.quick)
    retry = (RetryPolicy(max_attempts=request.max_attempts)
             if request.max_attempts else None)
    run_request = RunRequest(
        experiment_id=None if spec is not None else request.experiment_id,
        spec=spec,
        settings=settings,
        jobs=request.jobs,
        cache=request.use_cache,
        cache_dir=request.cache_dir,
        timeout_s=request.timeout_s,
        retry=retry,
        resume=request.resume,
        backend=request.backend,
        workers=request.workers,
    )
    runner = runner_for(run_request)
    start = time.perf_counter()
    try:
        result = execute(run_request, runner=runner)
    finally:
        runner.close()
    return {
        "experiment_id": _request_id(request),
        "digest": request_digest(request),
        "result_json": result.to_json(indent=2),
        "cache_hits": runner.stats.cache_hits,
        "cache_misses": runner.stats.cache_misses,
        "wall_s": round(time.perf_counter() - start, 4),
        "metrics": runner.merged_metrics,
        "run_id": runner.last_run_id,
        "trace_id": runner.last_trace_id,
        "retries": runner.stats.retries,
        "journal_replays": runner.stats.journal_replays,
        "failures": [asdict(f) for f in runner.failures],
    }


def sweep_jobs(
    settings: ExperimentSettings,
    allocated_fraction: float = 1.0,
    config_overrides: Optional[Dict[str, object]] = None,
) -> List[SimJob]:
    """Jobs equivalent to one :func:`~repro.experiments.runner.sweep_benchmarks`
    call: one per benchmark, ``seed_offset`` equal to its suite index,
    so migrated experiments reproduce the serial harness bit for bit.
    """
    return [
        SimJob(
            benchmark=name,
            allocated_fraction=allocated_fraction,
            config_overrides=config_overrides,
            seed_offset=i,
        )
        for i, name in enumerate(settings.benchmarks)
    ]
