"""Append-only per-run journals: what a killed run leaves behind.

A :class:`~repro.experiments.engine.Runner` executing an experiment
writes one JSONL journal under ``<cache-root>/journal/<run-id>.jsonl``:
a header line binding the run to its *plan digest* (the ordered job
digests), then one line per job as it completes or is quarantined.
Because job results land in the content-addressed cache before their
journal line is written, a journal line is a promise the cache can
keep: resuming a run replays every journaled-done job straight from
the cache and re-executes only the remainder.

Journal format (schema 1)::

    {"kind": "header", "schema": 1, "run_id": ..., "experiment_id": ...,
     "plan_digest": ..., "settings_digest": ...}
    {"kind": "job", "key": <job digest>, "status": "done"}
    {"kind": "job", "key": ..., "status": "failed", "error": ...,
     "attempts": ..., "worker_crashes": ...}

Lines are *sealed*: each record embeds a truncated SHA-256 of its own
canonical dump (:func:`repro.store.envelope.seal_record`), so a
flipped bit inside an otherwise-parseable line is detected and refused
rather than replayed as state.  Loading is tolerant by construction:
parsing stops at the first corrupt line (a run killed mid-``write``
leaves a truncated tail) and whatever parsed before it is trusted —
the append-only discipline makes every prefix a consistent state.  A
corrupt *header* means the journal carries no usable state and the run
restarts clean; both cases are counted on the probe bus
(``engine.journal_corrupt`` plus the classified
``store.corrupt.<class>`` counters).  Bare unsealed lines still load:
journals written before sealing existed, and hand-written fixtures,
remain valid.

Appends that hit a failing disk (ENOSPC, EIO) put the journal into
degraded mode — further appends are skipped, one warning is issued,
``store.degraded`` is set — so the run completes (unresumable, but
correct) instead of crashing.

Run ids default to a deterministic token derived from the experiment
id and settings (:func:`default_run_id`), so "resume the run I just
lost" needs no bookkeeping beyond re-issuing the same request.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set

from repro.experiments.cache import stable_digest
from repro.store.envelope import count_corruption, open_record, seal_record

JOURNAL_SCHEMA = 1

_SAFE_RUN_ID = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def default_run_id(experiment_id: str, settings) -> str:
    """Deterministic resume token for one (experiment, settings) pair."""
    return f"{experiment_id}-{stable_digest('run', experiment_id, settings)[:12]}"


def journal_dir(cache_root) -> Path:
    return Path(cache_root) / "journal"


def journal_path(cache_root, run_id: str) -> Path:
    """Where ``run_id``'s journal lives; unsafe ids are hashed."""
    if not _SAFE_RUN_ID.match(run_id):
        run_id = f"run-{stable_digest('run-id', run_id)[:24]}"
    return journal_dir(cache_root) / f"{run_id}.jsonl"


@dataclass
class JournalState:
    """Everything a parsed journal knows about a previous run."""

    run_id: str
    experiment_id: str
    plan_digest: str
    settings_digest: str
    done: Set[str] = field(default_factory=set)
    failed: Dict[str, dict] = field(default_factory=dict)
    truncated: bool = False


def load_state(cache_root, run_id: str) -> Optional[JournalState]:
    """Parse a journal; ``None`` when absent or its header is unusable.

    Sets ``truncated`` when a corrupt tail was discarded — callers
    count that on the bus but still use the surviving prefix.
    """
    path = journal_path(cache_root, run_id)
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except (FileNotFoundError, OSError):
        return None
    state: Optional[JournalState] = None
    for line in raw.splitlines():
        if not line.strip():
            continue
        record, damage = open_record(line)
        kind = record.get("kind") if record is not None else None
        if record is None or kind is None:
            count_corruption(damage or "wrong_schema", store="journal",
                             path=path, run_id=run_id)
            if state is not None:
                state.truncated = True
            return state
        if state is None:
            if kind != "header" or record.get("schema") != JOURNAL_SCHEMA:
                return None
            try:
                state = JournalState(
                    run_id=record["run_id"],
                    experiment_id=record["experiment_id"],
                    plan_digest=record["plan_digest"],
                    settings_digest=record["settings_digest"],
                )
            except KeyError:
                return None
            continue
        if kind != "job":
            continue
        try:
            key = record["key"]
            status = record["status"]
        except KeyError:
            state.truncated = True
            return state
        if status == "done":
            state.done.add(key)
            state.failed.pop(key, None)
        elif status == "failed":
            state.failed[key] = record
    return state


class RunJournal:
    """The append side: one open journal file, flushed per record."""

    def __init__(self, path: Path, fh):
        self.path = path
        self._fh = fh
        self.recorded: Set[str] = set()
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """Whether an append failure disabled this journal."""
        return self._degraded

    @classmethod
    def start(cls, cache_root, run_id: str, *, experiment_id: str,
              plan_digest: str, settings_digest: str,
              prior: Optional[JournalState] = None) -> "RunJournal":
        """Open ``run_id``'s journal for appending.

        With a usable ``prior`` state (same plan digest) the existing
        file is extended and its done-set pre-seeded so replayed jobs
        are not re-recorded; otherwise the file is rewritten with a
        fresh header.
        """
        path = journal_path(cache_root, run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        resume = (prior is not None and prior.plan_digest == plan_digest
                  and not prior.truncated)
        fh = path.open("a" if resume else "w", encoding="utf-8")
        journal = cls(path, fh)
        if resume:
            journal.recorded = set(prior.done)
        else:
            journal._append({
                "kind": "header", "schema": JOURNAL_SCHEMA,
                "run_id": run_id, "experiment_id": experiment_id,
                "plan_digest": plan_digest,
                "settings_digest": settings_digest,
            })
        return journal

    def _append(self, record: dict) -> None:
        if self._degraded:
            return
        try:
            self._fh.write(seal_record(record) + "\n")
            self._fh.flush()
        except OSError as exc:
            from repro.obs import get_probes

            self._degraded = True
            probes = get_probes()
            probes.count("store.append_errors")
            probes.gauge("store.degraded", 1)
            warnings.warn(
                f"journal at {self.path} is degraded "
                f"({type(exc).__name__}: {exc}); this run will not be "
                f"resumable",
                RuntimeWarning,
                stacklevel=3,
            )

    def record_done(self, key: str) -> None:
        if key in self.recorded:
            return
        self.recorded.add(key)
        self._append({"kind": "job", "key": key, "status": "done"})

    def record_failed(self, key: str, *, error: str, attempts: int,
                      worker_crashes: int) -> None:
        self._append({
            "kind": "job", "key": key, "status": "failed",
            "error": error, "attempts": attempts,
            "worker_crashes": worker_crashes,
        })

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
