"""Ablation: compressibility vs. skippability (abl-compression).

EBDI descends from BDI, the bit-plane stage from BPC — but the goals
differ: compressors minimise *stored bits*, ZERO-REFRESH maximises
*contiguous discharged bits at constant size*.  This experiment runs
all three over every content class and shows they are correlated but
not interchangeable: classes with identical compression ratios can have
very different skippable-group counts (and zero/uniform data saturates
compressors while skippability keeps distinguishing word positions).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.transform.bdi import BdiCompressor
from repro.transform.bitplane import BitPlaneTransform
from repro.transform.bpc import BpcCompressor
from repro.transform.celltype import CellType
from repro.transform.ebdi import EbdiCodec
from repro.workloads.synthetic import LINE_CLASSES, generate_lines


def run(settings: ExperimentSettings = ExperimentSettings(),
        lines_per_class: int = 512) -> ExperimentResult:
    rng = np.random.default_rng(settings.seed)
    bdi = BdiCompressor()
    bpc = BpcCompressor()
    ebdi = EbdiCodec()
    bitplane = BitPlaneTransform()
    rows = []
    for name in sorted(LINE_CLASSES):
        lines = generate_lines(name, lines_per_class, rng)
        encoded = bitplane.apply(ebdi.encode(lines, CellType.TRUE))
        skippable = int((encoded == 0).all(axis=0).sum())
        rows.append([
            name,
            bdi.compression_ratio(lines),
            bpc.compression_ratio(lines),
            skippable,
            skippable / 8.0,
        ])
    return ExperimentResult(
        experiment_id="abl-compression",
        title="Compressibility (BDI/BPC) vs skippability (ZERO-REFRESH)",
        headers=["content class", "BDI ratio", "BPC ratio",
                 "skippable words", "max reduction"],
        rows=rows,
        notes=(
            "correlated but distinct objectives: e.g. float64 is nearly "
            "incompressible under BDI yet retains a skippable word; "
            "padded data is byte-sparse but neither compresses nor skips"
        ),
    )
