"""Ablation: compressibility vs. skippability (abl-compression).

EBDI descends from BDI, the bit-plane stage from BPC — but the goals
differ: compressors minimise *stored bits*, ZERO-REFRESH maximises
*contiguous discharged bits at constant size*.  This experiment runs
all three over every content class and shows they are correlated but
not interchangeable: classes with identical compression ratios can have
very different skippable-group counts (and zero/uniform data saturates
compressors while skippability keeps distinguishing word positions).
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import ScenarioSpec

SPEC = ScenarioSpec(
    scenario_id="abl-compression",
    description="Compressibility (BDI/BPC) vs skippability per content class",
    point="repro.experiments.abl_compression:compression_point",
    point_params={"lines_per_class": 512},
    reduction="table",
    reduction_params={
        "title": "Compressibility (BDI/BPC) vs skippability (ZERO-REFRESH)",
        "headers": ["content class", "BDI ratio", "BPC ratio",
                    "skippable words", "max reduction"],
        "notes": (
            "correlated but distinct objectives: e.g. float64 is nearly "
            "incompressible under BDI yet retains a skippable word; "
            "padded data is byte-sparse but neither compresses nor skips"
        ),
    },
)


def compression_point(settings, job) -> list:
    """All content classes under one shared RNG stream."""
    from repro.transform.bdi import BdiCompressor
    from repro.transform.bitplane import BitPlaneTransform
    from repro.transform.bpc import BpcCompressor
    from repro.transform.celltype import CellType
    from repro.transform.ebdi import EbdiCodec
    from repro.workloads.synthetic import LINE_CLASSES, generate_lines

    lines_per_class = int(job.params["lines_per_class"])
    rng = np.random.default_rng(settings.seed)
    bdi = BdiCompressor()
    bpc = BpcCompressor()
    ebdi = EbdiCodec()
    bitplane = BitPlaneTransform()
    rows = []
    for name in sorted(LINE_CLASSES):
        lines = generate_lines(name, lines_per_class, rng)
        encoded = bitplane.apply(ebdi.encode(lines, CellType.TRUE))
        skippable = int((encoded == 0).all(axis=0).sum())
        rows.append([
            name,
            bdi.compression_ratio(lines),
            bpc.compression_ratio(lines),
            skippable,
            skippable / 8.0,
        ])
    return rows


def run(settings=None, lines_per_class: int = 512):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    if lines_per_class != 512:
        spec = replace(SPEC, point_params={"lines_per_class": lines_per_class})
    return as_experiment(spec)(settings)
