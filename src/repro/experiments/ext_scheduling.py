"""Extension experiment: latency hiding vs work removal (ext-scheduling).

Lines up the refresh-stall cost of the scheduling-side related work
(Elastic Refresh, Refresh Pausing — Sec. II-D) against ZERO-REFRESH and
their combination.  Scheduling policies reshuffle *when* refreshes
stall demand; charge-aware skipping removes the work, so the two
compose multiplicatively.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec

SPEC = ScenarioSpec(
    scenario_id="ext-scheduling",
    description="Refresh-stall cost: scheduling policies vs skipping",
    point="repro.experiments.ext_scheduling:scheduling_point",
    point_params={"benchmark": "mcf", "busy_time_fraction": 0.5},
    reduction="table",
    reduction_params={
        "title": "Refresh stall per demand access ({benchmark})",
        "headers": ["policy", "P(collision)", "mean stall ns",
                    "stall/access ns", "vs baseline"],
        "notes": (
            "scheduling hides latency, skipping removes work; they "
            "compose — the paper's mechanism is orthogonal to Elastic "
            "Refresh / Refresh Pausing"
        ),
    },
)


def scheduling_point(settings, job) -> list:
    from repro.controller.refresh_scheduling import (
        BaselineRefreshStall,
        ElasticRefreshQueue,
        RefreshPausingModel,
        zero_refresh_stall,
    )
    from repro.experiments.runner import simulate_benchmark

    benchmark = str(job.params["benchmark"])
    busy_time_fraction = float(job.params["busy_time_fraction"])
    result = simulate_benchmark(settings, benchmark, 1.0)
    timing = settings.config().timing
    norm = result.normalized_refresh

    baseline = BaselineRefreshStall(timing).report()
    elastic = ElasticRefreshQueue(timing).report(busy_time_fraction)
    pausing = RefreshPausingModel(
        timing, rows_per_ar=settings.rows_per_ar
    ).report(busy_time_fraction)
    zero = zero_refresh_stall(timing, norm)
    # Combined: skipping shrinks the busy duty, pausing shrinks the wait
    # of the (busy-phase) collisions that remain.
    combined_collision = zero.collision_probability * busy_time_fraction
    combined_stall = combined_collision * pausing.mean_stall_ns

    def row(report, stall=None):
        stall = report.stall_per_access_ns if stall is None else stall
        return [report.policy, report.collision_probability,
                report.mean_stall_ns, stall,
                stall / baseline.stall_per_access_ns]

    return [
        row(baseline),
        row(elastic),
        row(pausing),
        row(zero),
        ["zero-refresh + pausing", combined_collision,
         pausing.mean_stall_ns, combined_stall,
         combined_stall / baseline.stall_per_access_ns],
    ]


def run(settings=None, benchmark: str = "mcf",
        busy_time_fraction: float = 0.5):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    params = {"benchmark": benchmark,
              "busy_time_fraction": busy_time_fraction}
    if params != SPEC.point_params_dict:
        spec = replace(SPEC, point_params=params)
    return as_experiment(spec)(settings)
