"""Shared worker bootstrap: how any worker runs one engine job.

Three execution vehicles run :class:`~repro.experiments.engine.SimJob`
bodies outside the driving thread — the engine's serial loop, its
``ProcessPoolExecutor`` workers, and :mod:`repro.cluster` workers on
other processes or hosts.  They all need the same per-job environment:

* a **fresh probe bus** (a fork of the ambient bus when one is
  installed, so live tracing keeps streaming; otherwise a standalone
  bus) whose snapshot ships back with the result and is what makes
  fan-out transparent to the metrics manifest;
* an optional **invariant watchdog**, whose findings ride along in
  the snapshot;
* the runner's **span wire context**, under which the worker opens an
  ``attempt`` span so kernel phases nest below the exact job span the
  runner minted — deterministic ids keep serial, pool and cluster
  trees identical;
* an optional armed :class:`~repro.experiments.faults.FaultSpec`,
  fired *before* the probe-scoped body so injected faults never
  contaminate the cached metrics snapshot.

This module is the one definition of that bootstrap.  It deliberately
depends only on obs + faults so a cluster worker can import it without
dragging in the engine's scheduling machinery.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import Callable, Optional, Tuple

from repro.experiments import faults as faults_mod
from repro.obs import ProbeBus, get_probes, use_probes
from repro.obs.invariants import InvariantWatchdog, use_watchdog
from repro.obs.spans import SpanContext, SpanTracer, use_tracer

__all__ = ["captured_call", "run_job_in_worker"]


def captured_call(fn: Callable[[], object],
                  watchdog: bool = False) -> Tuple[object, dict]:
    """Run ``fn`` under a scoped probe bus; return ``(result, snapshot)``.

    With an ambient bus installed the scoped bus is a fork of it, so
    trace events still stream to the live sink while counters,
    histograms, gauges and phase times accumulate separately for the
    per-job snapshot.  In workers (no ambient bus) a fresh bus captures
    the same metrics, which is what makes fan-out transparent to the
    metrics manifest.  ``watchdog=True`` also installs a fresh
    :class:`InvariantWatchdog` and attaches its findings to the
    snapshot.
    """
    ambient = get_probes()
    bus = ambient.fork() if ambient.enabled else ProbeBus()
    watch_ctx = use_watchdog(InvariantWatchdog()) if watchdog else nullcontext()
    with watch_ctx as wd, use_probes(bus):
        result = fn()
    snapshot = bus.snapshot()
    if wd is not None:
        snapshot["invariants"] = wd.snapshot()
    return result, snapshot


def run_job_in_worker(settings, job, watchdog: bool = False, fault=None,
                      span_wire: Optional[dict] = None, attempt: int = 1):
    """Worker entry point: result, snapshot, wall time, pid, spans.

    The one bootstrap every execution backend funnels jobs through.
    An armed :class:`~repro.experiments.faults.FaultSpec` fires *before*
    the probe-scoped job body, so injected faults never contaminate the
    job's metrics snapshot (which is cached and must stay identical to
    a fault-free execution's).

    ``span_wire`` is the runner's job-span :class:`SpanContext` in wire
    form: the worker opens an ``attempt`` span under it (qualified by
    the attempt number so retries get distinct, deterministic ids) and
    installs an ambient tracer so kernel phases nest underneath.  Spans
    ship back only on success — a failed attempt's records are
    discarded here and the runner fabricates the failed-attempt span
    instead, which keeps ``--jobs 1``, pool and cluster trees identical.
    """
    from repro.experiments.engine import execute_job

    if fault is not None:
        faults_mod.apply_worker_fault(fault)
    start = time.perf_counter()
    if span_wire is None:
        result, snapshot = captured_call(
            lambda: execute_job(settings, job), watchdog
        )
        return result, snapshot, time.perf_counter() - start, os.getpid(), []
    parent = SpanContext.from_wire(span_wire)
    tracer = SpanTracer(parent.trace_id)
    with use_tracer(tracer):
        with tracer.span("attempt", parent=parent, qualifier=str(attempt),
                         pid=os.getpid()):
            result, snapshot = captured_call(
                lambda: execute_job(settings, job), watchdog
            )
    return (result, snapshot, time.perf_counter() - start, os.getpid(),
            tracer.records)
