"""Deterministic fault injection for the experiment engine.

Chaos testing the run lifecycle needs faults that are *scripted*, not
random: a :class:`FaultPlan` names exactly which plan positions
misbehave, how, and how many times, so a test (or the CI chaos-smoke
job) can assert the precise retry / quarantine / resume behaviour that
follows.  The :class:`~repro.experiments.engine.Runner` threads the
plan through its scheduler:

* ``crash`` — the job raises :class:`FaultError` inside the worker
  (an ordinary job exception: retried with backoff);
* ``kill`` — the worker process ``SIGKILL``\\ s itself mid-job,
  breaking the process pool (a worker crash: the pool is rebuilt, the
  suspect job re-runs alone, and repeat offenders are quarantined).
  In-process execution (``jobs=1``) degrades ``kill`` to ``crash`` so
  the driving process survives;
* ``delay`` — the job sleeps ``delay_s`` before running (exercises
  per-job timeouts and slow-worker paths);
* ``corrupt-cache`` — after the job's result is cached, its cache
  entry is truncated on disk (exercises the corrupt-entry recovery
  path on the next read);
* ``bitflip-cache`` — after the job's result is cached, one payload
  byte of its entry is inverted in place, leaving length and framing
  intact (exercises the envelope's checksum verification: only the
  SHA-256 can catch this one);
* ``abort-run`` — after the job completes *and is journaled*, the
  driving process ``SIGKILL``\\ s itself.  This is the
  kill-and-resume integration hook: the journal survives, the run
  does not.

Faults arm per *try*: a spec with ``times=2`` fires on the job's first
two execution attempts and then stays quiet, which is how chaos tests
script "fails twice, then succeeds".
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Tuple

FAULT_KINDS = ("crash", "kill", "delay", "corrupt-cache", "bitflip-cache",
               "abort-run")

WORKER_KINDS = frozenset({"crash", "kill", "delay"})
"""Kinds applied inside the worker, before the job body runs."""

RUNNER_KINDS = frozenset({"corrupt-cache", "bitflip-cache", "abort-run"})
"""Kinds applied by the runner, after the job completes."""


class FaultError(RuntimeError):
    """The exception an injected ``crash`` fault raises in the worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: *what* happens to *which* plan position.

    ``job_index`` addresses the job's position in the experiment plan
    (the order :meth:`Experiment.plan` returned); ``times`` bounds how
    many tries of that job the fault fires on (worker kinds) or how
    often it applies (runner kinds fire once regardless).
    """

    job_index: int
    kind: str = "crash"
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, "
                             f"got {self.kind!r}")
        if self.job_index < 0:
            raise ValueError("job_index must be >= 0")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def as_crash(self) -> "FaultSpec":
        """The in-process degradation of a ``kill`` fault."""
        return FaultSpec(job_index=self.job_index, kind="crash",
                         times=self.times, delay_s=self.delay_s)


@dataclass(frozen=True)
class FaultPlan:
    """A scripted set of faults threaded through one runner."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def worker_fault(self, job_index: int, attempt: int):
        """The worker-side fault armed for try ``attempt`` (1-based)."""
        for spec in self.faults:
            if (spec.job_index == job_index and spec.kind in WORKER_KINDS
                    and attempt <= spec.times):
                return spec
        return None

    def runner_faults(self, job_index: int) -> Tuple[FaultSpec, ...]:
        """Runner-side faults attached to a completed plan position."""
        return tuple(spec for spec in self.faults
                     if spec.job_index == job_index
                     and spec.kind in RUNNER_KINDS)


def apply_worker_fault(spec: FaultSpec) -> None:
    """Fire a worker-side fault; called before the job body runs."""
    if spec.delay_s:
        time.sleep(spec.delay_s)
    if spec.kind == "crash":
        raise FaultError(
            f"injected crash (job_index={spec.job_index})"
        )
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def corrupt_cache_entry(cache, key: str) -> bool:
    """Truncate ``key``'s on-disk cache entry mid-pickle.

    Leaves a syntactically broken file (not a missing one), which is
    exactly the state an interrupted non-atomic writer or a disk fault
    produces — the shape :meth:`ResultCache.get`'s recovery path is
    built for.  Returns whether an entry existed to corrupt.
    """
    path = cache.path_for(key)
    if not path.exists():
        return False
    blob = path.read_bytes()
    path.write_bytes(blob[: max(1, len(blob) // 2)])
    return True


def bitflip_cache_entry(cache, key: str) -> bool:
    """Invert one payload byte of ``key``'s cache entry in place.

    The file keeps its envelope framing and declared length, so only
    checksum verification can reject it — the silent-corruption shape
    (cosmic ray, controller bug) the integrity envelope exists for.
    Returns whether an entry existed to corrupt.
    """
    path = cache.path_for(key)
    if not path.exists():
        return False
    blob = bytearray(path.read_bytes())
    if not blob:
        return False
    # flip the last byte: always inside the payload, never the header
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    return True


def abort_run() -> None:  # pragma: no cover - kills the calling process
    """The ``abort-run`` fault: SIGKILL the driving process."""
    os.kill(os.getpid(), signal.SIGKILL)
