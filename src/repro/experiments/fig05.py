"""Fig. 5 — cumulative distributions of memory utilisation (three traces).

The figure plots full CDFs; the table reports the CDF evaluated at a
utilisation grid plus the percentile summary, which captures the same
series (Alibaba concentrated high, Google mid, Bitbrains low/wide).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import empirical_cdf
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.workloads.datacenter import paper_traces

GRID = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    rows = []
    for name, trace in paper_traces().items():
        cdf = empirical_cdf(trace.samples, GRID)
        rows.append([name] + [float(v) for v in cdf])
    return ExperimentResult(
        experiment_id="fig05",
        title="Memory-utilisation CDFs, P(util <= x)",
        headers=["trace"] + [f"x={g:.1f}" for g in GRID],
        rows=rows,
        notes=(
            "Expected shape: alibaba ~0 until x=0.8 then steep; google rises "
            "around x=0.6-0.8; bitbrains reaches ~0.9 by x=0.5"
        ),
    )
