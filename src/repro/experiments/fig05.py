"""Fig. 5 — cumulative distributions of memory utilisation (three traces).

The figure plots full CDFs; the table reports the CDF evaluated at a
utilisation grid plus the percentile summary, which captures the same
series (Alibaba concentrated high, Google mid, Bitbrains low/wide).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import empirical_cdf
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.workloads.datacenter import paper_traces

GRID = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])

SPEC = ScenarioSpec(
    scenario_id="fig05",
    description="Memory-utilisation CDFs of the three datacenter traces",
    axes=(
        SweepAxis("params.trace",
                  source="repro.experiments.fig05:trace_names"),
    ),
    point="repro.experiments.fig05:cdf_point",
    reduction="concat_rows",
    reduction_params={
        "title": "Memory-utilisation CDFs, P(util <= x)",
        "headers": ["trace"] + [f"x={g:.1f}" for g in GRID],
        "notes": (
            "Expected shape: alibaba ~0 until x=0.8 then steep; google "
            "rises around x=0.6-0.8; bitbrains reaches ~0.9 by x=0.5"
        ),
    },
)


def trace_names(settings) -> list:
    return list(paper_traces())


def cdf_point(settings, job) -> list:
    """One trace's CDF evaluated on the utilisation grid, as a row."""
    name = str(job.params["trace"])
    trace = paper_traces()[name]
    cdf = empirical_cdf(trace.samples, GRID)
    return [name] + [float(v) for v in cdf]


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
