"""Fig. 18 — row-buffer size sensitivity (2 KB / 4 KB / 8 KB, 100 % alloc).

Smaller rows couple fewer cachelines per refresh group, so sporadic
outlier lines spoil fewer groups: the paper measures 46.3 % reduction
at 2 KB, 37.1 % at 4 KB and 33.9 % at 8 KB.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    sweep_benchmarks,
)

ROW_SIZES = (2048, 4096, 8192)
PAPER_REDUCTION = {2048: 0.463, 4096: 0.371, 8192: 0.339}


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    per_size = {}
    for row_bytes in ROW_SIZES:
        per_size[row_bytes] = sweep_benchmarks(
            settings, allocated_fraction=1.0,
            config_overrides={"row_bytes": row_bytes},
        )
    rows = []
    for name in settings.benchmarks:
        rows.append([name] + [per_size[r][name].normalized_refresh
                              for r in ROW_SIZES])
    averages = [
        float(np.mean([per_size[r][b].normalized_refresh
                       for b in settings.benchmarks]))
        for r in ROW_SIZES
    ]
    rows.append(["average"] + averages)
    rows.append(["paper avg"] + [1.0 - PAPER_REDUCTION[r] for r in ROW_SIZES])
    return ExperimentResult(
        experiment_id="fig18",
        title="Normalized refresh vs row buffer size (100% allocated)",
        headers=["benchmark", "2KB", "4KB", "8KB"],
        rows=rows,
        paper_reference={f"{r//1024}KB": 1.0 - PAPER_REDUCTION[r]
                         for r in ROW_SIZES},
        notes=(
            "ordering 2KB < 4KB < 8KB must hold; the synthetic content "
            "understates the paper's 2KB gain (see EXPERIMENTS.md)"
        ),
    )
