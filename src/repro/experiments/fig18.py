"""Fig. 18 — row-buffer size sensitivity (2 KB / 4 KB / 8 KB, 100 % alloc).

Smaller rows couple fewer cachelines per refresh group, so sporadic
outlier lines spoil fewer groups: the paper measures 46.3 % reduction
at 2 KB, 37.1 % at 4 KB and 33.9 % at 8 KB.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, SweepAxis

ROW_SIZES = (2048, 4096, 8192)
PAPER_REDUCTION = {2048: 0.463, 4096: 0.371, 8192: 0.339}

SPEC = ScenarioSpec(
    scenario_id="fig18",
    description="Refresh reduction vs row buffer size (2/4/8 KB)",
    axes=(
        SweepAxis("row_bytes", values=list(ROW_SIZES)),
        SweepAxis("benchmark"),
    ),
    reduction="benchmark_grid",
    reduction_params={
        "title": "Normalized refresh vs row buffer size (100% allocated)",
        "metric": "normalized_refresh",
        "columns": [f"{r // 1024}KB" for r in ROW_SIZES],
        "extra_rows": [["paper avg"] + [1.0 - PAPER_REDUCTION[r]
                                        for r in ROW_SIZES]],
        "paper_reference": {f"{r // 1024}KB": 1.0 - PAPER_REDUCTION[r]
                            for r in ROW_SIZES},
        "notes": (
            "ordering 2KB < 4KB < 8KB must hold; the synthetic content "
            "understates the paper's 2KB gain (see EXPERIMENTS.md)"
        ),
    },
)


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
