"""Ablation studies for the design choices DESIGN.md calls out.

* :data:`STAGES` — contribution of each pipeline stage: raw values
  only, +EBDI, +bit-plane, +rotation/cell-type (the full design).
* :data:`CELLTYPE` — cost of imperfect true/anti identification
  (the paper argues accuracy need not be 100 %: mispredictions only
  forfeit skip opportunity).
* :data:`WORDSIZE` — EBDI word size 4 B vs the paper's 8 B.
* :data:`TRACKING` — skip behaviour of the naive per-write tracker
  vs the access-bit protocol (they must agree on steady-state skips;
  their cost difference is the sram experiment).
* :data:`POLICY` — per-bank vs all-bank AR refresh policy.

Each ablation is a variants × benchmarks grid, expressed as an engine
plan (one :class:`~repro.experiments.engine.SimJob` per cell, row
major) plus a reduce that lays the grid back out as a table.
"""

from __future__ import annotations

from typing import List

from repro.experiments.engine import Experiment, SimJob
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.transform.codec import StageSelection

ABLATION_BENCHMARKS = ("gemsFDTD", "mcf", "bzip2", "omnetpp")

STAGE_VARIANTS = (
    ("raw values", StageSelection.none(), False),
    ("+EBDI", StageSelection(ebdi=True, bitplane=False, rotation=False,
                             celltype_aware=True), False),
    ("+bit-plane", StageSelection(ebdi=True, bitplane=True, rotation=False,
                                  celltype_aware=True), False),
    ("+rotation (full)", StageSelection.full(), True),
)

CELLTYPE_ERROR_RATES = (0.0, 0.05, 0.25, 0.5)


def _benchmarks(settings: ExperimentSettings):
    return [b for b in ABLATION_BENCHMARKS if b in settings.benchmarks] or list(
        settings.benchmarks[:2]
    )


def _grid_jobs(settings: ExperimentSettings, variant_overrides) -> List[SimJob]:
    """Row-major jobs for a variants × benchmarks grid."""
    names = _benchmarks(settings)
    return [
        SimJob(benchmark=name, allocated_fraction=1.0,
               config_overrides=overrides, seed_offset=i)
        for overrides in variant_overrides
        for i, name in enumerate(names)
    ]


def _grid_rows(settings: ExperimentSettings, labels, results, metric):
    """Invert :func:`_grid_jobs`: one table row per variant."""
    names = _benchmarks(settings)
    it = iter(results)
    return [[label] + [metric(next(it)) for _ in names] for label in labels]


# ----------------------------------------------------------------------
# pipeline stages
# ----------------------------------------------------------------------
def plan_stages(settings: ExperimentSettings) -> List[SimJob]:
    return _grid_jobs(settings, [
        {"stages": stages, "staggered_counters": staggered}
        for _, stages, staggered in STAGE_VARIANTS
    ])


def reduce_stages(settings: ExperimentSettings, results: list) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = _grid_rows(settings, [label for label, _, _ in STAGE_VARIANTS],
                      results, lambda r: r.normalized_refresh)
    return ExperimentResult(
        experiment_id="abl-stages",
        title="Pipeline-stage contribution (normalized refresh, 100% alloc)",
        headers=["variant"] + names,
        rows=rows,
        notes="each stage must not hurt; rotation unlocks word-granular groups",
    )


STAGES = Experiment("abl-stages", plan=plan_stages, reduce=reduce_stages)


# ----------------------------------------------------------------------
# cell-type identification accuracy
# ----------------------------------------------------------------------
def plan_celltype(settings: ExperimentSettings) -> List[SimJob]:
    return _grid_jobs(settings, [
        {"celltype_error_rate": rate} for rate in CELLTYPE_ERROR_RATES
    ])


def reduce_celltype(settings: ExperimentSettings, results: list) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = _grid_rows(settings,
                      [f"error={rate:.0%}" for rate in CELLTYPE_ERROR_RATES],
                      results, lambda r: r.normalized_refresh)
    return ExperimentResult(
        experiment_id="abl-celltype",
        title="Cell-type misprediction cost (normalized refresh)",
        headers=["identification"] + names,
        rows=rows,
        notes="reduction degrades gracefully; correctness never depends on it",
    )


CELLTYPE = Experiment("abl-celltype", plan=plan_celltype, reduce=reduce_celltype)


# ----------------------------------------------------------------------
# EBDI word size
# ----------------------------------------------------------------------
WORD_SIZES = (8, 4)


def plan_wordsize(settings: ExperimentSettings) -> List[SimJob]:
    return _grid_jobs(settings, [{"word_bytes": wb} for wb in WORD_SIZES])


def reduce_wordsize(settings: ExperimentSettings, results: list) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = _grid_rows(settings, [f"{wb} B words" for wb in WORD_SIZES],
                      results, lambda r: r.normalized_refresh)
    return ExperimentResult(
        experiment_id="abl-wordsize",
        title="EBDI word size (normalized refresh, 100% alloc)",
        headers=["variant"] + names,
        rows=rows,
        notes="the paper fixes 8 B words; 4 B trades base overhead for "
              "narrower deltas",
    )


WORDSIZE = Experiment("abl-wordsize", plan=plan_wordsize, reduce=reduce_wordsize)


# ----------------------------------------------------------------------
# refresh policy (paper Sec. IV-A)
# ----------------------------------------------------------------------
POLICIES = ("per-bank", "all-bank")


def plan_policy(settings: ExperimentSettings) -> List[SimJob]:
    """Per-bank vs all-bank AR.

    Both policies skip the same refreshes (same energy), but an
    all-bank command blocks the rank until its slowest bank finishes,
    so the recovered *bandwidth* — and hence the IPC gain — shrinks.
    """
    return _grid_jobs(settings, [{"refresh_policy": p} for p in POLICIES])


def reduce_policy(settings: ExperimentSettings, results: list) -> ExperimentResult:
    names = _benchmarks(settings)
    it = iter(results)
    rows = []
    for policy in POLICIES:
        variant = [next(it) for _ in names]
        rows.append([f"{policy} refresh"]
                    + [r.normalized_refresh for r in variant])
        rows.append([f"{policy} IPC"]
                    + [r.ipc.normalized_ipc for r in variant])
    return ExperimentResult(
        experiment_id="abl-policy",
        title="Refresh policy: per-bank vs all-bank AR",
        headers=["metric"] + names,
        rows=rows,
        notes="identical skip counts; all-bank recovers less bank time "
              "(rank blocked by its slowest bank)",
    )


POLICY = Experiment("abl-policy", plan=plan_policy, reduce=reduce_policy)


# ----------------------------------------------------------------------
# tracking design
# ----------------------------------------------------------------------
TRACKER_MODES = (("zero-refresh", "access bits + DRAM table"),
                 ("naive", "naive per-write SRAM"))


def plan_tracking(settings: ExperimentSettings) -> List[SimJob]:
    return _grid_jobs(settings, [
        {"refresh_mode": mode} for mode, _ in TRACKER_MODES
    ])


def reduce_tracking(settings: ExperimentSettings, results: list) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = _grid_rows(settings, [label for _, label in TRACKER_MODES],
                      results, lambda r: r.normalized_refresh)
    return ExperimentResult(
        experiment_id="abl-tracking",
        title="Tracking design (normalized refresh, 100% alloc)",
        headers=["tracker"] + names,
        rows=rows,
        notes="the optimised design pays only the dirty-set transient vs "
              "the naive tracker; its SRAM is 128x smaller (see 'sram')",
    )


TRACKING = Experiment("abl-tracking", plan=plan_tracking, reduce=reduce_tracking)


# ----------------------------------------------------------------------
# legacy entry points (serial, uncached)
# ----------------------------------------------------------------------
def run_stages(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return STAGES(settings)


def run_celltype(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return CELLTYPE(settings)


def run_wordsize(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return WORDSIZE(settings)


def run_policy(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return POLICY(settings)


def run_tracking(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return TRACKING(settings)
