"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`run_stages` — contribution of each pipeline stage: raw values
  only, +EBDI, +bit-plane, +rotation/cell-type (the full design).
* :func:`run_celltype` — cost of imperfect true/anti identification
  (the paper argues accuracy need not be 100 %: mispredictions only
  forfeit skip opportunity).
* :func:`run_wordsize` — EBDI word size 4 B vs the paper's 8 B.
* :func:`run_tracking` — skip behaviour of the naive per-write tracker
  vs the access-bit protocol (they must agree on steady-state skips;
  their cost difference is the sram experiment).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
)
from repro.transform.codec import StageSelection

ABLATION_BENCHMARKS = ("gemsFDTD", "mcf", "bzip2", "omnetpp")

STAGE_VARIANTS = (
    ("raw values", StageSelection.none(), False),
    ("+EBDI", StageSelection(ebdi=True, bitplane=False, rotation=False,
                             celltype_aware=True), False),
    ("+bit-plane", StageSelection(ebdi=True, bitplane=True, rotation=False,
                                  celltype_aware=True), False),
    ("+rotation (full)", StageSelection.full(), True),
)


def _benchmarks(settings: ExperimentSettings):
    return [b for b in ABLATION_BENCHMARKS if b in settings.benchmarks] or list(
        settings.benchmarks[:2]
    )


def run_stages(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = []
    for label, stages, staggered in STAGE_VARIANTS:
        row = [label]
        for i, name in enumerate(names):
            result = simulate_benchmark(
                settings, name, 1.0,
                config_overrides={"stages": stages,
                                  "staggered_counters": staggered},
                seed_offset=i,
            )
            row.append(result.normalized_refresh)
        rows.append(row)
    return ExperimentResult(
        experiment_id="abl-stages",
        title="Pipeline-stage contribution (normalized refresh, 100% alloc)",
        headers=["variant"] + names,
        rows=rows,
        notes="each stage must not hurt; rotation unlocks word-granular groups",
    )


def run_celltype(settings: ExperimentSettings = ExperimentSettings(),
                 error_rates=(0.0, 0.05, 0.25, 0.5)) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = []
    for error_rate in error_rates:
        row = [f"error={error_rate:.0%}"]
        for i, name in enumerate(names):
            result = simulate_benchmark(
                settings, name, 1.0,
                config_overrides={"celltype_error_rate": error_rate},
                seed_offset=i,
            )
            row.append(result.normalized_refresh)
        rows.append(row)
    return ExperimentResult(
        experiment_id="abl-celltype",
        title="Cell-type misprediction cost (normalized refresh)",
        headers=["identification"] + names,
        rows=rows,
        notes="reduction degrades gracefully; correctness never depends on it",
    )


def run_wordsize(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = []
    for word_bytes in (8, 4):
        row = [f"{word_bytes} B words"]
        for i, name in enumerate(names):
            result = simulate_benchmark(
                settings, name, 1.0,
                config_overrides={"word_bytes": word_bytes},
                seed_offset=i,
            )
            row.append(result.normalized_refresh)
        rows.append(row)
    return ExperimentResult(
        experiment_id="abl-wordsize",
        title="EBDI word size (normalized refresh, 100% alloc)",
        headers=["variant"] + names,
        rows=rows,
        notes="the paper fixes 8 B words; 4 B trades base overhead for "
              "narrower deltas",
    )


def run_policy(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    """Per-bank vs all-bank AR (paper Sec. IV-A).

    Both policies skip the same refreshes (same energy), but an
    all-bank command blocks the rank until its slowest bank finishes,
    so the recovered *bandwidth* — and hence the IPC gain — shrinks.
    """
    names = _benchmarks(settings)
    rows = []
    for policy in ("per-bank", "all-bank"):
        refresh_row = [f"{policy} refresh"]
        ipc_row = [f"{policy} IPC"]
        for i, name in enumerate(names):
            result = simulate_benchmark(
                settings, name, 1.0,
                config_overrides={"refresh_policy": policy},
                seed_offset=i,
            )
            refresh_row.append(result.normalized_refresh)
            ipc_row.append(result.ipc.normalized_ipc)
        rows.append(refresh_row)
        rows.append(ipc_row)
    return ExperimentResult(
        experiment_id="abl-policy",
        title="Refresh policy: per-bank vs all-bank AR",
        headers=["metric"] + names,
        rows=rows,
        notes="identical skip counts; all-bank recovers less bank time "
              "(rank blocked by its slowest bank)",
    )


def run_tracking(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    names = _benchmarks(settings)
    rows = []
    for mode, label in (("zero-refresh", "access bits + DRAM table"),
                        ("naive", "naive per-write SRAM")):
        row = [label]
        for i, name in enumerate(names):
            result = simulate_benchmark(
                settings, name, 1.0,
                config_overrides={"refresh_mode": mode},
                seed_offset=i,
            )
            row.append(result.normalized_refresh)
        rows.append(row)
    return ExperimentResult(
        experiment_id="abl-tracking",
        title="Tracking design (normalized refresh, 100% alloc)",
        headers=["tracker"] + names,
        rows=rows,
        notes="the optimised design pays only the dirty-set transient vs "
              "the naive tracker; its SRAM is 128x smaller (see 'sram')",
    )
