"""Ablation studies for the design choices DESIGN.md calls out.

* ``abl-stages`` — contribution of each pipeline stage: raw values
  only, +EBDI, +bit-plane, +rotation/cell-type (the full design).
* ``abl-celltype`` — cost of imperfect true/anti identification
  (the paper argues accuracy need not be 100 %: mispredictions only
  forfeit skip opportunity).
* ``abl-wordsize`` — EBDI word size 4 B vs the paper's 8 B.
* ``abl-tracking`` — skip behaviour of the naive per-write tracker
  vs the access-bit protocol (they must agree on steady-state skips;
  their cost difference is the sram experiment).
* ``abl-policy`` — per-bank vs all-bank AR refresh policy.

Each ablation is a variants × benchmarks grid declared as a
:class:`ScenarioSpec` whose outer ``overrides`` axis enumerates the
variant's dotted config overrides; the generic executor expands it row
major, exactly like the hand-written plans it replaced.
"""

from __future__ import annotations

from dataclasses import fields

from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.transform.codec import StageSelection

ABLATION_BENCHMARKS = ("gemsFDTD", "mcf", "bzip2", "omnetpp")

STAGE_VARIANTS = (
    ("raw values", StageSelection.none(), False),
    ("+EBDI", StageSelection(ebdi=True, bitplane=False, rotation=False,
                             celltype_aware=True), False),
    ("+bit-plane", StageSelection(ebdi=True, bitplane=True, rotation=False,
                                  celltype_aware=True), False),
    ("+rotation (full)", StageSelection.full(), True),
)

CELLTYPE_ERROR_RATES = (0.0, 0.05, 0.25, 0.5)

WORD_SIZES = (8, 4)

POLICIES = ("per-bank", "all-bank")

TRACKER_MODES = (("zero-refresh", "access bits + DRAM table"),
                 ("naive", "naive per-write SRAM"))

BENCHMARK_AXIS = SweepAxis(
    "benchmark", source="repro.experiments.ablations:ablation_benchmarks"
)


def ablation_benchmarks(settings):
    """The grid's benchmark columns: the fixed four, pruned to the suite."""
    return [b for b in ABLATION_BENCHMARKS if b in settings.benchmarks] or list(
        settings.benchmarks[:2]
    )


def _stage_overrides(stages: StageSelection, staggered: bool) -> dict:
    """A stage variant as dotted overrides, every flag explicit."""
    dotted = {f"stages.{f.name}": getattr(stages, f.name)
              for f in fields(StageSelection)}
    dotted["staggered_counters"] = staggered
    return dotted


# ----------------------------------------------------------------------
STAGES_SPEC = ScenarioSpec(
    scenario_id="abl-stages",
    description="Pipeline-stage contribution to refresh reduction",
    axes=(
        SweepAxis("overrides", values=[_stage_overrides(stages, staggered)
                                       for _, stages, staggered
                                       in STAGE_VARIANTS]),
        BENCHMARK_AXIS,
    ),
    reduction="variant_grid",
    reduction_params={
        "title": "Pipeline-stage contribution (normalized refresh, "
                 "100% alloc)",
        "labels": [label for label, _, _ in STAGE_VARIANTS],
        "metric": "normalized_refresh",
        "first_header": "variant",
        "notes": "each stage must not hurt; rotation unlocks word-granular "
                 "groups",
    },
)

CELLTYPE_SPEC = ScenarioSpec(
    scenario_id="abl-celltype",
    description="Cell-type misprediction cost across error rates",
    axes=(
        SweepAxis("celltype_error_rate", values=list(CELLTYPE_ERROR_RATES)),
        BENCHMARK_AXIS,
    ),
    reduction="variant_grid",
    reduction_params={
        "title": "Cell-type misprediction cost (normalized refresh)",
        "labels": [f"error={rate:.0%}" for rate in CELLTYPE_ERROR_RATES],
        "metric": "normalized_refresh",
        "first_header": "identification",
        "notes": "reduction degrades gracefully; correctness never depends "
                 "on it",
    },
)

WORDSIZE_SPEC = ScenarioSpec(
    scenario_id="abl-wordsize",
    description="EBDI word size: 8 B (paper) vs 4 B",
    axes=(
        SweepAxis("word_bytes", values=list(WORD_SIZES)),
        BENCHMARK_AXIS,
    ),
    reduction="variant_grid",
    reduction_params={
        "title": "EBDI word size (normalized refresh, 100% alloc)",
        "labels": [f"{wb} B words" for wb in WORD_SIZES],
        "metric": "normalized_refresh",
        "first_header": "variant",
        "notes": "the paper fixes 8 B words; 4 B trades base overhead for "
                 "narrower deltas",
    },
)

POLICY_SPEC = ScenarioSpec(
    scenario_id="abl-policy",
    description="Refresh policy: per-bank vs all-bank AR",
    axes=(
        SweepAxis("refresh_policy", values=list(POLICIES)),
        BENCHMARK_AXIS,
    ),
    reduction="repro.experiments.ablations:reduce_policy",
)

TRACKING_SPEC = ScenarioSpec(
    scenario_id="abl-tracking",
    description="Tracking design: access-bit protocol vs naive tracker",
    axes=(
        SweepAxis("refresh_mode", values=[mode for mode, _ in TRACKER_MODES]),
        BENCHMARK_AXIS,
    ),
    reduction="variant_grid",
    reduction_params={
        "title": "Tracking design (normalized refresh, 100% alloc)",
        "labels": [label for _, label in TRACKER_MODES],
        "metric": "normalized_refresh",
        "first_header": "tracker",
        "notes": "the optimised design pays only the dirty-set transient vs "
                 "the naive tracker; its SRAM is 128x smaller (see 'sram')",
    },
)


def reduce_policy(spec, settings, axes, results):
    """Both policies skip the same refreshes (same energy), but an
    all-bank command blocks the rank until its slowest bank finishes,
    so the recovered *bandwidth* — and hence the IPC gain — shrinks.
    """
    from repro.experiments.runner import ExperimentResult

    names = axes["benchmark"]
    it = iter(results)
    rows = []
    for policy in axes["refresh_policy"]:
        variant = [next(it) for _ in names]
        rows.append([f"{policy} refresh"]
                    + [r.normalized_refresh for r in variant])
        rows.append([f"{policy} IPC"]
                    + [r.ipc.normalized_ipc for r in variant])
    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title="Refresh policy: per-bank vs all-bank AR",
        headers=["metric"] + names,
        rows=rows,
        notes="identical skip counts; all-bank recovers less bank time "
              "(rank blocked by its slowest bank)",
    )


# ----------------------------------------------------------------------
# serial entry points (uncached), kept for the bench suite
# ----------------------------------------------------------------------
def _run(spec, settings):
    from repro.scenarios.executor import as_experiment

    return as_experiment(spec)(settings)


def run_stages(settings=None):
    return _run(STAGES_SPEC, settings)


def run_celltype(settings=None):
    return _run(CELLTYPE_SPEC, settings)


def run_wordsize(settings=None):
    return _run(WORDSIZE_SPEC, settings)


def run_policy(settings=None):
    return _run(POLICY_SPEC, settings)


def run_tracking(settings=None):
    return _run(TRACKING_SPEC, settings)
