"""Experiment runners — one per table/figure of the paper's evaluation.

========== ===============================================================
id          artifact
========== ===============================================================
fig04       refresh power share vs density/temperature (Fig. 4)
tab01       average allocated memory of the three traces (Table I)
fig05       memory-utilisation CDFs (Fig. 5)
fig06       zero fractions at 1 KB / 1 B granularity (Fig. 6)
fig14       normalised refresh ops, four allocation scenarios (Fig. 14)
fig15       normalised refresh energy incl. overheads (Fig. 15)
fig16       normal vs extended temperature (Fig. 16)
fig17       normalised IPC (Fig. 17)
fig18       row-buffer size sensitivity (Fig. 18)
fig19       Smart Refresh vs ZERO-REFRESH scalability (Fig. 19)
sram        tracking-structure costs (Sec. IV-B)
abl-*       ablations (pipeline stages, cell-type accuracy, word size,
            tracking design, AR policy, compression-vs-skippability)
ext-*       extensions (hybrid charge+recency engine, VRT exposure of
            retention-aware skipping, latency-hiding scheduler compare)
========== ===============================================================

Run from the command line::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all --quick
"""

from repro.experiments import (
    abl_compression,
    ablations,
    ext_hybrid,
    ext_scheduling,
    ext_vrt,
    fig04,
    fig05,
    fig06,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    sram_overhead,
    tab01,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
    sweep_benchmarks,
)

REGISTRY = {
    "fig04": fig04.run,
    "tab01": tab01.run,
    "fig05": fig05.run,
    "fig06": fig06.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "sram": sram_overhead.run,
    "abl-stages": ablations.run_stages,
    "abl-celltype": ablations.run_celltype,
    "abl-wordsize": ablations.run_wordsize,
    "abl-tracking": ablations.run_tracking,
    "abl-policy": ablations.run_policy,
    "ext-hybrid": ext_hybrid.run,
    "abl-compression": abl_compression.run,
    "ext-vrt": ext_vrt.run,
    "ext-scheduling": ext_scheduling.run,
}

__all__ = [
    "ExperimentResult",
    "ExperimentSettings",
    "REGISTRY",
    "simulate_benchmark",
    "sweep_benchmarks",
]
