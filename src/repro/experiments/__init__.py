"""Experiment runners — one per table/figure of the paper's evaluation.

========== ===============================================================
id          artifact
========== ===============================================================
fig04       refresh power share vs density/temperature (Fig. 4)
tab01       average allocated memory of the three traces (Table I)
fig05       memory-utilisation CDFs (Fig. 5)
fig06       zero fractions at 1 KB / 1 B granularity (Fig. 6)
fig14       normalised refresh ops, four allocation scenarios (Fig. 14)
fig15       normalised refresh energy incl. overheads (Fig. 15)
fig16       normal vs extended temperature (Fig. 16)
fig17       normalised IPC (Fig. 17)
fig18       row-buffer size sensitivity (Fig. 18)
fig19       Smart Refresh vs ZERO-REFRESH scalability (Fig. 19)
sram        tracking-structure costs (Sec. IV-B)
abl-*       ablations (pipeline stages, cell-type accuracy, word size,
            tracking design, AR policy, compression-vs-skippability)
ext-*       extensions (hybrid charge+recency engine, VRT exposure of
            retention-aware skipping, latency-hiding scheduler compare)
========== ===============================================================

Run from the command line::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all --quick --jobs 4

or programmatically through :mod:`repro.api`.  Execution goes through
the parallel, cache-aware engine in :mod:`repro.experiments.engine`;
see its docstring for the ``plan``/``reduce`` split and the result
cache.
"""

from repro.experiments import (
    abl_compression,
    ablations,
    ext_hybrid,
    ext_scheduling,
    ext_vrt,
    fig04,
    fig05,
    fig06,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    sram_overhead,
    tab01,
)
from repro.experiments.engine import Experiment, Runner, SimJob
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
    sweep_benchmarks,
)

REGISTRY = {
    "fig04": Experiment("fig04", run=fig04.run),
    "tab01": Experiment("tab01", run=tab01.run),
    "fig05": Experiment("fig05", run=fig05.run),
    "fig06": Experiment("fig06", run=fig06.run),
    "fig14": fig14.EXPERIMENT,
    "fig15": fig15.EXPERIMENT,
    "fig16": Experiment("fig16", run=fig16.run),
    "fig17": fig17.EXPERIMENT,
    "fig18": Experiment("fig18", run=fig18.run),
    "fig19": fig19.EXPERIMENT,
    "sram": Experiment("sram", run=sram_overhead.run),
    "abl-stages": ablations.STAGES,
    "abl-celltype": ablations.CELLTYPE,
    "abl-wordsize": ablations.WORDSIZE,
    "abl-tracking": ablations.TRACKING,
    "abl-policy": ablations.POLICY,
    "ext-hybrid": Experiment("ext-hybrid", run=ext_hybrid.run),
    "abl-compression": Experiment("abl-compression", run=abl_compression.run),
    "ext-vrt": Experiment("ext-vrt", run=ext_vrt.run),
    "ext-scheduling": Experiment("ext-scheduling", run=ext_scheduling.run),
}
"""Every experiment, by id.  Values are callable (``REGISTRY[id](settings)``
runs serially without caching); engine-aware callers hand them to a
:class:`~repro.experiments.engine.Runner` or use :mod:`repro.api`."""

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSettings",
    "REGISTRY",
    "Runner",
    "SimJob",
    "simulate_benchmark",
    "sweep_benchmarks",
]
