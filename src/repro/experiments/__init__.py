"""Experiment runners — one per table/figure of the paper's evaluation.

========== ===============================================================
id          artifact
========== ===============================================================
fig04       refresh power share vs density/temperature (Fig. 4)
tab01       average allocated memory of the three traces (Table I)
fig05       memory-utilisation CDFs (Fig. 5)
fig06       zero fractions at 1 KB / 1 B granularity (Fig. 6)
fig14       normalised refresh ops, four allocation scenarios (Fig. 14)
fig15       normalised refresh energy incl. overheads (Fig. 15)
fig16       normal vs extended temperature (Fig. 16)
fig17       normalised IPC (Fig. 17)
fig18       row-buffer size sensitivity (Fig. 18)
fig19       Smart Refresh vs ZERO-REFRESH scalability (Fig. 19)
sram        tracking-structure costs (Sec. IV-B)
abl-*       ablations (pipeline stages, cell-type accuracy, word size,
            tracking design, AR policy, compression-vs-skippability)
ext-*       extensions (hybrid charge+recency engine, VRT exposure of
            retention-aware skipping, latency-hiding scheduler compare)
========== ===============================================================

Run from the command line::

    python -m repro.experiments fig14 --quick
    python -m repro.experiments all --quick --jobs 4
    python -m repro.experiments sweep --axis temperature=NORMAL,EXTENDED

or programmatically through :mod:`repro.api`.  Every experiment is a
declarative :class:`~repro.scenarios.spec.ScenarioSpec` (``SCENARIOS``)
expanded by the generic executor in :mod:`repro.scenarios.executor`
into the parallel, cache-aware engine of
:mod:`repro.experiments.engine`; see their docstrings for the
``plan``/``reduce`` split and the result cache.
"""

from repro.experiments import (
    abl_compression,
    ablations,
    ext_hybrid,
    ext_scheduling,
    ext_vrt,
    fig04,
    fig05,
    fig06,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    sram_overhead,
    tab01,
)
from repro.experiments.engine import Experiment, Runner, SimJob
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
    sweep_benchmarks,
)
from repro.scenarios.executor import as_experiment

SCENARIOS = {
    spec.scenario_id: spec
    for spec in (
        fig04.SPEC,
        tab01.SPEC,
        fig05.SPEC,
        fig06.SPEC,
        fig14.SPEC,
        fig15.SPEC,
        fig16.SPEC,
        fig17.SPEC,
        fig18.SPEC,
        fig19.SPEC,
        sram_overhead.SPEC,
        ablations.STAGES_SPEC,
        ablations.CELLTYPE_SPEC,
        ablations.WORDSIZE_SPEC,
        ablations.TRACKING_SPEC,
        ablations.POLICY_SPEC,
        ext_hybrid.SPEC,
        abl_compression.SPEC,
        ext_vrt.SPEC,
        ext_scheduling.SPEC,
    )
}
"""Every registered scenario spec, by id, in the paper's presentation
order.  The specs are pure data — serialize one with ``to_json()``,
tweak it, and run it through ``repro sweep`` or ``repro.api.run``."""

REGISTRY = {
    scenario_id: as_experiment(spec)
    for scenario_id, spec in SCENARIOS.items()
}
"""Every experiment, by id.  Values are callable (``REGISTRY[id](settings)``
runs serially without caching); engine-aware callers hand them to a
:class:`~repro.experiments.engine.Runner` or use :mod:`repro.api`."""

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSettings",
    "REGISTRY",
    "Runner",
    "SCENARIOS",
    "SimJob",
    "simulate_benchmark",
    "sweep_benchmarks",
]
