"""Shared experiment harness.

Experiment modules either describe their work to the engine as
``plan(settings) -> list[SimJob]`` / ``reduce(settings, results)``
(see :mod:`repro.experiments.engine`) or expose the legacy
``run(settings) -> ExperimentResult``; :class:`ExperimentSettings`
fixes the simulation scale so the same code serves quick benchmark
runs (small memory, few benchmarks) and full paper-scale sweeps.

:func:`simulate_benchmark` is the workhorse: one full ZERO-REFRESH
simulation of a benchmark at an allocation level, returning the
:class:`~repro.core.metrics.RunResult` the figure modules aggregate.
It is the default job body the engine fans out over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.dram.timing import TemperatureMode
from repro.workloads.benchmarks import BENCHMARK_NAMES, benchmark_profile

QUICK_BENCHMARKS = (
    "gemsFDTD", "sphinx3", "libquantum", "mcf", "gcc",
    "bzip2", "omnetpp", "sp.C", "tpch.q1",
)
"""Representative subset spanning the reduction range, for quick runs."""


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiments.

    ``memory_bytes`` is the simulated capacity (ratios to the paper's
    32 GB are preserved by construction); ``windows`` the measured
    retention windows (paper: 8); ``benchmarks`` the suite slice.
    """

    memory_bytes: int = 32 << 20
    windows: int = 8
    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    temperature: TemperatureMode = TemperatureMode.EXTENDED
    rows_per_ar: int = 128
    seed: int = 7

    @classmethod
    def quick(cls, **overrides) -> "ExperimentSettings":
        """Small scale for benches/CI: 16 MB, 2 windows, 9 benchmarks.

        ``rows_per_ar`` drops to 32 so the scaled memory still has many
        AR sets per bank; with the paper's 128 a 16 MB memory has only
        4 sets per bank and the write traffic's dirty-set floor
        dominates every scenario.
        """
        defaults = dict(
            memory_bytes=16 << 20, windows=2, benchmarks=QUICK_BENCHMARKS,
            rows_per_ar=32,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def from_dict(cls, overrides=None, quick: bool = False) -> "ExperimentSettings":
        """Build settings from a plain (JSON-decoded) override mapping.

        Accepts the dataclass field names plus two wire-friendly forms:
        ``memory_mb`` (converted to ``memory_bytes``), ``temperature``
        as a case-insensitive mode name, and ``benchmarks`` as any
        sequence.  Unknown keys raise ``ValueError`` so a mistyped
        request field fails loudly instead of silently running the
        default scale.  ``quick=True`` starts from :meth:`quick`.
        """
        data = dict(overrides or {})
        if "memory_mb" in data:
            if "memory_bytes" in data:
                raise ValueError("give memory_mb or memory_bytes, not both")
            data["memory_bytes"] = int(data.pop("memory_mb")) << 20
        if "benchmarks" in data:
            data["benchmarks"] = tuple(str(b) for b in data["benchmarks"])
        if "temperature" in data:
            # TemperatureMode.parse raises ValueError listing the valid
            # mode names — the same path scenario overrides resolve
            # through, so a typo fails identically everywhere
            data["temperature"] = TemperatureMode.parse(data["temperature"])
        field_names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise ValueError(
                f"unknown settings field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(field_names))}"
            )
        return cls.quick(**data) if quick else cls(**data)

    def config(self, **overrides) -> SystemConfig:
        return SystemConfig.scaled(
            total_bytes=self.memory_bytes,
            temperature=self.temperature,
            seed=overrides.pop("seed", self.seed),
            rows_per_ar=overrides.pop("rows_per_ar", self.rows_per_ar),
            **overrides,
        )


@dataclass
class ExperimentResult:
    """Printable result of one experiment."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: str = ""
    paper_reference: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        from repro.analysis.report import render_table

        parts = [f"[{self.experiment_id}] {self.title}",
                 render_table(self.headers, self.rows)]
        if self.paper_reference:
            ref = ", ".join(f"{k}={v}" for k, v in self.paper_reference.items())
            parts.append(f"paper: {ref}")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """The table as CSV (headers + rows), for external plotting."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_dict(self) -> Dict:
        """Plain-python form of the result (JSON-able)."""

        def plain(value):
            if hasattr(value, "item"):  # numpy scalars
                return value.item()
            return value

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[plain(v) for v in row] for row in self.rows],
            "notes": self.notes,
            "paper_reference": {k: plain(v)
                                for k, v in self.paper_reference.items()},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The result as a JSON document (machine-readable ``render``)."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def save_csv(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_csv())


def simulate_benchmark(
    settings: ExperimentSettings,
    benchmark: str,
    allocated_fraction: float = 1.0,
    config_overrides: Optional[dict] = None,
    seed_offset: int = 0,
) -> RunResult:
    """Run one full system simulation and return its results."""
    overrides = dict(config_overrides or {})
    config = settings.config(seed=settings.seed + seed_offset, **overrides)
    system = ZeroRefreshSystem(config)
    profile = benchmark_profile(benchmark)
    system.populate(profile, allocated_fraction=allocated_fraction)
    return system.run_windows(settings.windows)


def sweep_benchmarks(
    settings: ExperimentSettings,
    allocated_fraction: float = 1.0,
    config_overrides: Optional[dict] = None,
) -> Dict[str, RunResult]:
    """Simulate every benchmark in the settings at one allocation level."""
    results = {}
    for i, name in enumerate(settings.benchmarks):
        results[name] = simulate_benchmark(
            settings, name, allocated_fraction, config_overrides, seed_offset=i
        )
    return results
