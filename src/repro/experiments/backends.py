"""Execution backends: *how* the engine's cache misses actually run.

The :class:`~repro.experiments.engine.Runner` owns *policy* — cache
lookups, the journal, retry/backoff bookkeeping, quarantine, span
minting — and delegates the *mechanics* of running the pending jobs to
an :class:`ExecutionBackend`:

``serial``
    In the driving process, one job at a time.  The fallback every
    other backend degrades to when its machinery breaks.
``pool``
    A ``ProcessPoolExecutor`` on this host — the historical ``--jobs N``
    path, now one backend among peers.
``cluster``
    :class:`repro.cluster.backend.ClusterBackend` — N worker processes
    on this or other hosts, joined over a length-prefixed JSON frame
    protocol with lease-based heartbeats and requeue-on-loss.

Backends call back into the runner for every bookkeeping decision
(``_armed_fault``/``_attempt_args`` per submission, ``_complete`` /
``_note_failure`` / ``_quarantine`` per outcome), which is what keeps
results, journals, merged metrics and span trees byte-identical across
backends: the runner makes the same calls in plan order whatever
vehicle executed the job body.

Every backend funnels the job body itself through one bootstrap,
:func:`repro.experiments.worker.run_job_in_worker`.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional, Tuple

from repro.experiments.worker import run_job_in_worker
from repro.obs import get_probes

try:  # pragma: no cover - typing nicety only
    from typing import Protocol
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "ExecutionBackend",
    "PoolBackend",
    "SerialBackend",
    "resolve_backend",
]

BACKEND_NAMES = ("serial", "pool", "cluster")
"""The backend names the CLI/serve layers accept."""


class ExecutionBackend(Protocol):
    """What the engine needs from an execution vehicle.

    ``execute`` runs every entry of ``pending`` (``key -> SimJob``) to
    completion or quarantine, reporting outcomes through the runner's
    bookkeeping methods; it returns nothing.  Backends may keep
    expensive machinery (pools, sockets, spawned workers) alive across
    ``execute`` calls — ``close`` releases it.
    """

    name: str

    def execute(self, runner, settings, pending, results, metrics,
                timings) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class SerialBackend:
    """Run pending jobs in-process, one at a time, with retry/backoff."""

    name = "serial"

    def execute(self, runner, settings, pending, results, metrics,
                timings) -> None:
        for key, job in pending.items():
            while True:
                fault = runner._armed_fault(key, in_process=True)
                wire, attempt = runner._attempt_args(key)
                try:
                    result, snapshot, wall_s, worker, spans = (
                        run_job_in_worker(settings, job, runner.watchdog,
                                          fault, wire, attempt)
                    )
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    backoff = runner._note_failure(key, job, exc)
                    if backoff is None:
                        break
                    runner._sleep(backoff)
                    continue
                runner._complete(key, result, snapshot, wall_s, worker,
                                 results, metrics, timings, spans)
                break

    def close(self) -> None:
        pass


class PoolBackend:
    """Local ``ProcessPoolExecutor`` fan-out with crash attribution.

    A key with a worker-crash on record is a *suspect* and re-runs
    alone in its own fresh pool, so a repeat crash attributes
    unambiguously (and collateral victims of a shared pool break
    exonerate themselves by completing solo).  If the pool keeps dying
    before any job makes progress, the remainder falls back to
    in-process execution.
    """

    name = "pool"

    _POOL_TICK_S = 0.05

    def execute(self, runner, settings, pending, results, metrics,
                timings) -> None:
        queue = dict(pending)
        stalls = 0
        while queue:
            suspects = [k for k in queue if runner._crashes.get(k, 0) > 0]
            batch_keys = suspects[:1] if suspects else list(queue)
            batch = {k: queue[k] for k in batch_keys}
            completed, quarantined, progressed = self._run_pool_batch(
                runner, settings, batch, results, metrics, timings
            )
            for key in completed | quarantined:
                queue.pop(key, None)
            if progressed:
                stalls = 0
                continue
            stalls += 1
            if stalls >= 2:
                # the pool dies before anything runs (environment-level
                # breakage, not one poisoned job): finish in-process,
                # where a kill fault degrades to a plain crash
                SerialBackend().execute(runner, settings, dict(queue),
                                        results, metrics, timings)
                return

    def _run_pool_batch(self, runner, settings, batch, results, metrics,
                        timings) -> Tuple[set, set, bool]:
        completed: set = set()
        quarantined: set = set()
        crash_seen = False
        workers = min(runner.jobs, len(batch))
        pool = ProcessPoolExecutor(max_workers=workers)
        inflight: Dict[object, str] = {}
        started: Dict[str, float] = {}
        not_before: Dict[str, float] = {}
        waiting = list(batch.items())
        broke = False
        try:
            while inflight or waiting:
                now = runner._clock()
                if waiting:
                    still = []
                    for key, job in waiting:
                        if not_before.get(key, 0.0) > now:
                            still.append((key, job))
                            continue
                        fault = runner._armed_fault(key, in_process=False)
                        wire, attempt = runner._attempt_args(key)
                        try:
                            fut = pool.submit(run_job_in_worker, settings,
                                              job, runner.watchdog, fault,
                                              wire, attempt)
                        except Exception:  # noqa: BLE001 - pool already dead
                            runner._tries[key] -= 1
                            still.append((key, job))
                            broke = True
                            break
                        inflight[fut] = key
                    waiting = still
                    if broke:
                        break
                if not inflight:
                    # everything left is backing off
                    delay = min(not_before.values()) - runner._clock()
                    runner._sleep(max(delay, 0.001))
                    continue
                done, _ = wait(set(inflight), timeout=self._POOL_TICK_S,
                               return_when=FIRST_COMPLETED)
                now = runner._clock()
                for fut, key in inflight.items():
                    if fut not in done and key not in started and fut.running():
                        started[key] = now
                broken_keys = set()
                for fut in done:
                    key = inflight.pop(fut)
                    started.pop(key, None)
                    try:
                        result, snapshot, wall_s, worker, spans = fut.result()
                    except BrokenProcessPool:
                        broken_keys.add(key)
                        continue
                    except Exception as exc:  # noqa: BLE001 - retry boundary
                        backoff = runner._note_failure(key, batch[key], exc)
                        if backoff is None:
                            quarantined.add(key)
                        else:
                            not_before[key] = runner._clock() + backoff
                            waiting.append((key, batch[key]))
                        continue
                    runner._complete(key, result, snapshot, wall_s, worker,
                                     results, metrics, timings, spans)
                    completed.add(key)
                if broken_keys:
                    # the pool is dead; every job it still held shared
                    # its fate — each takes a crash on its record and
                    # re-runs alone (see execute)
                    broke = True
                    crash_seen = True
                    victims = broken_keys | set(inflight.values())
                    inflight.clear()
                    runner.stats.worker_crashes += 1
                    get_probes().count("engine.worker_crashes")
                    for key in victims:
                        runner._record_failed_attempt(
                            key, "worker process crashed")
                        crashes = runner._crashes[key] = (
                            runner._crashes.get(key, 0) + 1
                        )
                        if crashes >= runner.retry.max_worker_crashes:
                            runner._quarantine(
                                key, batch[key],
                                error=(f"worker process crashed {crashes}x "
                                       f"running this job"),
                            )
                            quarantined.add(key)
                    break
                if runner.timeout_s is not None:
                    overdue = [k for k, t0 in started.items()
                               if now - t0 > runner.timeout_s]
                    if overdue:
                        key = overdue[0]
                        runner.stats.timeouts += 1
                        get_probes().count("engine.job_timeouts")
                        exc = TimeoutError(
                            f"job exceeded per-job timeout of "
                            f"{runner.timeout_s}s"
                        )
                        backoff = runner._note_failure(key, batch[key], exc)
                        if backoff is None:
                            quarantined.add(key)
                        # the stuck worker cannot be reclaimed; recycle
                        # the pool (innocent in-flight jobs re-run in
                        # the next batch)
                        broke = True
                        break
        finally:
            if broke:
                self._kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        progressed = bool(completed or quarantined or crash_seen)
        return completed, quarantined, progressed

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear down a broken/stuck pool without waiting on its workers."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - python < 3.9
            pool.shutdown(wait=False)

    def close(self) -> None:
        # pools are per-execute (crash attribution rebuilds them), so
        # there is nothing long-lived to release
        pass


def resolve_backend(
    backend=None,
    *,
    workers: Optional[int] = None,
    worker_address: Optional[str] = None,
):
    """Turn a backend name (or ready instance) into an instance.

    ``None`` returns ``None`` — the runner then picks serial or pool
    per pending batch, the historical ``jobs``-driven behaviour.  The
    ``cluster`` name imports lazily so plain runs never pay for the
    socket machinery.  ``workers``/``worker_address`` only apply to
    ``cluster`` (how many local workers to spawn, or the address to
    bind and wait for ``repro worker --connect`` peers on).
    """
    if backend is None:
        if workers is not None or worker_address is not None:
            raise ValueError(
                "workers/worker_address need backend='cluster'"
            )
        return None
    if not isinstance(backend, str):
        return backend
    if backend == "cluster":
        from repro.cluster.backend import ClusterBackend

        return ClusterBackend(workers=workers, address=worker_address)
    if workers is not None or worker_address is not None:
        raise ValueError("workers/worker_address need backend='cluster'")
    if backend == "serial":
        return SerialBackend()
    if backend == "pool":
        return PoolBackend()
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
    )
