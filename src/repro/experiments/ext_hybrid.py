"""Extension experiment: hybrid charge + recency refresh (ext-hybrid).

Extends the Fig. 19 comparison with the combination the paper's
Sec. VI-C invites: ZERO-REFRESH and Smart Refresh skip *disjoint*
refreshes (value statistics vs activation recency), so a hybrid engine
can claim both.  The sweep reuses Fig. 19's fixed-working-set setup and
reports all three mechanisms across capacities.

The hybrid needs a retention guard band (schedule at 32 ms on 64 ms
cells); see :mod:`repro.baselines.hybrid`.
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.smart_refresh import SmartRefreshTracker
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.experiments.fig19 import CAPACITIES_MB, smart_refresh_feed
from repro.scenarios.resolve import config_for
from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.sim.kernel import SimKernel
from repro.sim.schemes import SmartRefreshScheme
from repro.workloads.benchmarks import benchmark_profile

SPEC = ScenarioSpec(
    scenario_id="ext-hybrid",
    description="Hybrid charge+recency refresh across capacities (mcf)",
    axes=(SweepAxis("params.cap_mb", values=list(CAPACITIES_MB)),),
    point="repro.experiments.ext_hybrid:capacity_point",
    point_params={"benchmark": "mcf"},
    reduction="repro.experiments.ext_hybrid:reduce_scenario",
)


def capacity_point(settings, job) -> Tuple[float, float, float]:
    """One capacity: (smart, zero-refresh, hybrid) normalised refresh."""
    cap_mb = int(job.params["cap_mb"])
    benchmark = str(job.params["benchmark"])
    profile = benchmark_profile(benchmark)
    smallest_pages = (CAPACITIES_MB[0] << 20) // 4096
    ws_pages_abs = int(0.55 * smallest_pages)
    accesses = ws_pages_abs * 6
    by_mode = {}
    smart_norm = None
    for mode in ("zero-refresh", "hybrid"):
        config = config_for(settings, memory_bytes=cap_mb << 20,
                            refresh_mode=mode)
        system = ZeroRefreshSystem(config)
        system.populate(
            profile, allocated_fraction=1.0,
            working_set_fraction=ws_pages_abs / system.allocator.total_pages,
            accesses_per_window=accesses, write_fraction=0.08,
        )
        result = system.run_windows(settings.windows)
        if mode == "zero-refresh":
            # Smart Refresh on the same machine/traffic for context,
            # driven through the shared kernel.
            tracker = SmartRefreshTracker(config.geometry)
            kernel = SimKernel(
                SmartRefreshScheme(tracker,
                                   smart_refresh_feed(system, config)),
                window_s=config.timing.tret_s, name="smart-refresh",
            )
            kernel.run(settings.windows)
            smart_norm = tracker.stats.normalized_refresh()
        by_mode[mode] = result.normalized_refresh
    return smart_norm, by_mode["zero-refresh"], by_mode["hybrid"]


def reduce_scenario(spec, settings, axes, results):
    from repro.experiments.runner import ExperimentResult

    benchmark = spec.point_params_dict["benchmark"]
    rows = [
        [f"{cap_mb} GB", smart, zero, hybrid]
        for cap_mb, (smart, zero, hybrid)
        in zip(axes["params.cap_mb"], results)
    ]
    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title=f"Hybrid charge+recency refresh across capacities ({benchmark})",
        headers=["capacity", "smart refresh", "zero-refresh", "hybrid"],
        rows=rows,
        notes=(
            "hybrid <= zero-refresh everywhere; the recency component "
            "helps most where Smart Refresh alone is strong (small "
            "capacities), needs a 2x retention guard band, and is "
            "granularity-limited: a skip requires the whole 8-row "
            "rotation diagonal activated"
        ),
    )


def run(settings=None, benchmark: str = "mcf"):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    if benchmark != "mcf":
        spec = replace(SPEC, point_params={"benchmark": benchmark})
    return as_experiment(spec)(settings)
