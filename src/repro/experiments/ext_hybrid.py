"""Extension experiment: hybrid charge + recency refresh (ext-hybrid).

Extends the Fig. 19 comparison with the combination the paper's
Sec. VI-C invites: ZERO-REFRESH and Smart Refresh skip *disjoint*
refreshes (value statistics vs activation recency), so a hybrid engine
can claim both.  The sweep reuses Fig. 19's fixed-working-set setup and
reports all three mechanisms across capacities.

The hybrid needs a retention guard band (schedule at 32 ms on 64 ms
cells); see :mod:`repro.baselines.hybrid`.
"""

from __future__ import annotations

from repro.baselines.smart_refresh import SmartRefreshTracker
from repro.core.config import SystemConfig
from repro.core.zero_refresh import ZeroRefreshSystem
from repro.experiments.fig19 import CAPACITIES_MB, smart_refresh_feed
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.sim.kernel import SimKernel
from repro.sim.schemes import SmartRefreshScheme
from repro.workloads.benchmarks import benchmark_profile


def run(settings: ExperimentSettings = ExperimentSettings(),
        benchmark: str = "mcf") -> ExperimentResult:
    profile = benchmark_profile(benchmark)
    smallest_pages = (CAPACITIES_MB[0] << 20) // 4096
    ws_pages_abs = int(0.55 * smallest_pages)
    accesses = ws_pages_abs * 6
    rows = []
    for cap_mb in CAPACITIES_MB:
        row = [f"{cap_mb} GB"]
        smart_norm = None
        for mode in ("zero-refresh", "hybrid"):
            config = SystemConfig.scaled(
                total_bytes=cap_mb << 20, temperature=settings.temperature,
                seed=settings.seed, rows_per_ar=settings.rows_per_ar,
                refresh_mode=mode,
            )
            system = ZeroRefreshSystem(config)
            system.populate(
                profile, allocated_fraction=1.0,
                working_set_fraction=ws_pages_abs / system.allocator.total_pages,
                accesses_per_window=accesses, write_fraction=0.08,
            )
            result = system.run_windows(settings.windows)
            if mode == "zero-refresh":
                # Smart Refresh on the same machine/traffic for context,
                # driven through the shared kernel.
                tracker = SmartRefreshTracker(config.geometry)
                kernel = SimKernel(
                    SmartRefreshScheme(tracker,
                                       smart_refresh_feed(system, config)),
                    window_s=config.timing.tret_s, name="smart-refresh",
                )
                kernel.run(settings.windows)
                smart_norm = tracker.stats.normalized_refresh()
            row.append(result.normalized_refresh)
        row.insert(1, smart_norm)
        rows.append(row)
    return ExperimentResult(
        experiment_id="ext-hybrid",
        title=f"Hybrid charge+recency refresh across capacities ({benchmark})",
        headers=["capacity", "smart refresh", "zero-refresh", "hybrid"],
        rows=rows,
        notes=(
            "hybrid <= zero-refresh everywhere; the recency component "
            "helps most where Smart Refresh alone is strong (small "
            "capacities), needs a 2x retention guard band, and is "
            "granularity-limited: a skip requires the whole 8-row "
            "rotation diagonal activated"
        ),
    )
