"""Fig. 6 — zero fractions of benchmark memory at 1 KB and 1 B granularity.

The paper measures memory dumps of accessed pages: on average only
~2.3 % of 1 KB blocks are entirely zero, yet ~43 % of bytes are zero —
the motivation for value transformation (fine-grained zeros exist but
are not row-aligned).

One shared RNG streams every benchmark's pages sequentially, so this is
a single table point rather than a benchmark axis.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import ScenarioSpec

SPEC = ScenarioSpec(
    scenario_id="fig06",
    description="Zero fractions of benchmark memory at 1 KB and 1 B",
    point="repro.experiments.fig06:zero_fraction_point",
    point_params={"pages_per_benchmark": 1024},
    reduction="table",
    reduction_params={
        "title": "Zero fraction at 1 KB blocks and single bytes "
                 "(raw content)",
        "headers": ["benchmark", "zero 1KB blocks", "zero bytes"],
        "paper_reference": {"avg zero 1KB": 0.023, "avg zero bytes": 0.43},
    },
)


def zero_fraction_point(settings, job) -> list:
    """Every benchmark's zero fractions, one shared RNG stream."""
    from repro.workloads.benchmarks import benchmark_profile
    from repro.workloads.synthetic import (
        zero_block_fraction,
        zero_byte_fraction,
    )

    pages_per_benchmark = int(job.params["pages_per_benchmark"])
    rng = np.random.default_rng(settings.seed)
    rows = []
    byte_fracs, block_fracs = [], []
    for name in settings.benchmarks:
        profile = benchmark_profile(name)
        pages = profile.generate_pages(pages_per_benchmark, rng)
        lines = pages.reshape(-1, pages.shape[-1])
        zb = zero_byte_fraction(lines)
        z1k = zero_block_fraction(lines, block_bytes=1024)
        byte_fracs.append(zb)
        block_fracs.append(z1k)
        rows.append([name, z1k, zb])
    rows.append(["average", float(np.mean(block_fracs)),
                 float(np.mean(byte_fracs))])
    return rows


def run(settings=None, pages_per_benchmark: int = 1024):
    from dataclasses import replace

    from repro.scenarios.executor import as_experiment

    spec = SPEC
    if pages_per_benchmark != 1024:
        spec = replace(
            SPEC, point_params={"pages_per_benchmark": pages_per_benchmark}
        )
    return as_experiment(spec)(settings)
