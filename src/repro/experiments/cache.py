"""Content-addressed on-disk result cache for the experiment engine.

Every simulation point is identified by a *stable* digest of everything
that determines its outcome: the :class:`~repro.experiments.runner.ExperimentSettings`,
the job description (benchmark, allocation, config overrides, seed) and
a code-version fingerprint of the ``repro`` source tree.  The digest is
a SHA-256 over a canonical JSON encoding, so it is identical across
processes and interpreter runs (no dependence on ``PYTHONHASHSEED``,
dict order or ``repr`` quirks) — which is what lets a
:class:`~repro.experiments.engine.Runner` in one process reuse results
computed by workers in another, or by yesterday's run.

Layout on disk::

    <cache-dir>/
        v2/<digest[:2]>/<digest>.pkl    enveloped pickle payloads
                                        (``{"result", "metrics"}``: the
                                        result + its captured probe
                                        snapshot)
        manifests/<run-id>.jsonl        run manifests (written by the CLI)

Entries are framed with the :mod:`repro.store.envelope` integrity
header (magic, schema, payload length, SHA-256), so a reader can tell
a truncated or bit-flipped entry from a wrong-schema one and degrade
to a miss with the damage classified.  Writes that hit the disk's
failure modes (ENOSPC, EIO) put the cache into *degraded* mode for the
rest of the process: the run completes uncached, with a single warning
and the ``store.degraded`` gauge set, instead of crashing.

The default cache directory is ``$REPRO_CACHE_DIR`` or ``.repro-cache``
under the current working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import warnings
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Iterator, Optional

STALE_TMP_AGE_S = 60.0
"""A writer temp file older than this is crash debris, not a live put."""

CACHE_SCHEMA = 2
"""Bump to invalidate every cached result on an incompatible change.

v2: payloads became ``{"result": ..., "metrics": <probe snapshot>}`` so
cache hits can replay the metrics captured when the job first ran.
"""

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    return Path(os.environ.get(_ENV_CACHE_DIR, _DEFAULT_CACHE_DIR))


# ----------------------------------------------------------------------
# canonical encoding + digests
# ----------------------------------------------------------------------
def canonicalize(obj):
    """Reduce ``obj`` to a JSON-able structure with deterministic form.

    Handles the types that appear in settings and job descriptions:
    primitives, sequences, mappings (sorted by key), enums and
    dataclasses (encoded with their class name so two settings types
    with the same field values do not collide).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return ["enum", type(obj).__name__, obj.name]
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {f.name: canonicalize(getattr(obj, f.name)) for f in fields(obj)}
        return ["dataclass", type(obj).__name__, body]
    if isinstance(obj, dict):
        return ["dict", sorted((str(k), canonicalize(v)) for k, v in obj.items())]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalize(v) for v in obj]]
    if isinstance(obj, (bytes, bytearray)):
        return ["bytes", hashlib.sha256(bytes(obj)).hexdigest()]
    if hasattr(obj, "tolist"):  # numpy scalars / arrays
        return canonicalize(obj.tolist())
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!r}: {obj!r}"
    )


def stable_digest(*parts) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``."""
    payload = json.dumps(
        [canonicalize(p) for p in parts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_code_version: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the ``repro`` source tree (cached per process).

    Any edit to any module under ``src/repro`` changes the fingerprint,
    so stale results can never be served after the simulator changes.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()
    return _code_version


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle store addressed by :func:`stable_digest` keys.

    Corrupt or unreadable entries are treated as misses and removed, so
    an interrupted run can never poison later ones.  Entries are framed
    with the integrity envelope on write and verified on read; puts are
    lock-free (concurrent writers race benignly — the content address
    guarantees both produced the same payload, and the loser of the
    rename is audited as ``store.put_overwrites``).
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """Whether a write failure disabled this cache for the process."""
        return self._degraded

    def _degrade(self, exc: OSError) -> None:
        from repro.obs import get_probes

        probes = get_probes()
        probes.count("store.put_errors")
        if not self._degraded:
            self._degraded = True
            probes.gauge("store.degraded", 1)
            warnings.warn(
                f"result cache at {self.root} is degraded "
                f"({type(exc).__name__}: {exc}); this run will complete "
                f"without caching",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- keys ----------------------------------------------------------
    def job_key(self, settings, job) -> str:
        """Digest for one simulation job under ``settings``."""
        return stable_digest("job", CACHE_SCHEMA, code_version(), settings, job)

    def experiment_key(self, experiment_id: str, settings) -> str:
        """Digest for a whole legacy-``run()`` experiment result."""
        return stable_digest(
            "experiment", CACHE_SCHEMA, code_version(), experiment_id, settings
        )

    # -- storage -------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA}" / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt or truncated entry (interrupted writer, disk fault)
        is treated as a miss: the broken file is removed so the next
        :meth:`put` rewrites it, and the event is reported on the
        ambient probe bus (``cache.corrupt_entries`` counter plus a
        trace event) instead of raising into the run.
        """
        from repro.store.envelope import EnvelopeError, count_corruption, unwrap

        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            from repro.obs import get_probes

            get_probes().count("store.read_errors")
            return None
        try:
            payload = unwrap(blob, schema=CACHE_SCHEMA)
            return pickle.loads(payload)
        except EnvelopeError as exc:
            self._reject(key, path, exc.kind)
            count_corruption(exc.kind, store="cache", path=path, key=key)
            return None
        except Exception as exc:
            # the envelope verified but the payload would not unpickle:
            # the writer stored garbage, which no checksum can fix
            self._reject(key, path, type(exc).__name__)
            return None

    def _reject(self, key: str, path: Path, error: str) -> None:
        from repro.obs import get_probes

        probes = get_probes()
        probes.count("cache.corrupt_entries")
        if probes.tracing:
            probes.event("cache.corrupt_entry", key=key,
                         path=str(path), error=error)
        path.unlink(missing_ok=True)

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic: write-then-rename).

        A write failure (ENOSPC, EIO, permissions) degrades the cache
        for the rest of the process instead of raising — the run
        completes uncached.
        """
        if self._degraded:
            return
        from repro.store.envelope import wrap

        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        blob = wrap(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            schema=CACHE_SCHEMA,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            existed = path.exists()
            with tmp.open("wb") as fh:
                fh.write(blob)
            tmp.replace(path)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                # the same broken filesystem that failed the write can
                # fail the cleanup (e.g. a parent that is not a dir)
                pass
            self._degrade(exc)
            return
        if existed:
            from repro.obs import get_probes

            probes = get_probes()
            probes.count("store.put_overwrites")
            if probes.tracing:
                probes.event("store.put_overwrite", key=key, path=str(path))

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` has an entry :meth:`get` would accept.

        Validates the envelope header (magic, schema, declared length
        against file size) without reading the payload, so membership
        agrees with ``get`` on every corruption class except a bit
        flip confined to the payload body — which ``get`` still
        rejects on load.
        """
        from repro.store.envelope import check_header

        try:
            return check_header(self.path_for(key),
                                schema=CACHE_SCHEMA) is None
        except FileNotFoundError:
            return False

    # -- maintenance ---------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Live entry paths; sweeps crash-orphaned writer temp files."""
        self.sweep_tmp()
        yield from self.root.glob(f"v{CACHE_SCHEMA}/??/*.pkl")

    def sweep_tmp(self, *, min_age_s: float = STALE_TMP_AGE_S) -> int:
        """Remove ``.tmp.<pid>`` debris older than ``min_age_s``.

        A crashed writer leaves its temp file behind forever (the
        rename never happened); anything older than the grace window
        cannot be a live put.  Returns the number removed.
        """
        now = time.time()
        n = 0
        for tmp in list(self.root.glob(f"v{CACHE_SCHEMA}/??/*.tmp.*")):
            try:
                if now - tmp.stat().st_mtime < min_age_s:
                    continue
                tmp.unlink()
            except OSError:
                continue
            n += 1
        return n

    def clear(self) -> int:
        """Delete every cached result (and all writer temp files);
        returns the number of entries removed."""
        n = 0
        for path in list(self.root.glob(f"v{CACHE_SCHEMA}/??/*.pkl")):
            path.unlink(missing_ok=True)
            n += 1
        self.sweep_tmp(min_age_s=0.0)
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"
