"""Content-addressed on-disk result cache for the experiment engine.

Every simulation point is identified by a *stable* digest of everything
that determines its outcome: the :class:`~repro.experiments.runner.ExperimentSettings`,
the job description (benchmark, allocation, config overrides, seed) and
a code-version fingerprint of the ``repro`` source tree.  The digest is
a SHA-256 over a canonical JSON encoding, so it is identical across
processes and interpreter runs (no dependence on ``PYTHONHASHSEED``,
dict order or ``repr`` quirks) — which is what lets a
:class:`~repro.experiments.engine.Runner` in one process reuse results
computed by workers in another, or by yesterday's run.

Layout on disk::

    <cache-dir>/
        v2/<digest[:2]>/<digest>.pkl    pickled ``{"result", "metrics"}``
                                        payloads (result + its captured
                                        probe snapshot)
        manifests/<run-id>.jsonl        run manifests (written by the CLI)

The default cache directory is ``$REPRO_CACHE_DIR`` or ``.repro-cache``
under the current working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Iterator, Optional

CACHE_SCHEMA = 2
"""Bump to invalidate every cached result on an incompatible change.

v2: payloads became ``{"result": ..., "metrics": <probe snapshot>}`` so
cache hits can replay the metrics captured when the job first ran.
"""

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    return Path(os.environ.get(_ENV_CACHE_DIR, _DEFAULT_CACHE_DIR))


# ----------------------------------------------------------------------
# canonical encoding + digests
# ----------------------------------------------------------------------
def canonicalize(obj):
    """Reduce ``obj`` to a JSON-able structure with deterministic form.

    Handles the types that appear in settings and job descriptions:
    primitives, sequences, mappings (sorted by key), enums and
    dataclasses (encoded with their class name so two settings types
    with the same field values do not collide).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return ["enum", type(obj).__name__, obj.name]
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {f.name: canonicalize(getattr(obj, f.name)) for f in fields(obj)}
        return ["dataclass", type(obj).__name__, body]
    if isinstance(obj, dict):
        return ["dict", sorted((str(k), canonicalize(v)) for k, v in obj.items())]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalize(v) for v in obj]]
    if isinstance(obj, (bytes, bytearray)):
        return ["bytes", hashlib.sha256(bytes(obj)).hexdigest()]
    if hasattr(obj, "tolist"):  # numpy scalars / arrays
        return canonicalize(obj.tolist())
    raise TypeError(
        f"cannot build a stable cache key from {type(obj).__name__!r}: {obj!r}"
    )


def stable_digest(*parts) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``."""
    payload = json.dumps(
        [canonicalize(p) for p in parts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_code_version: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the ``repro`` source tree (cached per process).

    Any edit to any module under ``src/repro`` changes the fingerprint,
    so stale results can never be served after the simulator changes.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode("utf-8"))
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()
    return _code_version


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Pickle store addressed by :func:`stable_digest` keys.

    Corrupt or unreadable entries are treated as misses and removed, so
    an interrupted run can never poison later ones.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- keys ----------------------------------------------------------
    def job_key(self, settings, job) -> str:
        """Digest for one simulation job under ``settings``."""
        return stable_digest("job", CACHE_SCHEMA, code_version(), settings, job)

    def experiment_key(self, experiment_id: str, settings) -> str:
        """Digest for a whole legacy-``run()`` experiment result."""
        return stable_digest(
            "experiment", CACHE_SCHEMA, code_version(), experiment_id, settings
        )

    # -- storage -------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA}" / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt or truncated entry (interrupted writer, disk fault)
        is treated as a miss: the broken file is removed so the next
        :meth:`put` rewrites it, and the event is reported on the
        ambient probe bus (``cache.corrupt_entries`` counter plus a
        trace event) instead of raising into the run.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception as exc:
            from repro.obs import get_probes

            probes = get_probes()
            probes.count("cache.corrupt_entries")
            if probes.tracing:
                probes.event("cache.corrupt_entry", key=key,
                             path=str(path), error=type(exc).__name__)
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic: write-then-rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- maintenance ---------------------------------------------------
    def entries(self) -> Iterator[Path]:
        yield from self.root.glob(f"v{CACHE_SCHEMA}/??/*.pkl")

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        n = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"
