"""Chaos smoke driver: prove the run lifecycle survives induced faults.

Five phases, each a small ``fig17`` run at micro scale, exercising the
fault-tolerance machinery end to end through the public
:class:`~repro.experiments.lifecycle.RunRequest` API:

A. **retry-through-crash** — one worker crash plus one delayed job on a
   two-worker pool; the plan must complete with at least one retry.
B. **quarantine** — a job that kills its worker on every attempt; the
   run must finish the *rest* of the plan and return the partial-failure
   report carrying a resume token.
C. **resume** — re-run phase B's journaled run id with the fault gone;
   the journal must replay the completed jobs and the final result must
   be byte-identical to an undisturbed run in a pristine cache.
D. **cluster worker death** — SIGKILL a live ``--backend cluster``
   worker mid-job via a kill fault; the coordinator must detect the
   lost lease, requeue the orphaned job onto a surviving worker, and
   the result must be byte-identical to a serial run in a pristine
   cache.
E. **store integrity** — damage the durable store every way it can
   break: a write path that fails (the run must complete uncached with
   the ``store.degraded`` gauge set and exactly one warning), live
   cache entries truncated and bit-flipped mid-run (the next run must
   classify each as a miss and recompute), and all four corruption
   classes injected offline for ``repro fsck --repair`` to quarantine
   — with every result byte-identical to an undisturbed serial run.

Run it as ``python -m repro.experiments.chaos --report chaos_report.json``;
CI's chaos-smoke job uploads the JSON report as an artifact.  Exit
status is non-zero when any check fails, and the report records every
check either way — chaos that fails silently is just noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.experiments.engine import RetryPolicy
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.lifecycle import RunRequest, execute, runner_for
from repro.experiments.runner import ExperimentSettings
from repro.obs import ProbeBus

EXPERIMENT_ID = "fig17"

#: Small enough for CI, large enough that the plan has three jobs to
#: crash, delay and quarantine independently.
MICRO_SETTINGS = ExperimentSettings.quick(
    memory_bytes=8 << 20,
    windows=1,
    benchmarks=("mcf", "gcc", "bzip2"),
)

#: Fast backoff so induced retries don't stretch the smoke run.
RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05,
                    max_worker_crashes=2)


class ChaosReport:
    """Accumulates named pass/fail checks; never raises mid-phase."""

    def __init__(self):
        self.checks = []

    def check(self, phase: str, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append({
            "phase": phase, "check": name, "ok": bool(ok), "detail": detail,
        })
        status = "ok" if ok else "FAIL"
        print(f"[chaos:{phase}] {name}: {status}"
              + (f" ({detail})" if detail else ""), flush=True)
        return bool(ok)

    def error(self, phase: str, exc: BaseException) -> None:
        self.check(phase, "completed without unexpected exception", False,
                   f"{type(exc).__name__}: {exc}")

    @property
    def ok(self) -> bool:
        return all(c["ok"] for c in self.checks)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "experiment": EXPERIMENT_ID,
            "checks": self.checks,
        }


def _run(cache_dir: Path, *, jobs: Optional[int] = None,
         faults: Optional[FaultPlan] = None, resume: Optional[str] = None,
         probes: Optional[ProbeBus] = None, backend: Optional[str] = None,
         workers: Optional[int] = None):
    """One lifecycle execution; returns ``(result, runner)``."""
    request = RunRequest(
        experiment_id=EXPERIMENT_ID,
        settings=MICRO_SETTINGS,
        jobs=jobs,
        cache_dir=str(cache_dir),
        probes=probes,
        timeout_s=120.0,
        retry=RETRY,
        faults=faults,
        resume=resume,
        backend=backend,
        workers=workers,
        # flush the span store per record: a crashed run must still
        # leave an inspectable trace behind (checked in phase B)
        span_flush_every=1,
    )
    runner = runner_for(request)
    try:
        result = execute(request, runner=runner)
    except BaseException:
        runner.close()
        raise
    return result, runner


def phase_a_retry(report: ChaosReport, root: Path) -> None:
    """Crash one worker once, delay another job — the run still lands."""
    faults = FaultPlan((
        FaultSpec(job_index=1, kind="crash", times=1),
        FaultSpec(job_index=2, kind="delay", delay_s=0.2),
    ))
    result, runner = _run(root / "phase-a", jobs=2, faults=faults)
    report.check("A", "run completed all jobs", not runner.failures,
                 f"failures={len(runner.failures)}")
    report.check("A", "result is not a partial-failure report",
                 "PARTIAL FAILURE" not in result.title, result.title)
    report.check("A", "crash forced at least one retry",
                 runner.stats.retries >= 1,
                 f"retries={runner.stats.retries}")
    report.check("A", "both faults were injected",
                 runner.stats.faults_injected >= 2,
                 f"faults_injected={runner.stats.faults_injected}")


def phase_b_quarantine(report: ChaosReport, root: Path) -> Optional[str]:
    """A job that kills its worker every time gets quarantined; the rest
    of the plan completes and the result carries a resume token."""
    faults = FaultPlan((FaultSpec(job_index=1, kind="kill", times=99),))
    result, runner = _run(root / "phase-bc", jobs=2, faults=faults)
    report.check("B", "exactly one job quarantined",
                 len(runner.failures) == 1,
                 f"failures={[f.benchmark for f in runner.failures]}")
    report.check("B", "partial-failure report returned",
                 "PARTIAL FAILURE" in result.title, result.title)
    report.check("B", "worker crashes were observed",
                 runner.stats.worker_crashes >= 1,
                 f"worker_crashes={runner.stats.worker_crashes}")
    run_id = runner.last_run_id
    report.check("B", "resume token available", bool(run_id),
                 f"run_id={run_id!r}")
    report.check("B", "resume token printed in report notes",
                 bool(run_id) and run_id in str(result.notes or ""),
                 str(result.notes or ""))
    if run_id:
        # span_flush_every=1 keeps the store current record-by-record,
        # so the trace of a faulted run is inspectable on disk even
        # before (or without) a clean finish
        from repro.obs.spans import dedupe_spans, read_spans, span_path

        spans = dedupe_spans(read_spans(
            span_path(root / "phase-bc", run_id)))
        report.check("B", "span store written for the faulted run",
                     bool(spans), f"spans={len(spans)}")
        report.check("B", "failed attempts visible as error spans",
                     any(s.get("name") == "attempt" and "error" in s
                         for s in spans))
        report.check("B", "quarantined job span recorded",
                     any(s.get("name") == "job"
                         and s.get("status") == "quarantined"
                         for s in spans))
    return run_id


def phase_c_resume(report: ChaosReport, root: Path,
                   run_id: Optional[str]) -> None:
    """Resume phase B's run with the fault gone: journal replays the
    completed jobs, and the result matches an undisturbed run."""
    if not run_id:
        report.check("C", "resume token from phase B", False,
                     "phase B produced no run id")
        return
    bus = ProbeBus()
    result, runner = _run(root / "phase-bc", resume=run_id, probes=bus)
    counters = bus.snapshot().get("counters", {})
    replays = counters.get("engine.journal_replays", 0)
    report.check("C", "journal replayed the completed jobs", replays >= 2,
                 f"journal_replays={replays}")
    report.check("C", "resumed run completed cleanly",
                 not runner.failures and "PARTIAL FAILURE" not in result.title,
                 result.title)

    reference, _ = _run(root / "reference")
    report.check("C", "resumed result byte-identical to undisturbed run",
                 result.to_json() == reference.to_json())


def phase_d_cluster(report: ChaosReport, root: Path) -> None:
    """SIGKILL a live cluster worker mid-job; the coordinator requeues
    the orphaned job onto a surviving worker and the final result is
    still byte-identical to a serial run in a pristine cache."""
    faults = FaultPlan((FaultSpec(job_index=1, kind="kill", times=1),))
    result, runner = _run(root / "phase-d", backend="cluster", workers=2,
                          faults=faults)
    try:
        report.check("D", "cluster run completed all jobs",
                     not runner.failures,
                     f"failures={len(runner.failures)}")
        report.check("D", "result is not a partial-failure report",
                     "PARTIAL FAILURE" not in result.title, result.title)
        report.check("D", "worker death observed mid-run",
                     runner.stats.worker_crashes >= 1,
                     f"worker_crashes={runner.stats.worker_crashes}")
    finally:
        runner.close()

    reference, _ = _run(root / "phase-d-reference", jobs=1)
    report.check("D", "cluster result byte-identical to serial run",
                 result.to_json() == reference.to_json())


def phase_e_store(report: ChaosReport, root: Path) -> None:
    """Durable-store integrity under induced damage.

    Three acts: (1) a cache whose entry directories cannot be created
    — every put fails with an OSError, the store must degrade (gauge,
    one warning) and the run must still produce correct results;
    (2) live entries truncated and bit-flipped by mid-run faults — the
    next run must classify each damaged read as a miss and recompute;
    (3) all four corruption classes injected offline, quarantined by
    ``fsck --repair``, and a final rerun byte-identical to an
    undisturbed serial run.
    """
    import warnings as warnings_mod

    from repro.experiments.cache import CACHE_SCHEMA
    from repro.store.fsck import fsck

    reference, _ = _run(root / "phase-e-reference", jobs=1)

    # -- act 1: failing write path degrades, run completes -------------
    enospc_root = root / "phase-e-enospc"
    enospc_root.mkdir(parents=True, exist_ok=True)
    # a FILE where the entry tree belongs: every put's mkdir fails with
    # an OSError, the same failure shape as ENOSPC at write time
    (enospc_root / f"v{CACHE_SCHEMA}").write_text("")
    bus = ProbeBus()
    with warnings_mod.catch_warnings(record=True) as caught:
        warnings_mod.simplefilter("always")
        degraded_result, _ = _run(enospc_root, jobs=1, probes=bus)
    degrade_warnings = [w for w in caught
                        if issubclass(w.category, RuntimeWarning)
                        and "degraded" in str(w.message)]
    report.check("E", "failed put degrades with exactly one warning",
                 len(degrade_warnings) == 1,
                 f"warnings={len(degrade_warnings)}")
    gauges = bus.snapshot().get("gauges", {})
    report.check("E", "store.degraded gauge set", "store.degraded" in gauges)
    report.check("E", "degraded run result byte-identical to reference",
                 degraded_result.to_json() == reference.to_json())

    # -- act 2: live truncation + bit flip classified on next read -----
    cache_dir = root / "phase-e-store"
    faults = FaultPlan((
        FaultSpec(job_index=0, kind="corrupt-cache"),
        FaultSpec(job_index=1, kind="bitflip-cache"),
    ))
    _run(cache_dir, jobs=1, faults=faults)
    bus = ProbeBus()
    reread_result, _ = _run(cache_dir, probes=bus)
    counters = bus.snapshot().get("counters", {})
    report.check("E", "truncated entry classified on reread",
                 counters.get("store.corrupt.truncated", 0) >= 1,
                 f"counters={counters.get('store.corrupt.truncated', 0)}")
    report.check("E", "bit-flipped entry classified on reread",
                 counters.get("store.corrupt.bit_flipped", 0) >= 1,
                 f"counters={counters.get('store.corrupt.bit_flipped', 0)}")
    report.check("E", "reread result byte-identical to reference",
                 reread_result.to_json() == reference.to_json())

    # -- act 3: all four classes injected, fsck repairs, rerun matches -
    entries = sorted(cache_dir.glob(f"v{CACHE_SCHEMA}/??/*.pkl"))
    report.check("E", "cache has entries to corrupt", len(entries) >= 2,
                 f"entries={len(entries)}")
    if len(entries) >= 2:
        blob = entries[0].read_bytes()
        entries[0].write_bytes(blob[: len(blob) // 2])       # truncated
        flipped = bytearray(entries[1].read_bytes())
        flipped[-1] ^= 0xFF
        entries[1].write_bytes(bytes(flipped))               # bit_flipped
    alien_dir = cache_dir / f"v{CACHE_SCHEMA}" / "zz"
    alien_dir.mkdir(parents=True, exist_ok=True)
    (alien_dir / ("f" * 64 + ".pkl")).write_bytes(b"no envelope here")
    (alien_dir / ("0" * 64 + ".pkl.tmp.4242")).write_bytes(b"orphan")
    fsck_report = fsck(cache_dir, repair=True, min_tmp_age_s=0.0)
    for kind in ("truncated", "bit_flipped", "wrong_schema", "orphan_tmp"):
        report.check("E", f"fsck detected {kind}",
                     fsck_report["corrupt"].get(kind, 0) >= 1,
                     f"count={fsck_report['corrupt'].get(kind, 0)}")
    report.check("E", "fsck repaired everything it found",
                 fsck_report["ok"] and fsck_report["unrepaired"] == 0,
                 f"unrepaired={fsck_report['unrepaired']}")
    report.check("E", "quarantine directory populated",
                 any((cache_dir / "lost+found").rglob("*")))
    clean = fsck(cache_dir)
    report.check("E", "store clean after repair",
                 clean["ok"] and sum(clean["corrupt"].values()) == 0)
    final_result, _ = _run(cache_dir, jobs=1)
    report.check("E", "post-repair rerun byte-identical to reference",
                 final_result.to_json() == reference.to_json())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.chaos",
        description="fault-injection smoke test of the run lifecycle",
    )
    parser.add_argument(
        "--report", metavar="PATH", default="chaos_report.json",
        help="where to write the JSON check report (default: %(default)s)",
    )
    parser.add_argument(
        "--work-dir", metavar="DIR", default=None,
        help="cache workspace (default: a fresh temporary directory)",
    )
    args = parser.parse_args(argv)

    report = ChaosReport()
    start = time.monotonic()
    if args.work_dir:
        root = Path(args.work_dir)
        root.mkdir(parents=True, exist_ok=True)
        ctx = None
    else:
        ctx = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        root = Path(ctx.name)
    try:
        try:
            phase_a_retry(report, root)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            report.error("A", exc)
        run_id = None
        try:
            run_id = phase_b_quarantine(report, root)
        except Exception as exc:  # noqa: BLE001
            report.error("B", exc)
        try:
            phase_c_resume(report, root, run_id)
        except Exception as exc:  # noqa: BLE001
            report.error("C", exc)
        try:
            phase_d_cluster(report, root)
        except Exception as exc:  # noqa: BLE001
            report.error("D", exc)
        try:
            phase_e_store(report, root)
        except Exception as exc:  # noqa: BLE001
            report.error("E", exc)
    finally:
        doc = report.to_dict()
        doc["elapsed_s"] = round(time.monotonic() - start, 3)
        Path(args.report).write_text(json.dumps(doc, indent=2) + "\n")
        if ctx is not None:
            ctx.cleanup()

    failed = [c for c in report.checks if not c["ok"]]
    print(f"[chaos] {len(report.checks) - len(failed)}/{len(report.checks)} "
          f"checks passed in {doc['elapsed_s']}s "
          f"(report: {args.report})", flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
