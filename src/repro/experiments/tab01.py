"""Table I — average allocated memory of the three data-center traces."""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, SweepAxis
from repro.workloads.datacenter import paper_traces

PAPER_MEANS = {"google": 0.70, "alibaba": 0.88, "bitbrains": 0.28}

SPEC = ScenarioSpec(
    scenario_id="tab01",
    description="Average allocated memory of the three traces",
    axes=(
        SweepAxis("params.trace",
                  source="repro.experiments.tab01:trace_names"),
    ),
    point="repro.experiments.tab01:trace_point",
    reduction="concat_rows",
    reduction_params={
        "title": "Average allocated memory of the three traces",
        "headers": ["trace", "source", "measured mean", "paper mean"],
    },
)


def trace_names(settings) -> list:
    return list(paper_traces())


def trace_point(settings, job) -> list:
    name = str(job.params["trace"])
    trace = paper_traces()[name]
    return [name, trace.source, trace.mean, PAPER_MEANS[name]]


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
