"""Table I — average allocated memory of the three data-center traces."""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.workloads.datacenter import paper_traces

PAPER_MEANS = {"google": 0.70, "alibaba": 0.88, "bitbrains": 0.28}


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    rows = []
    for name, trace in paper_traces().items():
        rows.append([
            name,
            trace.source,
            trace.mean,
            PAPER_MEANS[name],
        ])
    return ExperimentResult(
        experiment_id="tab01",
        title="Average allocated memory of the three traces",
        headers=["trace", "source", "measured mean", "paper mean"],
        rows=rows,
    )
