"""Fig. 17 — normalised IPC with ZERO-REFRESH (100 % allocated).

Skipped refreshes return bank time to demand accesses; the paper
reports +5.7 % IPC on average, max +10.8 % (gemsFDTD), min +0.3 %
(gobmk).  The analytical core model converts each benchmark's measured
refresh statistics into bank unavailability and IPC.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import ScenarioSpec, SweepAxis

SPEC = ScenarioSpec(
    scenario_id="fig17",
    description="Normalized IPC vs conventional refresh (100% allocated)",
    axes=(SweepAxis("benchmark"),),
    reduction="repro.experiments.fig17:reduce_scenario",
)


def reduce_scenario(spec, settings, axes, results):
    from repro.experiments.runner import ExperimentResult

    names = axes["benchmark"]
    rows = []
    gains = []
    for name, result in zip(names, results):
        ipc = result.ipc
        rows.append([name, ipc.normalized_ipc, f"{ipc.speedup_percent:+.2f}%"])
        gains.append(ipc.speedup_percent)
    rows.append(["average", 1.0 + float(np.mean(gains)) / 100.0,
                 f"{float(np.mean(gains)):+.2f}%"])
    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title="Normalized IPC vs conventional refresh (100% allocated)",
        headers=["benchmark", "normalized IPC", "speedup"],
        rows=rows,
        paper_reference={"avg": "+5.7%", "max (gemsFDTD)": "+10.8%",
                         "min (gobmk)": "+0.3%"},
    )


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
