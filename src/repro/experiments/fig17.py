"""Fig. 17 — normalised IPC with ZERO-REFRESH (100 % allocated).

Skipped refreshes return bank time to demand accesses; the paper
reports +5.7 % IPC on average, max +10.8 % (gemsFDTD), min +0.3 %
(gobmk).  The analytical core model converts each benchmark's measured
refresh statistics into bank unavailability and IPC.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.engine import Experiment, SimJob, sweep_jobs
from repro.experiments.runner import ExperimentResult, ExperimentSettings


def plan(settings: ExperimentSettings) -> List[SimJob]:
    return sweep_jobs(settings, allocated_fraction=1.0)


def reduce(settings: ExperimentSettings, results: list) -> ExperimentResult:
    by_name = dict(zip(settings.benchmarks, results))
    rows = []
    gains = []
    for name in settings.benchmarks:
        ipc = by_name[name].ipc
        rows.append([name, ipc.normalized_ipc, f"{ipc.speedup_percent:+.2f}%"])
        gains.append(ipc.speedup_percent)
    rows.append(["average", 1.0 + float(np.mean(gains)) / 100.0,
                 f"{float(np.mean(gains)):+.2f}%"])
    return ExperimentResult(
        experiment_id="fig17",
        title="Normalized IPC vs conventional refresh (100% allocated)",
        headers=["benchmark", "normalized IPC", "speedup"],
        rows=rows,
        paper_reference={"avg": "+5.7%", "max (gemsFDTD)": "+10.8%",
                         "min (gobmk)": "+0.3%"},
    )


EXPERIMENT = Experiment("fig17", plan=plan, reduce=reduce)


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return EXPERIMENT(settings)
