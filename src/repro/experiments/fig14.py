"""Fig. 14 — normalised refresh operations under four allocation levels.

The paper's headline result: full simulation of every benchmark at
100 % / 88 % (Alibaba) / 70 % (Google) / 28 % (Bitbrains) allocated
memory, reporting refresh operations relative to conventional
auto-refresh.  Paper averages: 0.629 / 0.54 / 0.43 / 0.17 normalised
(reductions 37 % / 46 % / 57 % / 83 %).
"""

from __future__ import annotations

from repro.osmodel.scenarios import PAPER_SCENARIOS
from repro.scenarios.spec import ScenarioSpec, SweepAxis

SCENARIO_ORDER = ("100%", "88%", "70%", "28%")
PAPER_AVG_REDUCTION = {"100%": 0.371, "88%": 0.46, "70%": 0.57, "28%": 0.83}

SPEC = ScenarioSpec(
    scenario_id="fig14",
    description="Normalized refresh operations at four allocation levels",
    axes=(
        SweepAxis("allocated_fraction",
                  values=[PAPER_SCENARIOS[s].allocated_fraction
                          for s in SCENARIO_ORDER]),
        SweepAxis("benchmark"),
    ),
    reduction="benchmark_grid",
    reduction_params={
        "title": "Normalized refresh operations (lower is better)",
        "metric": "normalized_refresh",
        "columns": list(SCENARIO_ORDER),
        "extra_rows": [["paper avg"] + [1.0 - PAPER_AVG_REDUCTION[s]
                                        for s in SCENARIO_ORDER]],
        "paper_reference": {f"avg@{s}": 1.0 - PAPER_AVG_REDUCTION[s]
                            for s in SCENARIO_ORDER},
    },
)


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
