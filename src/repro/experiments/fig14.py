"""Fig. 14 — normalised refresh operations under four allocation levels.

The paper's headline result: full simulation of every benchmark at
100 % / 88 % (Alibaba) / 70 % (Google) / 28 % (Bitbrains) allocated
memory, reporting refresh operations relative to conventional
auto-refresh.  Paper averages: 0.629 / 0.54 / 0.43 / 0.17 normalised
(reductions 37 % / 46 % / 57 % / 83 %).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.engine import Experiment, SimJob, sweep_jobs
from repro.experiments.runner import ExperimentResult, ExperimentSettings
from repro.osmodel.scenarios import PAPER_SCENARIOS

SCENARIO_ORDER = ("100%", "88%", "70%", "28%")
PAPER_AVG_REDUCTION = {"100%": 0.371, "88%": 0.46, "70%": 0.57, "28%": 0.83}


def plan(settings: ExperimentSettings) -> List[SimJob]:
    jobs = []
    for label in SCENARIO_ORDER:
        scenario = PAPER_SCENARIOS[label]
        jobs.extend(
            sweep_jobs(settings, allocated_fraction=scenario.allocated_fraction)
        )
    return jobs


def reduce(settings: ExperimentSettings, results: list) -> ExperimentResult:
    it = iter(results)
    per_scenario = {
        label: {name: next(it) for name in settings.benchmarks}
        for label in SCENARIO_ORDER
    }
    rows = []
    for name in settings.benchmarks:
        rows.append(
            [name] + [per_scenario[s][name].normalized_refresh
                      for s in SCENARIO_ORDER]
        )
    averages = [
        float(np.mean([per_scenario[s][b].normalized_refresh
                       for b in settings.benchmarks]))
        for s in SCENARIO_ORDER
    ]
    rows.append(["average"] + averages)
    rows.append(["paper avg"] + [1.0 - PAPER_AVG_REDUCTION[s]
                                 for s in SCENARIO_ORDER])
    return ExperimentResult(
        experiment_id="fig14",
        title="Normalized refresh operations (lower is better)",
        headers=["benchmark"] + list(SCENARIO_ORDER),
        rows=rows,
        paper_reference={f"avg@{s}": 1.0 - PAPER_AVG_REDUCTION[s]
                         for s in SCENARIO_ORDER},
    )


EXPERIMENT = Experiment("fig14", plan=plan, reduce=reduce)


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    return EXPERIMENT(settings)
