"""Fig. 16 — normal (64 ms) vs. extended (32 ms) temperature, 100 % alloc.

A 64 ms window sees twice the write traffic between consecutive
refreshes of a row, so slightly more AR sets are dirty and the
reduction drops a little: the paper reports ~4.4 % less reduction at
normal temperature on average.
"""

from __future__ import annotations

import numpy as np

from repro.dram.timing import TemperatureMode
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSettings,
    simulate_benchmark,
)

from dataclasses import replace


def run(settings: ExperimentSettings = ExperimentSettings()) -> ExperimentResult:
    rows = []
    reductions = {TemperatureMode.NORMAL: [], TemperatureMode.EXTENDED: []}
    for i, name in enumerate(settings.benchmarks):
        row = [name]
        for temp in (TemperatureMode.EXTENDED, TemperatureMode.NORMAL):
            temp_settings = replace(settings, temperature=temp)
            result = simulate_benchmark(temp_settings, name, 1.0, seed_offset=i)
            row.append(result.normalized_refresh)
            reductions[temp].append(result.refresh_reduction)
        rows.append(row)
    avg_ext = float(np.mean(reductions[TemperatureMode.EXTENDED]))
    avg_norm = float(np.mean(reductions[TemperatureMode.NORMAL]))
    rows.append(["average", 1.0 - avg_ext, 1.0 - avg_norm])
    return ExperimentResult(
        experiment_id="fig16",
        title="Normalized refresh: extended (32 ms) vs normal (64 ms)",
        headers=["benchmark", "extended 32ms", "normal 64ms"],
        rows=rows,
        paper_reference={"reduction delta (ext - norm)": 0.044},
        notes=f"measured delta: {avg_ext - avg_norm:+.3f}",
    )
