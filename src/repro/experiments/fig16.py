"""Fig. 16 — normal (64 ms) vs. extended (32 ms) temperature, 100 % alloc.

A 64 ms window sees twice the write traffic between consecutive
refreshes of a row, so slightly more AR sets are dirty and the
reduction drops a little: the paper reports ~4.4 % less reduction at
normal temperature on average.

The temperature axis rebinds an :class:`ExperimentSettings` field, so
expansion routes each cell through the settings-capable simulate point
— the scenario layer's showcase for settings-level sweep axes.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.spec import ScenarioSpec, SweepAxis

SPEC = ScenarioSpec(
    scenario_id="fig16",
    description="Refresh reduction at extended (32 ms) vs normal (64 ms)",
    axes=(
        SweepAxis("benchmark"),
        SweepAxis("temperature", values=["EXTENDED", "NORMAL"]),
    ),
    reduction="repro.experiments.fig16:reduce_scenario",
)


def reduce_scenario(spec, settings, axes, results):
    from repro.experiments.runner import ExperimentResult

    names = axes["benchmark"]
    temps = axes["temperature"]
    it = iter(results)
    rows = []
    reductions = {temp: [] for temp in temps}
    for name in names:
        row = [name]
        for temp in temps:
            result = next(it)
            row.append(result.normalized_refresh)
            reductions[temp].append(result.refresh_reduction)
        rows.append(row)
    avg_ext = float(np.mean(reductions["EXTENDED"]))
    avg_norm = float(np.mean(reductions["NORMAL"]))
    rows.append(["average", 1.0 - avg_ext, 1.0 - avg_norm])
    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title="Normalized refresh: extended (32 ms) vs normal (64 ms)",
        headers=["benchmark", "extended 32ms", "normal 64ms"],
        rows=rows,
        paper_reference={"reduction delta (ext - norm)": 0.044},
        notes=f"measured delta: {avg_ext - avg_norm:+.3f}",
    )


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
