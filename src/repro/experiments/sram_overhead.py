"""Sec. IV-B — tracking-structure cost comparison (naive vs. optimised).

The design-point table behind ZERO-REFRESH's tracking architecture at
the paper's 32 GB / 8-bank / 4 KB-row scale:

* naive: one SRAM bit per row -> 1 MB SRAM, 337.14 mW leakage;
* optimised: 8 KB access-bit SRAM (2.71 mW, 0.076 mm²) + the status
  table moved into DRAM (1 MB of DRAM, ~0.003 % of capacity) + a 16 B
  staging register per rank.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec

SPEC = ScenarioSpec(
    scenario_id="sram",
    description="Tracking-structure cost: naive vs optimised (Sec. IV-B)",
    point="repro.experiments.sram_overhead:tracking_cost_point",
    reduction="table",
    reduction_params={
        "title": "Discharged-row tracking cost at 32 GB (Sec. IV-B)",
        "headers": ["design", "storage", "leakage mW", "area mm2"],
        "paper_reference": {"naive leakage mW": 337.14,
                            "optimised leakage mW": 2.71,
                            "optimised area mm2": 0.076},
    },
)


def tracking_cost_point(settings, job) -> list:
    from repro.dram.geometry import DramGeometry
    from repro.dram.tracking import (
        AccessBitTable,
        DischargedStatusTable,
        NaiveSramTracker,
    )
    from repro.energy.sram import SramModel

    geometry = DramGeometry.paper_config()
    sram = SramModel()
    naive = NaiveSramTracker(geometry)
    access_bits = AccessBitTable(geometry)
    status = DischargedStatusTable(geometry)

    naive_bytes = naive.costs.sram_bytes
    opt_sram_bytes = access_bits.costs.sram_bytes
    return [
        ["naive: per-row SRAM table",
         f"{naive_bytes / 1024:.0f} KB SRAM",
         sram.leakage_mw(naive_bytes),
         sram.area_mm2(naive_bytes)],
        ["optimised: access-bit SRAM",
         f"{opt_sram_bytes / 1024:.0f} KB SRAM",
         sram.leakage_mw(opt_sram_bytes),
         sram.area_mm2(opt_sram_bytes)],
        ["optimised: status table in DRAM",
         f"{status.costs.dram_bytes / 1024:.0f} KB DRAM",
         0.0, 0.0],
        ["optimised: charge-state register",
         f"{status.costs.sram_bits // 8} B register",
         0.0, 0.0],
    ]


def run(settings=None):
    from repro.scenarios.executor import as_experiment

    return as_experiment(SPEC)(settings)
