"""The generic sweep executor: specs -> engine jobs -> result tables.

:func:`expand` turns a :class:`ScenarioSpec` into the row-major grid of
:class:`~repro.experiments.engine.SimJob` the engine already knows how
to fan out, cache, journal and resume; :func:`as_experiment` wraps the
expansion as a plan/reduce :class:`~repro.experiments.engine.Experiment`
so a spec plugs into every existing entry point (registry, CLI, serve
daemon, :func:`repro.api.run`) unchanged.

Axis binding rules (by :class:`SweepAxis` name):

``benchmark``
    Binds ``job.benchmark``; ``seed_offset`` is the value's index on
    the axis, matching the engine's per-benchmark seed staggering.
    Defaults its values to ``settings.benchmarks``.
``allocated_fraction``
    Binds the job field directly.
``overrides``
    Each value is a mapping of dotted overrides applied to that cell.
``params.<key>``
    Binds a parameter of a custom point function.
anything else
    A dotted settings/config override key, resolved through
    :mod:`repro.scenarios.resolve`.  Config-level keys materialise as
    ``job.config_overrides``; settings-level keys reroute the cell
    through :data:`~repro.scenarios.points.SIMULATE_SETTINGS_POINT`
    with the wire mapping in ``job.params["settings"]``.

Engine imports stay inside functions: the experiment modules that
define specs import this package while :mod:`repro.experiments` is
still initialising.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List

from repro.scenarios.resolve import materialize_config, split_overrides
from repro.scenarios.spec import (
    SIMULATE_POINT,
    ScenarioError,
    ScenarioSpec,
    SweepAxis,
)

__all__ = [
    "Expansion",
    "adhoc_sweep_spec",
    "as_experiment",
    "expand",
    "resolve_axes",
]

BENCHMARKS_SOURCE = "settings.benchmarks"
"""Axis source drawing its values from the run's settings."""


def _axis_values(axis: SweepAxis, settings) -> list:
    values = axis.value_list
    if values:
        return values
    source = axis.source
    if not source and axis.name == "benchmark":
        source = BENCHMARKS_SOURCE
    if source == BENCHMARKS_SOURCE:
        return list(settings.benchmarks)
    if ":" in source:
        from repro.experiments.engine import resolve_job_fn

        return list(resolve_job_fn(source)(settings))
    raise ScenarioError(
        f"axis {axis.name!r} has no values and no resolvable source "
        f"(give values, {BENCHMARKS_SOURCE!r} or an importable "
        f"'module:attr')"
    )


def resolve_axes(spec: ScenarioSpec, settings) -> Dict[str, list]:
    """The spec's axes as an ordered ``{name: concrete values}`` map."""
    axes: Dict[str, list] = {}
    for axis in spec.axes:
        values = _axis_values(axis, settings)
        if not values:
            raise ScenarioError(f"axis {axis.name!r} resolved to no values")
        axes[axis.name] = values
    return axes


@dataclass
class Expansion:
    """A spec resolved against settings: the grid and its jobs."""

    axes: Dict[str, list]
    jobs: List


def _cell_job(spec: ScenarioSpec, axes: Dict[str, list], combo: tuple):
    """The engine job for one grid cell (one axis-value combination)."""
    from repro.experiments.engine import SimJob
    from repro.scenarios.points import SIMULATE_SETTINGS_POINT

    cell_overrides = spec.overrides_dict
    axis_params: Dict[str, object] = {}
    benchmark = None
    seed_offset = 0
    allocated_fraction = 1.0
    for (name, values), value in zip(axes.items(), combo):
        if name == "benchmark":
            benchmark = str(value)
            seed_offset = values.index(value)
        elif name == "allocated_fraction":
            allocated_fraction = float(value)
        elif name == "overrides":
            if not isinstance(value, dict):
                raise ScenarioError(
                    f"'overrides' axis values must be mappings, got {value!r}"
                )
            cell_overrides.update(value)
        elif name.startswith("params."):
            axis_params[name[len("params."):]] = value
        else:
            cell_overrides[name] = value

    if spec.point != SIMULATE_POINT:
        if cell_overrides:
            raise ScenarioError(
                f"custom point {spec.point!r} cannot take settings/config "
                f"overrides (got {sorted(cell_overrides)}); bind them as "
                f"'params.*' axes or point_params instead"
            )
        params = dict(spec.point_params_dict)
        params.update(axis_params)
        return SimJob(
            benchmark=str(params.get("benchmark") or spec.scenario_id),
            allocated_fraction=allocated_fraction,
            fn=spec.point,
            params=params or None,
        )

    if axis_params or spec.point_params_dict:
        raise ScenarioError(
            "point parameters only apply to custom points; the default "
            "'simulate' point takes benchmark/allocation/override axes"
        )
    if benchmark is None:
        raise ScenarioError(
            "the 'simulate' point needs a 'benchmark' axis"
        )
    allocated_fraction = cell_overrides.pop(
        "allocated_fraction", allocated_fraction
    )
    settings_map, config_map = split_overrides(cell_overrides)
    config_overrides = materialize_config(config_map)
    if settings_map:
        return SimJob(
            benchmark=benchmark,
            allocated_fraction=float(allocated_fraction),
            config_overrides=config_overrides,
            seed_offset=seed_offset,
            fn=SIMULATE_SETTINGS_POINT,
            params={"settings": settings_map},
        )
    return SimJob(
        benchmark=benchmark,
        allocated_fraction=float(allocated_fraction),
        config_overrides=config_overrides,
        seed_offset=seed_offset,
    )


def expand(spec: ScenarioSpec, settings=None) -> Expansion:
    """Resolve a spec against settings into its full job grid.

    Cells enumerate row-major (first axis outermost); a spec with no
    axes is a single point.  Raises :class:`ScenarioError` for any
    binding that cannot be resolved, which is what lets entry points
    validate a user spec eagerly before scheduling anything.
    """
    if settings is None:
        from repro.experiments.runner import ExperimentSettings

        settings = ExperimentSettings()
    axes = resolve_axes(spec, settings)
    jobs = [
        _cell_job(spec, axes, combo)
        for combo in itertools.product(*axes.values())
    ]
    return Expansion(axes=axes, jobs=jobs)


def as_experiment(spec: ScenarioSpec):
    """The spec as an engine :class:`Experiment` (plan + reduce)."""
    from repro.experiments.engine import Experiment
    from repro.scenarios.reductions import resolve_reduction

    def plan(settings):
        return expand(spec, settings).jobs

    def reduce(settings, results):
        axes = resolve_axes(spec, settings)
        return resolve_reduction(spec.reduction)(spec, settings, axes, results)

    return Experiment(spec.scenario_id, plan=plan, reduce=reduce)


def adhoc_sweep_spec(
    axes: Dict[str, list],
    overrides=None,
    benchmarks=None,
    metrics=None,
    description: str = "",
) -> ScenarioSpec:
    """An unregistered sweep spec from user axes and overrides.

    ``axes`` maps axis names to value lists (CLI ``--axis``, sweep
    request bodies).  A ``benchmark`` axis is appended innermost unless
    the user supplied one — either ``benchmarks`` or the run settings'
    suite — so every override combination sweeps the benchmarks.  The
    scenario id embeds the spec's own digest, making identical ad-hoc
    sweeps identical cache/journal/single-flight citizens.
    """
    axis_list = [
        SweepAxis(name=str(name), values=list(values))
        for name, values in dict(axes or {}).items()
    ]
    names = [axis.name for axis in axis_list]
    if len(set(names)) != len(names):
        raise ScenarioError(f"duplicate axis names: {names}")
    if "benchmark" in names:
        if benchmarks:
            raise ScenarioError(
                "give a 'benchmark' axis or a benchmarks list, not both"
            )
    elif benchmarks:
        axis_list.append(SweepAxis(
            "benchmark", values=[str(b) for b in benchmarks]
        ))
    else:
        axis_list.append(SweepAxis("benchmark", source=BENCHMARKS_SOURCE))
    reduction_params = {"metrics": list(metrics)} if metrics else ()
    base = ScenarioSpec(
        scenario_id="sweep",
        description=description or "ad-hoc sweep",
        axes=tuple(axis_list),
        overrides=dict(overrides or {}),
        reduction="sweep_table",
        reduction_params=reduction_params,
    )
    from repro.scenarios.spec import spec_digest

    return replace(base, scenario_id=f"sweep-{spec_digest(base)[:12]}")
