"""Named reductions: grid results -> ExperimentResult tables.

A reduction is ``fn(spec, settings, axes, results)`` where ``axes`` is
an ordered ``{axis name: resolved values}`` mapping and ``results``
holds one entry per grid cell in row-major plan order.  Registered
names cover the layouts the paper's figures share; anything bespoke
(computed notes, interleaved metric rows) points its spec at an
importable ``"module:attr"`` reduction instead.

Static table metadata — title, headers, labels, paper-reference rows —
rides in the spec's ``reduction_params``, so most figures need no
reduction code at all.  Titles may reference point parameters with
``str.format`` fields (``"... ({benchmark})"``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.scenarios.spec import ScenarioError, ScenarioSpec

__all__ = [
    "REDUCTIONS",
    "metric_getter",
    "resolve_reduction",
]


def metric_getter(path: str) -> Callable:
    """An attribute-path accessor (``"ipc.normalized_ipc"``) on results."""
    parts = str(path).split(".")

    def get(result):
        value = result
        for part in parts:
            value = getattr(value, part)
        return value

    return get


def _format_title(title: str, spec: ScenarioSpec) -> str:
    if "{" in title:
        return title.format(**spec.point_params_dict)
    return title


def _result(spec: ScenarioSpec, params: dict, headers: List[str],
            rows: List[list], default_title: str = ""):
    from repro.experiments.runner import ExperimentResult

    return ExperimentResult(
        experiment_id=spec.scenario_id,
        title=_format_title(params.get("title") or default_title
                            or spec.scenario_id, spec),
        headers=list(headers),
        rows=rows,
        notes=params.get("notes", ""),
        paper_reference=dict(params.get("paper_reference") or {}),
    )


# ----------------------------------------------------------------------
def table(spec, settings, axes, results):
    """A single point that computed the whole table's rows itself."""
    if len(results) != 1:
        raise ScenarioError(
            f"'table' reduces exactly one point, got {len(results)}"
        )
    params = spec.reduction_params_dict
    return _result(spec, params, params.get("headers") or [], results[0])


def concat_rows(spec, settings, axes, results):
    """One table row per grid cell, plus optional static extra rows."""
    params = spec.reduction_params_dict
    rows = list(results) + list(params.get("extra_rows") or [])
    return _result(spec, params, params.get("headers") or [], rows)


def _grid_axes(axes, caller: str):
    """(outer values, benchmark names) of an outer x benchmark grid."""
    items = list(axes.items())
    if len(items) != 2 or items[1][0] != "benchmark":
        raise ScenarioError(
            f"'{caller}' needs axes (outer, benchmark), got "
            f"{[name for name, _ in items]}"
        )
    return items[0][1], items[1][1]


def benchmark_grid(spec, settings, axes, results):
    """Benchmark-major rows over an outer axis, plus an average row.

    The layout of fig14/fig15/fig18: one row per benchmark with a
    column per outer-axis value, an ``average`` row (``np.mean`` down
    each column), and any static ``extra_rows`` (paper averages)
    appended verbatim.
    """
    params = spec.reduction_params_dict
    outer_values, names = _grid_axes(axes, "benchmark_grid")
    columns = params.get("columns") or [str(v) for v in outer_values]
    if len(columns) != len(outer_values):
        raise ScenarioError(
            f"'benchmark_grid' got {len(columns)} column labels for "
            f"{len(outer_values)} outer values"
        )
    metric = metric_getter(params.get("metric", "normalized_refresh"))
    it = iter(results)
    per = {col: {name: next(it) for name in names} for col in columns}
    rows = [
        [name] + [metric(per[col][name]) for col in columns]
        for name in names
    ]
    rows.append(["average"] + [
        float(np.mean([metric(per[col][b]) for b in names]))
        for col in columns
    ])
    rows.extend(params.get("extra_rows") or [])
    headers = [params.get("first_header", "benchmark")] + list(columns)
    return _result(spec, params, headers, rows)


def variant_grid(spec, settings, axes, results):
    """One row per outer-axis variant, columns per benchmark.

    The ablation layout: the outer axis enumerates config variants
    (labelled by ``reduction_params["labels"]``), the inner benchmark
    axis spans the columns.
    """
    params = spec.reduction_params_dict
    outer_values, names = _grid_axes(axes, "variant_grid")
    labels = params.get("labels") or [str(v) for v in outer_values]
    if len(labels) != len(outer_values):
        raise ScenarioError(
            f"'variant_grid' got {len(labels)} labels for "
            f"{len(outer_values)} variants"
        )
    metric = metric_getter(params.get("metric", "normalized_refresh"))
    it = iter(results)
    rows = [[label] + [metric(next(it)) for _ in names] for label in labels]
    headers = [params.get("first_header", "variant")] + list(names)
    return _result(spec, params, headers, rows)


def sweep_table(spec, settings, axes, results):
    """The ad-hoc default: one row per cell — axis values then metrics.

    ``reduction_params["metrics"]`` names dotted result attributes
    (default: normalized refresh/energy and normalized IPC), so any
    unregistered ``repro sweep`` prints a useful table with zero
    reduction code.
    """
    import itertools

    params = spec.reduction_params_dict
    metrics = params.get("metrics") or [
        "normalized_refresh", "normalized_energy", "ipc.normalized_ipc",
    ]
    getters = [metric_getter(m) for m in metrics]
    combos = itertools.product(*axes.values())
    rows = [
        list(combo) + [get(result) for get in getters]
        for combo, result in zip(combos, results)
    ]
    headers = list(axes.keys()) + [str(m) for m in metrics]
    default_title = "Sweep over " + " x ".join(axes.keys()) if axes else "Sweep"
    return _result(spec, params, headers, rows, default_title)


REDUCTIONS: Dict[str, Callable] = {
    "table": table,
    "concat_rows": concat_rows,
    "benchmark_grid": benchmark_grid,
    "variant_grid": variant_grid,
    "sweep_table": sweep_table,
}
"""Registered reduction names, usable in any spec."""


def resolve_reduction(name: str) -> Callable:
    """A registered reduction, or an imported ``"module:attr"`` one."""
    if name in REDUCTIONS:
        return REDUCTIONS[name]
    if ":" in name:
        from repro.experiments.engine import resolve_job_fn

        return resolve_job_fn(name)
    raise ScenarioError(
        f"unknown reduction {name!r}; registered: "
        + ", ".join(sorted(REDUCTIONS)) + " (or an importable 'module:attr')"
    )
