"""Dotted-override resolution: spec keys -> settings/config objects.

One blessed path from wire-form override keys (``temperature``,
``memory_mb``, ``row_bytes``, ``stages.rotation`` ...) to the typed
objects the simulator consumes: :class:`ExperimentSettings` fields on
one side, :meth:`SystemConfig.scaled` keyword overrides (including a
materialised :class:`StageSelection`) on the other.  The CLI's
``--set``/``--axis``, scenario spec overrides and the serve daemon's
sweep bodies all resolve here, so an unknown or ill-typed key fails
identically everywhere, listing what would have been accepted.

:func:`config_for` is the one blessed ``SystemConfig`` construction
for custom point functions (fig19's and ext-hybrid's capacity sweeps
route through it instead of hand-rolling ``SystemConfig.scaled``).
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Dict, Optional, Tuple

from repro.dram.timing import TemperatureMode
from repro.osmodel.pages import CleansePolicy
from repro.scenarios.spec import ScenarioError
from repro.transform.codec import StageSelection

__all__ = [
    "CONFIG_KEYS",
    "SETTINGS_KEYS",
    "STAGE_KEYS",
    "apply_settings",
    "config_for",
    "known_override_keys",
    "materialize_config",
    "parse_value",
    "split_overrides",
]

SETTINGS_KEYS = (
    "memory_bytes", "memory_mb", "windows", "benchmarks", "temperature",
    "rows_per_ar", "seed",
)
"""Override keys that rebind :class:`ExperimentSettings` fields."""

CONFIG_KEYS = (
    "refresh_mode", "refresh_policy", "staggered_counters",
    "celltype_error_rate", "cleanse_policy", "num_cores",
    "row_bytes", "cell_interleave", "word_bytes", "line_bytes",
)
"""Override keys that pass through to :meth:`SystemConfig.scaled`."""

STAGE_KEYS = tuple(f.name for f in fields(StageSelection))
"""The ``stages.<flag>`` leaves (ebdi, bitplane, rotation, ...)."""


def known_override_keys() -> Tuple[str, ...]:
    """Every accepted override key, for error messages and docs."""
    return tuple(sorted(SETTINGS_KEYS + CONFIG_KEYS
                        + tuple(f"stages.{k}" for k in STAGE_KEYS)))


def split_overrides(mapping) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split dotted overrides into (settings-level, config-level) maps.

    ``stages.<flag>`` leaves collect under a ``"stages"`` sub-mapping of
    the config side; unknown keys raise :class:`ScenarioError` listing
    everything that would have been accepted.
    """
    settings_map: Dict[str, object] = {}
    config_map: Dict[str, object] = {}
    for key, value in dict(mapping or {}).items():
        root, _, leaf = str(key).partition(".")
        if root == "stages":
            if leaf not in STAGE_KEYS:
                raise ScenarioError(
                    f"unknown stage flag {key!r}; stage keys: "
                    + ", ".join(f"stages.{k}" for k in STAGE_KEYS)
                )
            if not isinstance(value, bool):
                raise ScenarioError(
                    f"{key} must be a boolean, got {value!r}"
                )
            config_map.setdefault("stages", {})[leaf] = value
        elif key in SETTINGS_KEYS:
            settings_map[key] = value
        elif key in CONFIG_KEYS:
            config_map[key] = value
        else:
            raise ScenarioError(
                f"unknown override key {key!r}; known keys: "
                + ", ".join(known_override_keys())
            )
    return settings_map, config_map


def apply_settings(settings, settings_map):
    """``settings`` with a wire-form override mapping applied.

    Accepts the :class:`ExperimentSettings` field names plus
    ``memory_mb``; ``temperature`` resolves through
    :meth:`TemperatureMode.parse` (a bad name raises ``ValueError``
    listing the valid mode names), ``benchmarks`` coerces to a string
    tuple.  Returns ``settings`` untouched for an empty mapping.
    """
    data = dict(settings_map or {})
    if not data:
        return settings
    if "memory_mb" in data:
        if "memory_bytes" in data:
            raise ScenarioError("give memory_mb or memory_bytes, not both")
        data["memory_bytes"] = int(data.pop("memory_mb")) << 20
    if "benchmarks" in data:
        benchmarks = data["benchmarks"]
        if isinstance(benchmarks, str):
            benchmarks = [benchmarks]
        data["benchmarks"] = tuple(str(b) for b in benchmarks)
    if "temperature" in data:
        data["temperature"] = TemperatureMode.parse(data["temperature"])
    field_names = {f.name for f in fields(settings)}
    unknown = sorted(set(data) - field_names)
    if unknown:
        raise ScenarioError(
            f"unknown settings field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(field_names))}"
        )
    return replace(settings, **data)


def _parse_cleanse_policy(value) -> CleansePolicy:
    if isinstance(value, CleansePolicy):
        return value
    try:
        return CleansePolicy(str(value))
    except ValueError:
        pass
    try:
        return CleansePolicy[str(value).upper().replace("-", "_")]
    except KeyError:
        known = ", ".join(p.value for p in CleansePolicy)
        raise ScenarioError(
            f"unknown cleanse_policy {value!r}; one of: {known}"
        ) from None


def materialize_config(config_map) -> Optional[Dict[str, object]]:
    """Typed ``SystemConfig.scaled`` overrides from a config-level map.

    A ``"stages"`` sub-mapping materialises into a
    :class:`StageSelection` (flags not named keep their all-on
    defaults, so ``{"stages": {}}`` is the full pipeline);
    ``cleanse_policy`` strings resolve to the enum.  Returns ``None``
    for an empty map so expanded jobs stay identical to hand-written
    ones that passed ``config_overrides=None``.
    """
    data = dict(config_map or {})
    if not data:
        return None
    if "stages" in data:
        stage_map = data["stages"]
        if isinstance(stage_map, StageSelection):
            pass
        elif isinstance(stage_map, dict):
            data["stages"] = StageSelection(**stage_map)
        else:
            raise ScenarioError(
                f"stages must be a mapping of flags, got {stage_map!r}"
            )
    if "cleanse_policy" in data:
        data["cleanse_policy"] = _parse_cleanse_policy(data["cleanse_policy"])
    return data


def config_for(settings, memory_bytes: Optional[int] = None,
               **config_overrides):
    """The blessed :class:`SystemConfig` for a point function.

    Equivalent to ``settings.config(**config_overrides)`` — geometry
    scaled to ``settings.memory_bytes`` (or an explicit
    ``memory_bytes``), the settings' temperature/seed/rows_per_ar
    threaded through — so capacity-sweep points stop copy-pasting
    ``SystemConfig.scaled(...)`` argument lists.
    """
    if memory_bytes is not None:
        settings = replace(settings, memory_bytes=int(memory_bytes))
    return settings.config(**config_overrides)


def parse_value(text: str):
    """A CLI token as a JSON-ish scalar: bool, int, float or string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()
