"""Point functions the sweep executor schedules onto the engine.

:func:`simulate_point` is the settings-override-capable twin of the
engine's default job body: expansion routes a grid cell through it
whenever an axis or static override rebinds an
:class:`ExperimentSettings` field (``temperature``, ``memory_mb``,
``windows`` ...), which cannot ride in ``config_overrides`` — the
settings feed :meth:`ExperimentSettings.config` *before* the overrides
do.  The raw wire-form mapping travels in ``job.params["settings"]``
so the job stays picklable and canonicalizable, and resolves through
:func:`repro.scenarios.resolve.apply_settings` in the worker.
"""

from __future__ import annotations

__all__ = ["SIMULATE_SETTINGS_POINT", "simulate_point"]

SIMULATE_SETTINGS_POINT = "repro.scenarios.points:simulate_point"
"""Job ``fn`` for simulate cells that carry settings-level overrides."""


def simulate_point(settings, job):
    """One benchmark simulation under per-cell settings overrides."""
    from repro.experiments.runner import simulate_benchmark
    from repro.scenarios.resolve import apply_settings

    params = job.params or {}
    adjusted = apply_settings(settings, params.get("settings"))
    return simulate_benchmark(
        adjusted,
        job.benchmark,
        job.allocated_fraction,
        job.config_overrides,
        job.seed_offset,
    )
