"""Frozen, JSON-serializable scenario descriptions.

A :class:`ScenarioSpec` is the declarative form of an experiment: the
sweep axes (benchmark, allocation, any settings/config override, or a
parameter of a custom point function), the point function that turns
one grid cell into a simulation, static dotted overrides applied to
every cell, and the named reduction that lays the grid back out as an
:class:`~repro.experiments.runner.ExperimentResult` table.

Specs are *pure data*: every field is a JSON scalar or a frozen
container of them, so a spec round-trips losslessly through
``to_json``/``from_json`` (``spec → to_json → from_json → to_json`` is
a fixed point) and :func:`spec_digest` is stable across processes,
machines and restarts — which is what lets the engine cache, journal
and single-flight machinery treat an ad-hoc user sweep exactly like a
registered figure.

Nothing in this module imports from :mod:`repro.experiments`; the
expansion into engine jobs lives in :mod:`repro.scenarios.executor`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "SweepAxis",
    "spec_digest",
]

SIMULATE_POINT = "simulate"
"""The default point: one full-system benchmark simulation per cell."""


class ScenarioError(ValueError):
    """A spec that cannot be validated, frozen or expanded."""


# ----------------------------------------------------------------------
# freeze / thaw: JSON values <-> hashable tuples
# ----------------------------------------------------------------------
# Frozen dataclasses need hashable fields, JSON needs dicts and lists;
# the bridge is a tagged-tuple encoding ("m" for mappings, "s" for
# sequences) that is unambiguous because JSON input never contains
# tuples.  Mapping insertion order is preserved — it is part of the
# data (e.g. the display order of a table's paper-reference entries).
def _freeze(value):
    if isinstance(value, dict):
        return ("m", tuple((str(k), _freeze(v))
                           for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return ("s", tuple(_freeze(v) for v in value))
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ScenarioError(
        f"spec values must be JSON-plain (str/int/float/bool/None/"
        f"list/dict), got {type(value).__name__}: {value!r}"
    )


def _thaw(value):
    if isinstance(value, tuple):
        tag, payload = value
        if tag == "m":
            return {key: _thaw(item) for key, item in payload}
        return [_thaw(item) for item in payload]
    return value


def _is_frozen(value, tag: str) -> bool:
    return (isinstance(value, tuple) and len(value) == 2
            and value[0] == tag and isinstance(value[1], tuple))


def _freeze_seq(value):
    """Freeze a sequence of values, idempotently."""
    if _is_frozen(value, "s"):
        return value
    if isinstance(value, (list, tuple)):
        return _freeze(list(value))
    raise ScenarioError(f"expected a sequence, got {value!r}")


def _freeze_map(value):
    """Freeze a mapping, idempotently; ``()`` means empty."""
    if value == () or value is None:
        return ("m", ())
    if _is_frozen(value, "m"):
        return value
    if isinstance(value, dict):
        return _freeze(value)
    raise ScenarioError(f"expected a mapping, got {value!r}")


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepAxis:
    """One dimension of a scenario's grid.

    ``name`` decides how each value binds to a job (see
    :mod:`repro.scenarios.executor`): ``benchmark``,
    ``allocated_fraction``, ``params.<key>`` for custom point
    parameters, ``overrides`` for per-cell mappings of dotted
    overrides, or any dotted settings/config override key
    (``temperature``, ``memory_mb``, ``row_bytes``,
    ``stages.rotation`` ...).

    ``values`` enumerates the axis; an empty ``values`` defers to
    ``source`` — ``"settings.benchmarks"`` (the default for a
    benchmark axis) or any importable ``"module:attr"`` callable
    taking the run's settings and returning the values.
    """

    name: str
    values: tuple = ()
    source: str = ""

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"axis name must be a non-empty string, "
                                f"got {self.name!r}")
        object.__setattr__(self, "values", _freeze_seq(self.values))

    @property
    def value_list(self) -> list:
        """The axis values as plain JSON values."""
        return _thaw(self.values)

    def to_dict(self) -> dict:
        return {"name": self.name, "values": self.value_list,
                "source": self.source}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepAxis":
        if not isinstance(data, dict):
            raise ScenarioError(f"axis must be a JSON object, got {data!r}")
        unknown = sorted(set(data) - {"name", "values", "source"})
        if unknown:
            raise ScenarioError(
                f"unknown axis field(s): {', '.join(unknown)}"
            )
        return cls(
            name=data.get("name", ""),
            values=data.get("values") or (),
            source=str(data.get("source", "") or ""),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: axes x point x reduction.

    Fields
    ------
    scenario_id:
        Registry/cache identity; also the result's ``experiment_id``.
    description:
        One line for ``repro list`` and the catalog.
    axes:
        The sweep grid, row-major (first axis outermost).  No axes
        means a single point.
    point:
        ``"simulate"`` (the default full-system benchmark simulation)
        or an importable ``"module:attr"`` callable with the engine job
        signature ``fn(settings, job)``.
    point_params:
        Static parameters for a custom point (merged under axis-bound
        ``params.*`` values).
    overrides:
        Static dotted settings/config overrides applied to every cell
        (``{"stages.rotation": false, "memory_mb": 16}``); axis values
        for the same key win.
    reduction:
        A registered reduction name (see
        :mod:`repro.scenarios.reductions`) or an importable
        ``"module:attr"`` callable ``fn(spec, settings, axes, results)``.
    reduction_params:
        Static data the reduction lays the table out with (title,
        headers, labels, paper reference rows ...).
    """

    scenario_id: str
    description: str = ""
    axes: Tuple[SweepAxis, ...] = ()
    point: str = SIMULATE_POINT
    point_params: tuple = ()
    overrides: tuple = ()
    reduction: str = "table"
    reduction_params: tuple = ()

    def __post_init__(self):
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise ScenarioError("scenario_id must be a non-empty string")
        axes = tuple(self.axes)
        for axis in axes:
            if not isinstance(axis, SweepAxis):
                raise ScenarioError(f"axes must be SweepAxis, got {axis!r}")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate axis names: {names}")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "point_params",
                           _freeze_map(self.point_params))
        object.__setattr__(self, "overrides", _freeze_map(self.overrides))
        object.__setattr__(self, "reduction_params",
                           _freeze_map(self.reduction_params))

    # -- plain-data accessors ------------------------------------------
    @property
    def point_params_dict(self) -> Dict[str, object]:
        return _thaw(self.point_params)

    @property
    def overrides_dict(self) -> Dict[str, object]:
        return _thaw(self.overrides)

    @property
    def reduction_params_dict(self) -> Dict[str, object]:
        return _thaw(self.reduction_params)

    # -- wire form ------------------------------------------------------
    def to_dict(self) -> dict:
        """The spec as a plain JSON-able dict (all fields, always)."""
        return {
            "scenario_id": self.scenario_id,
            "description": self.description,
            "axes": [axis.to_dict() for axis in self.axes],
            "point": self.point,
            "point_params": self.point_params_dict,
            "overrides": self.overrides_dict,
            "reduction": self.reduction,
            "reduction_params": self.reduction_params_dict,
        }

    def to_json(self, indent=None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"spec must be a JSON object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown spec field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        axes_data = data.get("axes") or []
        if not isinstance(axes_data, (list, tuple)):
            raise ScenarioError("axes must be a JSON array")
        for key in ("scenario_id", "description", "point", "reduction"):
            if key in data and not isinstance(data[key], str):
                raise ScenarioError(f"{key} must be a string")
        return cls(
            scenario_id=data.get("scenario_id", ""),
            description=data.get("description", ""),
            axes=tuple(SweepAxis.from_dict(a) for a in axes_data),
            point=data.get("point", SIMULATE_POINT),
            point_params=data.get("point_params") or (),
            overrides=data.get("overrides") or (),
            reduction=data.get("reduction", "table"),
            reduction_params=data.get("reduction_params") or (),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def axis_names(self) -> List[str]:
        return [axis.name for axis in self.axes]


def spec_digest(spec: ScenarioSpec) -> str:
    """Content digest of a spec, stable across process restarts.

    The wire form with tight separators hashed with SHA-256; two specs
    digest equal iff their wire forms are identical (mapping order is
    part of the data, so it is part of the digest).
    """
    canonical = json.dumps(spec.to_dict(), separators=(",", ":"))
    return hashlib.sha256(
        ("scenario-spec\x1f" + canonical).encode("utf-8")
    ).hexdigest()
