"""Declarative scenario layer: experiments as data-driven sweep specs.

Every registered experiment is a :class:`ScenarioSpec` — sweep axes, a
point function, dotted overrides and a named reduction — expanded by
one generic executor into the engine's job grid.  Ad-hoc sweeps build
the same spec shape (:func:`adhoc_sweep_spec`) and run through the
identical cache/journal/resume machinery.

``SCENARIOS`` (the registered spec catalog, keyed and ordered like the
experiment registry) lives in :mod:`repro.experiments` and is
re-exported lazily here to keep this package import-light and
cycle-free.
"""

from repro.scenarios.executor import (
    Expansion,
    adhoc_sweep_spec,
    as_experiment,
    expand,
    resolve_axes,
)
from repro.scenarios.points import SIMULATE_SETTINGS_POINT, simulate_point
from repro.scenarios.reductions import REDUCTIONS, resolve_reduction
from repro.scenarios.resolve import (
    apply_settings,
    config_for,
    known_override_keys,
    parse_value,
    split_overrides,
)
from repro.scenarios.spec import (
    ScenarioError,
    ScenarioSpec,
    SweepAxis,
    spec_digest,
)

__all__ = [
    "Expansion",
    "REDUCTIONS",
    "SCENARIOS",
    "SIMULATE_SETTINGS_POINT",
    "ScenarioError",
    "ScenarioSpec",
    "SweepAxis",
    "adhoc_sweep_spec",
    "apply_settings",
    "as_experiment",
    "config_for",
    "expand",
    "known_override_keys",
    "parse_value",
    "resolve_axes",
    "resolve_reduction",
    "simulate_point",
    "spec_digest",
    "split_overrides",
]


def __getattr__(name):
    if name == "SCENARIOS":
        from repro.experiments import SCENARIOS

        return SCENARIOS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
