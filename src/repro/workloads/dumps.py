"""Real-content loading: use arbitrary binary images as workload memory.

The paper transforms the *actual* memory images of running benchmarks.
The profiles in :mod:`repro.workloads.benchmarks` are synthetic
stand-ins; this module closes the loop for users who *do* have real
content — a core dump, a checkpoint file, a raw binary — by slicing any
byte blob into pages the simulator can populate, plus the Fig. 6-style
value analysis for it.

Typical use::

    content = load_dump("checkpoint.bin", n_pages=4096)
    system.controller.populate_pages(pages, content, notify=False)

or, for a quick characterisation::

    print(analyze_dump("checkpoint.bin").summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.transform.bitplane import BitPlaneTransform
from repro.transform.celltype import CellType
from repro.transform.ebdi import EbdiCodec
from repro.workloads.synthetic import (
    WORDS_PER_LINE,
    zero_block_fraction,
    zero_byte_fraction,
)

PAGE_BYTES = 4096
LINE_BYTES = 64
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


def bytes_to_pages(blob: bytes, n_pages: Optional[int] = None,
                   pad: bool = True) -> np.ndarray:
    """Slice a byte blob into page content: (pages, 64, 8) uint64.

    Shorter blobs are zero-padded to a whole page (``pad=True``) or
    truncated; longer blobs are cut at ``n_pages`` when given.
    """
    data = np.frombuffer(blob, dtype=np.uint8)
    if n_pages is not None:
        data = data[: n_pages * PAGE_BYTES]
    remainder = len(data) % PAGE_BYTES
    if remainder:
        if pad:
            data = np.concatenate(
                [data, np.zeros(PAGE_BYTES - remainder, dtype=np.uint8)]
            )
        else:
            data = data[: len(data) - remainder]
    if len(data) == 0:
        raise ValueError("blob shorter than one page and pad disabled")
    pages = len(data) // PAGE_BYTES
    return (
        np.ascontiguousarray(data)
        .view("<u8")
        .reshape(pages, LINES_PER_PAGE, WORDS_PER_LINE)
        .copy()
    )


def load_dump(path: Union[str, Path], n_pages: Optional[int] = None) -> np.ndarray:
    """Load a binary file as page content."""
    return bytes_to_pages(Path(path).read_bytes(), n_pages=n_pages)


@dataclass(frozen=True)
class DumpAnalysis:
    """Fig. 6-style characterisation of a content image."""

    n_pages: int
    zero_byte_frac: float
    zero_1kb_frac: float
    skippable_word_frac: float
    delta_bits_p50: float
    delta_bits_p90: float

    def summary(self) -> str:
        return (
            f"{self.n_pages} pages | zero bytes {self.zero_byte_frac:.1%} | "
            f"zero 1KB blocks {self.zero_1kb_frac:.1%} | "
            f"discharged words after transform "
            f"{self.skippable_word_frac:.1%} | "
            f"delta width p50/p90: {self.delta_bits_p50:.0f}/"
            f"{self.delta_bits_p90:.0f} bits"
        )


def analyze_pages(pages: np.ndarray) -> DumpAnalysis:
    """Characterise page content for refresh-reduction potential.

    ``skippable_word_frac`` is the per-line discharged-word fraction
    after EBDI + bit-plane — an upper bound on the reduction this
    content supports (block coupling can only lower it).
    """
    pages = np.asarray(pages)
    lines = pages.reshape(-1, WORDS_PER_LINE)
    ebdi = EbdiCodec()
    bitplane = BitPlaneTransform()
    encoded = bitplane.apply(ebdi.encode(lines, CellType.TRUE))
    widths = ebdi.delta_bit_width(lines)
    return DumpAnalysis(
        n_pages=len(pages),
        zero_byte_frac=zero_byte_fraction(lines),
        zero_1kb_frac=zero_block_fraction(lines),
        skippable_word_frac=float((encoded == 0).mean()),
        delta_bits_p50=float(np.percentile(widths, 50)),
        delta_bits_p90=float(np.percentile(widths, 90)),
    )


def analyze_dump(path: Union[str, Path],
                 n_pages: Optional[int] = None) -> DumpAnalysis:
    """Load and characterise a binary file."""
    return analyze_pages(load_dump(path, n_pages=n_pages))
