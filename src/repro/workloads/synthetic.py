"""Synthetic cacheline content classes (workload substrate).

The paper's evaluation runs SPEC CPU2006 / NPB / TPC-H under an
execution-driven simulator and transforms the *actual* memory images.
Those images are not redistributable, so this module provides content
classes whose value statistics span what real applications exhibit;
:mod:`repro.workloads.benchmarks` mixes them into per-benchmark
profiles calibrated against the paper's Fig. 6 (zero fractions) and
Fig. 14 (per-benchmark refresh reduction).

Each class generates batches of cachelines — shape ``(n, words)`` of
``uint64`` — with two characteristic properties:

* the *raw zero-byte fraction* (what Fig. 6 measures), and
* the *post-EBDI delta width*, which determines how many words of the
  transformed line are discharged and hence how many refresh groups a
  region of this class can skip (``skippable_groups`` of 8).

====================  ===========================  ==========  ========
class                 models                        zero bytes  skip g/8
====================  ===========================  ==========  ========
zero                  untouched/zeroed regions      8/8         8
uniform32             memset patterns, enum fills   4/8         7
smallint8             byte-valued arrays, flags     ~7/8        6
smallint16            short ints, indices           ~6/8        5
pointer               heap pointer arrays           2/8         5
int32                 32-bit integer arrays         ~4/8        3
medium                counters w/ 24-bit locality   0           4
int48                 48-bit packed values          ~2/8        1
wide                  hashes w/ 40-bit locality     0           2
float64               FP arrays (shared exponent)   0           1
text                  ASCII buffers                 0           0
padded                alignment-padded structs      ~6.5/8      0
random                compressed/encrypted data     ~0          0
====================  ===========================  ==========  ========
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

WORDS_PER_LINE = 8
_U64 = np.uint64


def _lines(n: int) -> tuple:
    return (n, WORDS_PER_LINE)


def zero_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Fully zero lines (idle or never-touched regions)."""
    return np.zeros(_lines(n), dtype=_U64)


def uniform32_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """One random 32-bit value replicated across the line (fill patterns)."""
    value = rng.integers(1, 2**32, size=(n, 1), dtype=np.uint64)
    return np.broadcast_to(value, _lines(n)).copy()


def smallint8_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Independent byte-sized values per word (flag/char arrays)."""
    return rng.integers(0, 2**8, size=_lines(n), dtype=np.uint64)


def smallint16_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Independent 16-bit values per word (short ints, small indices)."""
    return rng.integers(0, 2**16, size=_lines(n), dtype=np.uint64)


def pointer_lines(n: int, rng: np.random.Generator,
                  region_base: int = 0x00007F0000000000) -> np.ndarray:
    """Pointer arrays: shared 48-bit user-space base, 16-bit structure offsets."""
    anchor = region_base + rng.integers(0, 2**40, size=(n, 1), dtype=np.uint64)
    offsets = rng.integers(0, 2**15, size=_lines(n), dtype=np.uint64)
    return anchor + offsets


def int32_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Independent 32-bit values per word (int arrays, RGBA, IDs)."""
    return rng.integers(0, 2**32, size=_lines(n), dtype=np.uint64)


def medium_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random 64-bit base with 24-bit intra-line locality."""
    base = rng.integers(0, 2**63, size=(n, 1), dtype=np.uint64)
    return base + rng.integers(0, 2**23, size=_lines(n), dtype=np.uint64)


def int48_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Independent 48-bit packed values (timestamps, packed structs)."""
    return rng.integers(0, 2**48, size=_lines(n), dtype=np.uint64)


def wide_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random base with 40-bit locality (sparse hashes, large counters)."""
    base = rng.integers(0, 2**63, size=(n, 1), dtype=np.uint64)
    return base + rng.integers(0, 2**39, size=_lines(n), dtype=np.uint64)


def float64_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Double-precision arrays: shared sign/exponent, random mantissas."""
    exponent = rng.integers(1000, 1030, size=(n, 1), dtype=np.uint64) << np.uint64(52)
    mantissa = rng.integers(0, 2**52, size=_lines(n), dtype=np.uint64)
    return exponent | mantissa


def text_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """ASCII text buffers: every byte in [0x20, 0x7F)."""
    raw = rng.integers(0x20, 0x7F, size=(n, WORDS_PER_LINE, 8), dtype=np.uint8)
    return np.ascontiguousarray(raw).reshape(n, -1).view("<u8").reshape(_lines(n))


def padded_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Padding-heavy structs: mostly-zero bytes at irregular positions.

    Each word carries one or two random non-zero bytes at random byte
    positions — think sparsely filled, alignment-padded C structs.  The
    byte-level zero fraction is high (~80 %, a big contributor to
    Fig. 6's 43 % average) but the deltas are full-width, so EBDI cannot
    recover discharged words from this data.
    """
    out = np.zeros((n, WORDS_PER_LINE, 8), dtype=np.uint8)
    flat = out.reshape(-1, 8)
    positions = rng.integers(0, 8, size=len(flat))
    flat[np.arange(len(flat)), positions] = rng.integers(
        1, 256, size=len(flat), dtype=np.uint8
    )
    second = rng.random(len(flat)) < 0.5
    positions2 = rng.integers(0, 8, size=len(flat))
    rows = np.flatnonzero(second)
    flat[rows, positions2[rows]] = rng.integers(
        1, 256, size=len(rows), dtype=np.uint8
    )
    return np.ascontiguousarray(out).reshape(n, -1).view("<u8").reshape(_lines(n))


def random_lines(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random bits (compressed or encrypted payloads)."""
    return rng.integers(0, 2**64, size=_lines(n), dtype=np.uint64)


LineGenerator = Callable[[int, np.random.Generator], np.ndarray]

LINE_CLASSES: Dict[str, LineGenerator] = {
    "zero": zero_lines,
    "uniform32": uniform32_lines,
    "smallint8": smallint8_lines,
    "smallint16": smallint16_lines,
    "pointer": pointer_lines,
    "int32": int32_lines,
    "medium": medium_lines,
    "int48": int48_lines,
    "wide": wide_lines,
    "float64": float64_lines,
    "text": text_lines,
    "padded": padded_lines,
    "random": random_lines,
}
"""All content classes keyed by name."""

SKIPPABLE_GROUPS: Dict[str, int] = {
    "zero": 8,
    "uniform32": 7,
    "smallint8": 6,
    "smallint16": 5,
    "pointer": 5,
    "int32": 3,
    "medium": 4,
    "int48": 1,
    "wide": 2,
    "float64": 1,
    "text": 0,
    "padded": 0,
    "random": 0,
}
"""Refresh groups (of 8 word positions) a pure region of the class can
skip after full transformation — the analytic model behind profile
calibration, verified against the simulator by the test suite."""


def generate_lines(class_name: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Generate ``n`` cachelines of a named content class."""
    try:
        generator = LINE_CLASSES[class_name]
    except KeyError:
        raise ValueError(
            f"unknown content class {class_name!r}; "
            f"expected one of {sorted(LINE_CLASSES)}"
        ) from None
    return generator(n, rng)


def zero_byte_fraction(lines: np.ndarray) -> float:
    """Fraction of zero bytes (Fig. 6's 1-byte granularity metric)."""
    raw = np.ascontiguousarray(lines).view(np.uint8)
    return float((raw == 0).mean())


def zero_block_fraction(lines: np.ndarray, block_bytes: int = 1024) -> float:
    """Fraction of fully-zero aligned blocks (Fig. 6's 1 KB metric)."""
    raw = np.ascontiguousarray(lines).view(np.uint8).reshape(-1)
    usable = (raw.size // block_bytes) * block_bytes
    if usable == 0:
        raise ValueError("content smaller than one block")
    blocks = raw[:usable].reshape(-1, block_bytes)
    return float((blocks == 0).all(axis=1).mean())
