"""Workload substrate: content, access traffic and utilisation traces.

* :mod:`repro.workloads.synthetic` — cacheline content classes with
  controlled value statistics (zero fraction, delta width).
* :mod:`repro.workloads.benchmarks` — per-benchmark profiles standing in
  for the paper's SPEC CPU2006 / NPB / TPC-H memory images, calibrated
  against Fig. 6 and Fig. 14.
* :mod:`repro.workloads.access` — working-set access-trace generation
  (write traffic for ZERO-REFRESH, touched rows for Smart Refresh).
* :mod:`repro.workloads.datacenter` — Google / Alibaba / Bitbrains
  utilisation-trace stand-ins (Table I, Fig. 5).
"""

from repro.workloads.access import AccessTrace, WorkingSetTraceGenerator
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    PROFILES,
    BenchmarkProfile,
    benchmark_profile,
    suite_average_reduction,
)
from repro.workloads.dumps import (
    DumpAnalysis,
    analyze_dump,
    analyze_pages,
    bytes_to_pages,
    load_dump,
)
from repro.workloads.datacenter import (
    UtilizationTrace,
    alibaba_trace,
    bitbrains_trace,
    google_trace,
    paper_traces,
)
from repro.workloads.synthetic import (
    LINE_CLASSES,
    SKIPPABLE_GROUPS,
    generate_lines,
    zero_block_fraction,
    zero_byte_fraction,
)

__all__ = [
    "AccessTrace",
    "DumpAnalysis",
    "analyze_dump",
    "analyze_pages",
    "bytes_to_pages",
    "load_dump",
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "LINE_CLASSES",
    "PROFILES",
    "SKIPPABLE_GROUPS",
    "UtilizationTrace",
    "WorkingSetTraceGenerator",
    "alibaba_trace",
    "benchmark_profile",
    "bitbrains_trace",
    "generate_lines",
    "google_trace",
    "paper_traces",
    "suite_average_reduction",
    "zero_block_fraction",
    "zero_byte_fraction",
]
