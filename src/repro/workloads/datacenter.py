"""Data-center memory-utilisation traces (paper Table I and Fig. 5).

The paper draws allocation scenarios from three published cluster
traces: Google (cluster-usage v2), Alibaba (cluster-trace-v2018) and
Bitbrains (GWA-T-12).  The raw traces are multi-gigabyte downloads; the
only statistic the evaluation consumes is the *distribution of
allocated-memory fraction over time*, so this module regenerates
synthetic utilisation time series whose means match Table I —

========== ================ =====================
trace       allocated mean   generator
========== ================ =====================
Google      70 %             :func:`google_trace`
Alibaba     88 %             :func:`alibaba_trace`
Bitbrains   28 %             :func:`bitbrains_trace`
========== ================ =====================

— and whose cumulative distributions have the qualitative shapes of
Fig. 5 (Alibaba tightly concentrated near full utilisation, Google
mid-range, Bitbrains low and wide).  The Bitbrains generator also
produces CPU utilisation and applies the paper's conservative filter:
only samples with CPU > 30 % count (Sec. III-B).

Each series is a mean-reverting (AR(1)) process with a Beta marginal,
the standard shape for utilisation data: bounded on [0, 1], unimodal,
with realistic autocorrelation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class UtilizationTrace:
    """A utilisation time series (fractions of memory allocated)."""

    name: str
    samples: np.ndarray
    source: str = ""

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    def cdf(self, grid: Optional[np.ndarray] = None) -> tuple:
        """Empirical CDF evaluated on ``grid`` (default: 0..1 in 1 % steps)."""
        if grid is None:
            grid = np.linspace(0.0, 1.0, 101)
        sorted_samples = np.sort(self.samples)
        cdf = np.searchsorted(sorted_samples, grid, side="right") / len(
            sorted_samples
        )
        return grid, cdf

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))


def _beta_ar1(
    n: int,
    mean: float,
    concentration: float,
    autocorr: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mean-reverting series with Beta(mean*c, (1-mean)*c) marginal.

    Uses a Gaussian copula: an AR(1) latent process is pushed through
    the normal CDF and the Beta quantile function, giving exactly the
    requested marginal with temporal correlation ``autocorr``.
    """
    from scipy import stats

    latent = np.empty(n)
    latent[0] = rng.standard_normal()
    innovation_scale = np.sqrt(1.0 - autocorr**2)
    noise = rng.standard_normal(n)
    for i in range(1, n):
        latent[i] = autocorr * latent[i - 1] + innovation_scale * noise[i]
    uniform = stats.norm.cdf(latent)
    a = mean * concentration
    b = (1.0 - mean) * concentration
    return stats.beta.ppf(uniform, a, b)


def google_trace(n: int = 2048, seed: int = 20110501) -> UtilizationTrace:
    """Google cluster-usage style trace: ~70 % allocated, mid-spread."""
    rng = np.random.default_rng(seed)
    samples = _beta_ar1(n, mean=0.70, concentration=40.0, autocorr=0.9, rng=rng)
    return UtilizationTrace("google", samples, source="Google cluster trace (v2)")


def alibaba_trace(n: int = 2048, seed: int = 20180101) -> UtilizationTrace:
    """Alibaba cluster-trace-v2018 style: ~88 % allocated, concentrated."""
    rng = np.random.default_rng(seed)
    samples = _beta_ar1(n, mean=0.88, concentration=90.0, autocorr=0.9, rng=rng)
    return UtilizationTrace("alibaba", samples, source="Alibaba cluster-trace-v2018")


def bitbrains_trace(n: int = 4096, seed: int = 20150301,
                    cpu_filter: float = 0.30) -> UtilizationTrace:
    """Bitbrains GWA-T-12 style enterprise-VM trace: ~28 % allocated.

    The raw VM data includes long idle stretches; following the paper,
    memory samples only count while CPU utilisation exceeds
    ``cpu_filter`` (30 %).
    """
    rng = np.random.default_rng(seed)
    memory = _beta_ar1(n, mean=0.24, concentration=8.0, autocorr=0.85, rng=rng)
    cpu = _beta_ar1(n, mean=0.35, concentration=6.0, autocorr=0.85, rng=rng)
    # Busy VMs hold somewhat more memory: blend in a positive link.
    memory = np.clip(0.8 * memory + 0.2 * cpu, 0.0, 1.0)
    active = cpu > cpu_filter
    if not active.any():
        raise RuntimeError("CPU filter removed every sample")
    return UtilizationTrace(
        "bitbrains", memory[active], source="Bitbrains GWA-T-12 (CPU>30%)"
    )


def paper_traces(seed_offset: int = 0) -> Dict[str, UtilizationTrace]:
    """All three traces keyed by name (Table I order)."""
    return {
        "google": google_trace(seed=20110501 + seed_offset),
        "alibaba": alibaba_trace(seed=20180101 + seed_offset),
        "bitbrains": bitbrains_trace(seed=20150301 + seed_offset),
    }
