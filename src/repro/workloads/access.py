"""Memory-access trace generation (write traffic and touched rows).

Two consumers need access traces:

* the ZERO-REFRESH simulation — *writes* raise access bits and change
  stored content, so each retention window needs the stream of written
  lines and their new values;
* the Smart Refresh baseline (Fig. 19) — any *touched* (read or
  written) row is implicitly refreshed by its activation, so its
  effectiveness is the fraction of rows the application touches per
  window.

Traces follow a working-set model: a benchmark touches a bounded set of
pages (its resident working set), with accesses concentrated on hot
pages (Zipf-like reuse).  The working set does *not* grow with DRAM
capacity — the property that makes Smart Refresh fade at scale while
ZERO-REFRESH stays flat (paper Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class AccessTrace:
    """One retention window's memory traffic at line granularity."""

    line_addrs: np.ndarray  # global line addresses, in program order
    is_write: np.ndarray  # bool per access

    def __post_init__(self):
        if self.line_addrs.shape != self.is_write.shape:
            raise ValueError("line_addrs and is_write must align")

    @property
    def writes(self) -> np.ndarray:
        return self.line_addrs[self.is_write]

    @property
    def reads(self) -> np.ndarray:
        return self.line_addrs[~self.is_write]

    def __len__(self) -> int:
        return len(self.line_addrs)


class WorkingSetTraceGenerator:
    """Zipf-reuse access generator over a fixed working set of pages.

    Parameters
    ----------
    working_set_pages:
        Pages the application actively touches (its resident set).
        These must already be populated/allocated by the caller.
    lines_per_page:
        Lines per page (64 with the default geometry).
    accesses_per_window:
        Demand accesses (LLC misses reaching DRAM) per retention
        window; scales with the benchmark's MPKI.
    write_fraction:
        Share of accesses that are writes (writebacks), ~0.25 typical.
    zipf_s:
        Zipf exponent over the working-set pages (0 = uniform).
    """

    def __init__(
        self,
        working_set_pages: np.ndarray,
        lines_per_page: int = 64,
        accesses_per_window: int = 10_000,
        write_fraction: float = 0.25,
        zipf_s: float = 0.8,
        rng: Optional[np.random.Generator] = None,
    ):
        working_set_pages = np.asarray(working_set_pages)
        if working_set_pages.size == 0:
            raise ValueError("working set is empty")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        self.pages = working_set_pages
        self.lines_per_page = lines_per_page
        self.accesses_per_window = accesses_per_window
        self.write_fraction = write_fraction
        self.rng = rng or np.random.default_rng()
        ranks = np.arange(1, len(working_set_pages) + 1, dtype=float)
        weights = ranks**-zipf_s
        self._page_probs = weights / weights.sum()

    def window_trace(self, n_accesses: Optional[int] = None) -> AccessTrace:
        """Generate one retention window of accesses."""
        n = n_accesses if n_accesses is not None else self.accesses_per_window
        page_idx = self.rng.choice(len(self.pages), size=n, p=self._page_probs)
        pages = self.pages[page_idx]
        lines_in_page = self.rng.integers(0, self.lines_per_page, size=n)
        line_addrs = pages * self.lines_per_page + lines_in_page
        is_write = self.rng.random(n) < self.write_fraction
        return AccessTrace(line_addrs=line_addrs, is_write=is_write)

    def touched_pages(self, trace: AccessTrace) -> np.ndarray:
        """Unique pages touched by a trace (Smart Refresh's skip set)."""
        return np.unique(trace.line_addrs // self.lines_per_page)
