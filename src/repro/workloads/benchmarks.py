"""Per-benchmark memory-content profiles (paper Sec. VI-A substitute).

The paper evaluates 17 SPEC CPU2006, 2 NPB and 4 TPC-H applications,
transforming their *actual* memory images during execution-driven
simulation.  Without redistributable SPEC dumps, each benchmark is
modelled here as a :class:`BenchmarkProfile`: a mixture of the content
classes of :mod:`repro.workloads.synthetic` plus the timing parameters
the IPC model needs.

Calibration anchors (checked by ``tests/workloads/test_benchmarks.py``):

* the mixture-implied refresh reduction of the full suite averages
  ~37 % at 100 % allocation, with gemsFDTD and sphinx3 at the top and
  omnetpp / perlbench / sp.C at the bottom (paper Fig. 14);
* raw content averages ~43 % zero bytes but only ~2-4 % fully-zero 1 KB
  blocks (paper Fig. 6);
* mcf, the Fig. 19 subject, sits near the suite average.

Content is laid out in *segments* — contiguous runs of pages drawn from
one class — because real address spaces are segment-structured (zeroed
BSS, arrays, heaps, mapped files).  Segment lengths are multiples of 64
pages so that a refresh-coupled block of 8 bank-local rows (which holds
pages ``p, p+8, ..., p+56`` under the bank-interleaved mapping) never
mixes classes, mirroring how multi-megabyte real segments behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.workloads.synthetic import (
    SKIPPABLE_GROUPS,
    WORDS_PER_LINE,
    generate_lines,
)

SEGMENT_ALIGN_PAGES = 128
"""Segment granularity: 128 pages (512 KB).

A refresh-coupled block spans 8 consecutive bank-local rows of one
bank, i.e. a 64-global-row window under the bank-interleaved mapping —
up to 512 KB with 8 KB rows.  Aligning content segments to that span
keeps every block class-homogeneous at all evaluated row sizes, the
property real multi-megabyte segments have."""

DEFAULT_CONTAMINATION = ((0.55, 0.0), (0.25, 0.0008), (0.20, 0.0035))
"""Per-unit outlier-line contamination: (share, per-line probability).

Real memory images are not perfectly regular — stray pointers, headers
and partially initialised entries interrupt otherwise uniform regions.
45 % of non-zero units are pristine, the rest carry a light or heavy
sprinkling of random outlier lines.  One outlier charges every word
position of its refresh-coupled block, which is what makes smaller row
buffers more effective (paper Fig. 18).
"""


@dataclass(frozen=True)
class BenchmarkProfile:
    """Value statistics and timing parameters of one benchmark.

    ``mixture`` maps content-class names to page-fraction weights
    (summing to 1).  ``mpki`` (LLC misses per kilo-instruction),
    ``base_ipc`` and ``refresh_sensitivity`` parameterise the IPC model
    of :mod:`repro.cpu.core`; ``mean_segment_units`` scales segment
    lengths (in units of 64 pages).
    """

    name: str
    suite: str
    mixture: Dict[str, float]
    mpki: float
    base_ipc: float = 1.0
    refresh_sensitivity: float = 2.0
    mean_segment_units: int = 4
    description: str = ""
    contamination: Tuple[Tuple[float, float], ...] = DEFAULT_CONTAMINATION

    def __post_init__(self):
        total = sum(self.mixture.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: mixture weights sum to {total}, not 1")
        unknown = set(self.mixture) - set(SKIPPABLE_GROUPS)
        if unknown:
            raise ValueError(f"{self.name}: unknown content classes {unknown}")

    # ------------------------------------------------------------------
    def expected_reduction(self, row_bytes: int = 4096) -> float:
        """Mixture-implied refresh reduction at 100 % allocation.

        Each pure region of class ``c`` can skip ``SKIPPABLE_GROUPS[c]``
        of its 8 word-position groups once transformed — *if* no
        contaminating outlier line lands in the refresh-coupled block.
        A block spans 8 rows, i.e. ``row_bytes / 8`` cachelines, which
        is where the row-size sensitivity of Fig. 18 comes from: the
        survival probability ``(1 - eps) ** lines_per_block`` grows as
        rows shrink.  Zero (idle) regions are never contaminated.
        """
        lines_per_block = row_bytes // 8
        survival = sum(
            share * (1.0 - eps) ** lines_per_block
            for share, eps in self.contamination
        )
        total = 0.0
        for name, weight in self.mixture.items():
            factor = 1.0 if name == "zero" else survival
            total += weight * SKIPPABLE_GROUPS[name] / WORDS_PER_LINE * factor
        return total

    # ------------------------------------------------------------------
    def segment_classes(self, n_pages: int, rng: np.random.Generator) -> List[Tuple[str, int]]:
        """Assign content classes to the 64-page units covering ``n_pages``.

        Units per class follow the mixture weights *exactly* (largest-
        remainder rounding), then the unit order is shuffled, so even a
        small simulated memory realises the intended page fractions
        while every refresh-coupled block stays class-homogeneous.
        Returns a (class, page-count) run list.
        """
        n_units = max(1, -(-n_pages // SEGMENT_ALIGN_PAGES))
        names = list(self.mixture)
        weights = np.array([self.mixture[name] for name in names], dtype=float)
        exact = weights / weights.sum() * n_units
        counts = np.floor(exact).astype(int)
        shortfall = n_units - counts.sum()
        if shortfall > 0:
            order = np.argsort(-(exact - counts))
            counts[order[:shortfall]] += 1
        unit_classes = np.repeat(np.arange(len(names)), counts)
        rng.shuffle(unit_classes)
        segments: List[Tuple[str, int]] = []
        remaining = n_pages
        for class_idx in unit_classes:
            pages = min(remaining, SEGMENT_ALIGN_PAGES)
            if pages <= 0:
                break
            segments.append((names[class_idx], pages))
            remaining -= pages
        return segments

    def generate_pages(self, n_pages: int, rng: np.random.Generator,
                       lines_per_page: int = 64) -> np.ndarray:
        """Generate page contents: shape (n_pages, lines_per_page, 8).

        Each non-zero segment draws a contamination level and sprinkles
        that fraction of outlier (fully random) lines — the stray
        pointers and headers that interrupt otherwise regular regions
        in real memory images.
        """
        out = np.empty((n_pages, lines_per_page, WORDS_PER_LINE), dtype=np.uint64)
        shares = np.array([s for s, _ in self.contamination])
        epsilons = np.array([e for _, e in self.contamination])
        shares = shares / shares.sum()
        cursor = 0
        for name, pages in self.segment_classes(n_pages, rng):
            count = pages * lines_per_page
            lines = generate_lines(name, count, rng)
            if name != "zero":
                eps = float(epsilons[rng.choice(len(epsilons), p=shares)])
                if eps > 0.0:
                    outliers = np.flatnonzero(rng.random(count) < eps)
                    if len(outliers):
                        lines[outliers] = generate_lines(
                            "random", len(outliers), rng
                        )
            out[cursor:cursor + pages] = lines.reshape(pages, lines_per_page, -1)
            cursor += pages
        return out


def _spec(name, mixture, mpki, ipc, alpha, **kw):
    return BenchmarkProfile(name, "SPEC CPU2006", mixture, mpki, ipc, alpha, **kw)


def _npb(name, mixture, mpki, ipc, alpha, **kw):
    return BenchmarkProfile(name, "NPB", mixture, mpki, ipc, alpha, **kw)


def _tpch(name, mixture, mpki, ipc, alpha, **kw):
    return BenchmarkProfile(name, "TPC-H", mixture, mpki, ipc, alpha, **kw)


PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _spec("astar",
              {"zero": 0.02, "smallint8": 0.1068, "pointer": 0.3737,
               "int32": 0.1335, "padded": 0.15, "random": 0.216},
              mpki=10.0, ipc=0.7, alpha=8.0,
              description="path-finding over pointer-linked graph tiles"),
        _spec("bzip2",
              {"uniform32": 0.0667, "smallint8": 0.1602, "smallint16": 0.1335,
               "int32": 0.1602, "padded": 0.15, "random": 0.3294},
              mpki=4.0, ipc=1.1, alpha=6.0,
              description="block-sorting compressor; mostly high-entropy buffers"),
        _spec("cactusADM",
              {"zero": 0.06, "uniform32": 0.1948, "smallint8": 0.1515,
               "medium": 0.1948, "float64": 0.3789, "padded": 0.01,
               "random": 0.01},
              mpki=15.0, ipc=0.8, alpha=12.0,
              description="numerical relativity; large FP grids"),
        _spec("gcc",
              {"zero": 0.04, "uniform32": 0.1335, "smallint8": 0.2002,
               "pointer": 0.2936, "medium": 0.1335, "padded": 0.12,
               "random": 0.0792},
              mpki=8.0, ipc=0.9, alpha=8.0,
              description="compiler IR: pointer-rich ASTs and small enums"),
        _spec("gemsFDTD",
              {"zero": 0.15, "uniform32": 0.3319, "smallint8": 0.2767,
               "medium": 0.1107, "float64": 0.1107, "padded": 0.01,
               "random": 0.01},
              mpki=25.0, ipc=0.5, alpha=24.0,
              description="FDTD solver: sparsely excited field arrays"),
        _spec("gobmk",
              {"smallint8": 0.1068, "smallint16": 0.1068, "pointer": 0.1068,
               "int32": 0.1335, "wide": 0.1068, "padded": 0.15,
               "random": 0.2893},
              mpki=1.0, ipc=1.2, alpha=1.2,
              description="Go engine: compact board state, cache resident"),
        _spec("h264ref",
              {"uniform32": 0.0801, "smallint8": 0.1602, "medium": 0.2002,
               "int32": 0.1335, "wide": 0.1068, "padded": 0.15,
               "random": 0.1692},
              mpki=3.0, ipc=1.3, alpha=4.0,
              description="video encoder: pixel blocks and motion vectors"),
        _spec("hmmer",
              {"uniform32": 0.1068, "smallint8": 0.1869, "smallint16": 0.1602,
               "int32": 0.1869, "padded": 0.15, "random": 0.2092},
              mpki=2.5, ipc=1.4, alpha=3.0,
              description="profile HMM search: scoring matrices of small ints"),
        _spec("lbm",
              {"zero": 0.05, "uniform32": 0.2188, "smallint8": 0.1641,
               "medium": 0.1641, "float64": 0.383, "padded": 0.01,
               "random": 0.01},
              mpki=22.0, ipc=0.6, alpha=20.0,
              description="lattice Boltzmann: FP lattices with idle cells"),
        _spec("leslie3d",
              {"zero": 0.1, "uniform32": 0.198, "smallint8": 0.165,
               "medium": 0.22, "float64": 0.297, "padded": 0.01,
               "random": 0.01},
              mpki=18.0, ipc=0.7, alpha=16.0,
              description="CFD solver: structured FP grids, zero halos"),
        _spec("libquantum",
              {"uniform32": 0.4573, "smallint8": 0.3267, "int32": 0.196,
               "padded": 0.01, "random": 0.01},
              mpki=20.0, ipc=0.6, alpha=18.0,
              description="quantum simulation: regular state vectors"),
        _spec("mcf",
              {"zero": 0.03, "smallint8": 0.1335, "pointer": 0.4271,
               "int32": 0.1602, "padded": 0.13, "random": 0.1192},
              mpki=30.0, ipc=0.4, alpha=22.0,
              description="network simplex: pointer-heavy arcs and nodes"),
        _spec("milc",
              {"uniform32": 0.167, "smallint8": 0.1336, "smallint16": 0.1336,
               "medium": 0.1336, "float64": 0.4122, "padded": 0.01,
               "random": 0.01},
              mpki=16.0, ipc=0.7, alpha=16.0,
              description="lattice QCD: SU(3) matrices of doubles"),
        _spec("omnetpp",
              {"pointer": 0.0801, "int32": 0.1335, "int48": 0.2002,
               "wide": 0.0801, "padded": 0.15, "random": 0.3561},
              mpki=12.0, ipc=0.6, alpha=12.0,
              description="discrete-event simulator: scattered heap objects"),
        _spec("perlbench",
              {"smallint8": 0.0667, "pointer": 0.0801, "int32": 0.1068,
               "text": 0.3, "int48": 0.1335, "padded": 0.13,
               "random": 0.1829},
              mpki=3.0, ipc=1.1, alpha=3.0,
              description="interpreter: string buffers and tagged values"),
        _spec("sphinx3",
              {"zero": 0.1, "uniform32": 0.22, "smallint8": 0.33,
               "smallint16": 0.165, "float64": 0.165, "padded": 0.01,
               "random": 0.01},
              mpki=14.0, ipc=0.8, alpha=12.0,
              description="speech recognition: quantised acoustic models"),
        _spec("zeusmp",
              {"zero": 0.05, "uniform32": 0.2093, "smallint8": 0.1744,
               "medium": 0.1744, "float64": 0.3719, "padded": 0.01,
               "random": 0.01},
              mpki=12.0, ipc=0.8, alpha=12.0,
              description="astrophysical MHD on structured grids"),
        _npb("cg.C",
             {"uniform32": 0.1527, "smallint16": 0.1909, "int32": 0.1909,
               "medium": 0.1909, "float64": 0.2546, "padded": 0.01,
               "random": 0.01},
             mpki=17.0, ipc=0.6, alpha=14.0,
             description="conjugate gradient: sparse matrix + index vectors"),
        _npb("sp.C",
             {"medium": 0.1068, "wide": 0.1602, "float64": 0.3336,
               "int48": 0.1335, "padded": 0.15, "random": 0.1159},
             mpki=15.0, ipc=0.7, alpha=12.0,
             description="scalar penta-diagonal solver: dense FP working set"),
        _tpch("tpch.q1",
              {"uniform32": 0.2402, "smallint8": 0.2136, "smallint16": 0.1602,
               "int32": 0.2002, "padded": 0.13, "random": 0.0558},
              mpki=9.0, ipc=0.9, alpha=9.0,
              description="scan-aggregate over lineitem columns"),
        _tpch("tpch.q5",
              {"uniform32": 0.1869, "smallint8": 0.1869, "smallint16": 0.1335,
               "int32": 0.2001, "text": 0.1, "padded": 0.12,
               "random": 0.0726},
              mpki=10.0, ipc=0.8, alpha=10.0,
              description="multi-join with date filters"),
        _tpch("tpch.q13",
              {"zero": 0.04, "uniform32": 0.2669, "smallint8": 0.267,
               "smallint16": 0.1335, "text": 0.15, "padded": 0.1,
               "random": 0.0426},
              mpki=8.0, ipc=0.9, alpha=8.0,
              description="outer-join aggregate with comment strings"),
        _tpch("tpch.q17",
              {"uniform32": 0.1068, "smallint8": 0.1335, "smallint16": 0.1335,
               "pointer": 0.1068, "int32": 0.1602, "padded": 0.15,
               "random": 0.2092},
              mpki=11.0, ipc=0.8, alpha=10.0,
              description="correlated subquery over parts"),
    ]
}
"""All benchmark profiles keyed by name."""

BENCHMARK_NAMES = tuple(PROFILES)


def benchmark_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
        ) from None


def suite_average_reduction() -> float:
    """Mixture-implied suite-average refresh reduction (paper: 37.1 %)."""
    return float(np.mean([p.expected_reduction() for p in PROFILES.values()]))
