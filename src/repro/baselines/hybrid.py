"""Hybrid refresh: charge-aware + access-recency skipping (extension).

Fig. 19 shows ZERO-REFRESH and Smart Refresh exploiting *disjoint*
opportunities: value statistics of resident data versus recency of
activations.  They compose naturally — a refresh group may be skipped
when

* every covered chip row is discharged (ZERO-REFRESH's condition), or
* every covered row was activated within the current retention window
  (Smart Refresh's condition: activation recharged it).

:class:`HybridRefreshEngine` extends the ZERO-REFRESH engine with a
per-row recency table fed by the device's access observer.

**Safety precondition.**  Skipping a refresh because of an activation
*earlier in the window* stretches that row's recharge gap beyond one
window (the activation happened before the skipped slot; the next
refresh comes a full window after it).  This is sound exactly when the
cell retention time exceeds the refresh window — the guard-band every
access-recency scheme (Smart Refresh included) banks on.  The canonical
deployment: run the 32 ms extended-temperature *schedule* on a device
whose actual retention is 64 ms; then any recharge within the current
window leaves at most ~2 windows <= tRET of gap.  The integrity tests
verify this with a :class:`~repro.dram.retention.RetentionTracker` at
``2 x`` the window, and verify the violation when the margin is absent.

This is not in the paper (its Sec. VI-C treats Smart Refresh purely as
a competitor); it is the obvious follow-up the comparison invites, and
the ``ext-hybrid`` experiment quantifies it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshEngine
from repro.dram.timing import TimingParams
from repro.dram.tracking import TrackingCosts


class HybridRefreshEngine(RefreshEngine):
    """ZERO-REFRESH engine augmented with Smart-Refresh recency skips."""

    wants_access_events = True
    """Recency skipping needs demand *reads* replayed as activations —
    the capability drivers consult instead of probing for methods."""

    def __init__(self, device: DramDevice,
                 timing: Optional[TimingParams] = None,
                 staggered: bool = True, policy: str = "per-bank",
                 probes=None):
        super().__init__(device, timing=timing, mode="zero-refresh",
                         staggered=staggered, policy=policy, probes=probes)
        self._recency = np.zeros(
            (self.geometry.num_banks, self.geometry.rows_per_bank),
            dtype=np.int8,
        )
        device.add_access_observer(self.note_access)
        self.recency_skips = 0

    # ------------------------------------------------------------------
    def note_access(self, bank: int, row: int) -> None:
        """An activation recharged this row; it may skip the next slot."""
        self._recency[bank, row] = 1

    @property
    def recency_costs(self) -> TrackingCosts:
        """Extra SRAM for the recency counters (2 bits/row, like Smart
        Refresh's table)."""
        return TrackingCosts(sram_bits=self._recency.size * 2)

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["recency"] = self._recency.copy()
        state["recency_skips"] = self.recency_skips
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        np.copyto(self._recency, state["recency"])
        self.recency_skips = int(state["recency_skips"])

    # ------------------------------------------------------------------
    def _recency_group_status(self, bank: int, ar_set: int) -> np.ndarray:
        """Groups whose every covered row was activated this window."""
        steps = self.group_steps(ar_set)
        rows_matrix = self.counters.rows_for_steps(steps)
        return (self._recency[bank][rows_matrix] > 0).all(axis=0)

    def _process_zero_refresh(self, bank: int, ar_set: int,
                              time_s: float) -> int:
        recent = self._recency_group_status(bank, ar_set)
        set_rows = self.geometry.rows_of_ar_set(ar_set)
        dirty = self.access_bits.test_and_clear(bank, ar_set)
        dirty = dirty or bool(self.device.banks[bank].dirty[set_rows].any())
        if dirty:
            # Refresh the non-recent groups; rows skipped for recency
            # cannot have their discharged status re-derived (they were
            # not opened by the refresh), so mark them conservatively.
            self.stats.dirty_ars += 1
            self.probes.count("refresh.dirty_ars")
            refreshed = self._refresh_groups(bank, ar_set, ~recent, time_s)
            derived = self.derive_group_status(bank, ar_set)
            derived[recent] = False  # conservative: unknown -> charged
            self.status_table.write_vector(bank, ar_set, derived)
            self.stats.status_writes += 1
            self.probes.count("refresh.status_writes")
            if self.probes.tracing:
                self.probes.event("refresh.status_renewal", bank=bank,
                                  ar_set=ar_set, t=time_s,
                                  discharged=int(derived.sum()))
            self.device.banks[bank].dirty[set_rows] = False
            skipped = int(recent.sum())
            self.stats.groups_skipped += skipped
            self.probes.count("refresh.groups_skipped", skipped)
            self.recency_skips += skipped
            self.probes.count("refresh.recency_skips", skipped)
        else:
            self.stats.clean_ars += 1
            self.probes.count("refresh.clean_ars")
            status = self.status_table.read_vector(bank, ar_set)
            self.stats.status_reads += 1
            self.probes.count("refresh.status_reads")
            skip = status | recent
            refreshed = self._refresh_groups(bank, ar_set, ~skip, time_s)
            skipped = int(skip.sum())
            self.stats.groups_skipped += skipped
            self.probes.count("refresh.groups_skipped", skipped)
            recency_only = int((recent & ~status).sum())
            self.recency_skips += recency_only
            self.probes.count("refresh.recency_skips", recency_only)
            if self.watchdog.enabled:
                # recency skips are covered by the retention guard band,
                # not the status table; only status-marked skips must
                # match the detector truth
                self._watchdog_clean_skip(bank, ar_set, status, ~skip,
                                          time_s)
        return refreshed

    # ------------------------------------------------------------------
    def run_window(self, start_time_s: float = 0.0, write_hook=None):
        delta = super().run_window(start_time_s, write_hook)
        # Recency decays once per window: only activations since the
        # last refresh pass count for the next one.
        np.maximum(self._recency - 1, 0, out=self._recency)
        return delta
