"""Smart Refresh baseline (Ghosh & Lee, MICRO 2007; paper Sec. VI-C).

Smart Refresh observes that a row activation recharges the row, so rows
*accessed* within the current retention window need no explicit refresh.
A per-row countdown (2-bit in the original) tracks recency; at refresh
time, rows whose counter shows a recent access are skipped.

Its effectiveness is therefore the fraction of DRAM rows the program
touches per retention window.  Working sets do not grow with installed
capacity, so the touched fraction — and the benefit — collapses as
memory scales from 4 GB to 32 GB, which is exactly the comparison of
Fig. 19.  (The original targeted a 64 MB 3D-stacked DRAM, where touched
fractions were large.)

The model is counter-accurate: a :class:`SmartRefreshTracker` holds the
per-row counters, decayed once per window and reloaded by accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshStats


@dataclass
class SmartRefreshTracker:
    """Per-row access-recency counters (the Smart Refresh table).

    ``counter_bits`` = 2 in the original design: a freshly accessed row
    can skip up to ``2**bits - 1`` upcoming refresh windows minus the
    safety margin; we model the conservative policy of skipping only
    the next window after an access (counter reloaded on access,
    decremented per window, skip while non-zero).
    """

    geometry: DramGeometry
    counter_bits: int = 2

    def __post_init__(self):
        self._counters = np.zeros(
            (self.geometry.num_banks, self.geometry.rows_per_bank), dtype=np.int8
        )
        self.stats = RefreshStats()

    @property
    def table_bits(self) -> int:
        """SRAM cost of the counter table."""
        return self._counters.size * self.counter_bits

    # ------------------------------------------------------------------
    def note_access(self, bank: int, row: int) -> None:
        """A read or write activated this row: it is recharged."""
        self._counters[bank, row] = 1

    def note_accesses(self, banks: np.ndarray, rows: np.ndarray) -> None:
        self._counters[np.asarray(banks), np.asarray(rows)] = 1

    def run_window(self) -> RefreshStats:
        """Process one retention window of refreshes.

        Rows with a live counter were activated recently enough to skip;
        everything else refreshes.  Counters decay afterwards.
        """
        skipped = int((self._counters > 0).sum())
        total = self._counters.size
        delta = RefreshStats(
            ar_commands=self.geometry.num_banks * self.geometry.ar_sets_per_bank,
            groups_refreshed=total - skipped,
            groups_skipped=skipped,
            windows=1,
        )
        np.maximum(self._counters - 1, 0, out=self._counters)
        self.stats = self.stats.merged_with(delta)
        return delta
