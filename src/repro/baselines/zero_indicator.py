"""Zero-indicator-bit baseline (Patel et al., PATMOS 2005).

The prior value-bias scheme the paper contrasts itself with: a *Zero
Indicator Bit* (ZIB) is stored in DRAM for every 8-32 data bits; a
segment whose ZIB says "all zero" need not be refreshed (reads
regenerate zeros from the indicator).  Two properties matter for the
comparison (paper Sec. II-D):

* **Area** — one extra bit per ``granularity_bits`` is 1/8 to 1/32 of
  the whole DRAM capacity, versus one bit per 4 KB row (1/32768) for
  ZERO-REFRESH.
* **Effectiveness without transformation** — the scheme sees raw
  values, has no cell-type handling (it was proposed for embedded DRAM)
  and no value transformation, so at row-refresh granularity it only
  skips rows whose *raw* content is entirely zero — rare (Fig. 6:
  ~2.3 % of 1 KB blocks).

The model evaluates both on raw content arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ZeroIndicatorScheme:
    """ZIB bookkeeping at a configurable granularity."""

    granularity_bits: int = 32  # one indicator bit per this many data bits

    def __post_init__(self):
        if not 8 <= self.granularity_bits <= 64:
            raise ValueError("granularity of 8..64 bits per ZIB expected")

    @property
    def area_overhead(self) -> float:
        """Extra DRAM capacity consumed by the indicator bits (1/8..1/32)."""
        return 1.0 / self.granularity_bits

    def segment_zero_fraction(self, lines: np.ndarray) -> float:
        """Fraction of ZIB segments whose data is all zero."""
        raw = np.ascontiguousarray(lines).view(np.uint8).reshape(-1)
        seg_bytes = self.granularity_bits // 8
        usable = (raw.size // seg_bytes) * seg_bytes
        segments = raw[:usable].reshape(-1, seg_bytes)
        return float((segments == 0).all(axis=1).mean())

    def row_skip_counts(self, page_lines: np.ndarray,
                        lines_per_row: int = 64) -> "tuple[int, int]":
        """``(skippable_rows, total_rows)`` at row-refresh granularity.

        Commodity DRAM refreshes whole rows, so a row is only skippable
        when *every* segment in it is zero — i.e. the raw row is all
        zero.  ``page_lines`` has shape (pages, lines_per_page, words).
        The integer form feeds the per-window refresh accounting of
        :class:`repro.sim.schemes.ZeroIndicatorRefreshScheme`.
        """
        flat = np.ascontiguousarray(page_lines).reshape(-1, 8)
        usable = (len(flat) // lines_per_row) * lines_per_row
        rows = flat[:usable].reshape(-1, lines_per_row * flat.shape[1])
        return int((rows == 0).all(axis=1).sum()), len(rows)

    def row_skip_fraction(self, page_lines: np.ndarray,
                          lines_per_row: int = 64) -> float:
        """Fraction of rows skippable at row-refresh granularity."""
        skippable, total = self.row_skip_counts(page_lines, lines_per_row)
        return skippable / total if total else 0.0
