"""RAIDR baseline (Liu et al., ISCA 2012) with VRT-risk accounting.

RAIDR profiles per-row retention once, bins rows into refresh-rate
classes (e.g. 64 / 128 / 256 ms), and refreshes each bin at its own
rate — most rows retain far longer than 64 ms, so most refreshes go
away.  The paper's criticism (Sec. I, II-D): retention is *not* static.
VRT flips silently move rows below their bin's period, and a static
profile cannot see it; AVATAR's fix is continuous scrubbing with ECC.

:class:`RaidrScheduler` implements the binning and the per-window
refresh-operation accounting; combined with
:class:`~repro.dram.variation.VrtProcess` it also reports the rows that
became unsafe — the reliability cost ZERO-REFRESH avoids entirely
(a skipped ZERO-REFRESH row holds no charge, so its retention time is
irrelevant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dram.variation import RetentionProfile, VrtProcess

DEFAULT_BIN_PERIODS_S = (0.064, 0.128, 0.256)


@dataclass
class RaidrStats:
    """Per-window accounting."""

    windows: int = 0
    refreshes_performed: int = 0
    refreshes_baseline: int = 0
    unsafe_row_windows: int = 0  # row-windows spent below the safe period

    def normalized_refresh(self) -> float:
        if self.refreshes_baseline == 0:
            return 1.0
        return self.refreshes_performed / self.refreshes_baseline

    def reduction(self) -> float:
        return 1.0 - self.normalized_refresh()


class RaidrScheduler:
    """Retention-binned multi-rate refresh with a static profile."""

    def __init__(self, profile: RetentionProfile,
                 bin_periods_s: Sequence[float] = DEFAULT_BIN_PERIODS_S,
                 guardband: float = 2.0):
        """Bins are assigned from the *profiled* retention with a
        safety guardband: a row joins the longest bin whose period times
        ``guardband`` its profiled retention still covers."""
        periods = np.asarray(sorted(bin_periods_s))
        if (periods <= 0).any():
            raise ValueError("bin periods must be positive")
        self.bin_periods_s = periods
        self.guardband = guardband
        safe = profile.row_retention_s / guardband
        # index of the longest allowable bin per row
        self.row_bins = np.zeros(len(profile), dtype=np.int64)
        for i, period in enumerate(periods):
            self.row_bins[safe >= period] = i
        self.assigned_period_s = periods[self.row_bins]
        self.base_period_s = float(periods[0])
        self.stats = RaidrStats()

    # ------------------------------------------------------------------
    def bin_histogram(self) -> np.ndarray:
        """Row counts per bin (ascending period)."""
        return np.bincount(self.row_bins, minlength=len(self.bin_periods_s))

    def expected_reduction(self) -> float:
        """Closed-form refresh reduction of the binning."""
        rates = self.base_period_s / self.assigned_period_s
        return 1.0 - float(rates.mean())

    # ------------------------------------------------------------------
    def run_window(self, vrt: Optional[VrtProcess] = None) -> RaidrStats:
        """One base-period window: refresh due bins, account VRT risk."""
        window = self.stats.windows
        due = (window % (self.assigned_period_s
                         / self.base_period_s).astype(np.int64)) == 0
        performed = int(due.sum())
        delta = RaidrStats(
            windows=1,
            refreshes_performed=performed,
            refreshes_baseline=len(self.row_bins),
        )
        if vrt is not None:
            vrt.advance(self.base_period_s)
            unsafe = vrt.unsafe_rows(self.assigned_period_s)
            delta.unsafe_row_windows = int(len(unsafe))
        self.stats.windows += 1
        self.stats.refreshes_performed += delta.refreshes_performed
        self.stats.refreshes_baseline += delta.refreshes_baseline
        self.stats.unsafe_row_windows += delta.unsafe_row_windows
        return delta

    def run(self, n_windows: int, vrt: Optional[VrtProcess] = None) -> RaidrStats:
        """Drive ``n_windows`` base-period windows through the sim kernel.

        Composition with the unified kernel keeps RAIDR on the same
        timeline as every other scheme; the native :class:`RaidrStats`
        (including VRT risk) accumulate on ``self.stats`` as before.
        """
        from repro.sim.kernel import SimKernel
        from repro.sim.schemes import RaidrScheme

        kernel = SimKernel(RaidrScheme(self, vrt=vrt),
                           window_s=self.base_period_s, name="raidr")
        kernel.run(n_windows)
        return self.stats
