"""Baseline refresh policies the paper compares against.

* Conventional DDRx auto-refresh is the ``mode='conventional'`` setting
  of :class:`repro.dram.refresh.RefreshEngine` (every row, every
  window).
* :mod:`repro.baselines.smart_refresh` — access-recency skipping
  (Ghosh & Lee), the Fig. 19 comparison.
* :mod:`repro.baselines.zero_indicator` — the per-segment zero-bit
  scheme of Patel et al., contrasted on area overhead and raw-value
  effectiveness (Sec. II-D).
"""

from repro.baselines.hybrid import HybridRefreshEngine
from repro.baselines.raidr import RaidrScheduler, RaidrStats
from repro.baselines.smart_refresh import SmartRefreshTracker
from repro.baselines.zero_indicator import ZeroIndicatorScheme

__all__ = [
    "HybridRefreshEngine",
    "RaidrScheduler",
    "RaidrStats",
    "SmartRefreshTracker",
    "ZeroIndicatorScheme",
]
