"""The unified retention-window simulation kernel.

Every refresh mechanism in this reproduction used to carry its own
window loop (``ZeroRefreshSystem.run_windows``, the Fig. 19 Smart
Refresh loop, ``RaidrScheduler.run``, rank aggregation in
``MultiRankSystem``).  :class:`SimKernel` is the one loop they all run
through now: warmup windows (simulated, unmeasured), a measurement
boundary, then measured windows whose stats deltas accumulate into a
single total via non-mutating merges.

The kernel is deliberately thin — *when* windows happen and what gets
counted, nothing about *how* a scheme decides to refresh.  Traffic is a
callback (``traffic(window_index, t0) -> write_hook | None``) so the
caller keeps full control of its RNG stream: the kernel never draws
randomness, which is what makes kernel-driven runs bit-identical to the
loops it replaced (asserted by ``tests/sim/test_parity.py``).

:func:`run_concurrent` composes kernels over the same timeline in
lockstep — the multi-rank DIMM model is exactly this composition plus
stats aggregation (see :mod:`repro.core.multirank`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.dram.refresh import RefreshStats
from repro.obs import get_probes
from repro.obs.spans import get_tracer
from repro.sim.scheme import RefreshScheme, WriteHook

TrafficSource = Callable[[int, float], Optional[WriteHook]]
"""``traffic(window_index, window_start_s)`` builds the write hook that
injects one measured window's memory traffic (or ``None`` for an idle
window).  Called once per measured window, in order — RNG draws inside
it happen exactly as often as in the pre-kernel loops."""


class SimKernel:
    """Drives warmup + measured retention windows of one scheme.

    Parameters
    ----------
    scheme:
        The :class:`~repro.sim.scheme.RefreshScheme` to drive.
    window_s:
        Simulated length of one retention window (``tRET``).
    traffic:
        Optional per-window :data:`TrafficSource`; only measured
        windows carry traffic (warmup models the quiet fast-forward the
        paper's simulations start from).
    on_measure_start:
        Callback fired once, after warmup and before the first measured
        window — the place to reset externally-owned measurement
        counters (e.g. the controller's EBDI op count).
    probes:
        A :class:`~repro.obs.probes.ProbeBus` (default: the ambient bus,
        :func:`repro.obs.get_probes`); phases ``warmup`` and ``measure``
        are timed, and each window emits a ``sim.window`` trace event.
    name:
        Label carried on this kernel's probe events (e.g. ``"rank0"``).
    """

    def __init__(
        self,
        scheme: RefreshScheme,
        window_s: float,
        *,
        traffic: Optional[TrafficSource] = None,
        on_measure_start: Optional[Callable[[], None]] = None,
        probes=None,
        start_time_s: float = 0.0,
        name: str = "",
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.scheme = scheme
        self.window_s = window_s
        self.traffic = traffic
        self.on_measure_start = on_measure_start
        self.probes = probes if probes is not None else get_probes()
        self.time_s = start_time_s
        self.name = name
        self.stats = RefreshStats()
        self._window_index = 0

    # ------------------------------------------------------------------
    def run_warmup(self, n_windows: int) -> None:
        """Simulate ``n_windows`` quiet windows without measuring them.

        The first pass over freshly populated memory must refresh
        everything while the scheme derives its tracking state — a
        transient the measured windows should not include.
        """
        if n_windows <= 0:
            return
        # span + phase: the phase totals wall time per name on the
        # probe bus, the span places it in the run's causal tree
        with self.probes.phase("warmup"), \
                get_tracer().span("warmup", kernel=self.name,
                                  windows=n_windows):
            for _ in range(n_windows):
                self.scheme.run_window(self.time_s)
                self.probes.event("sim.window", kernel=self.name,
                                  phase="warmup", t=self.time_s)
                self.time_s += self.window_s

    def begin_measurement(self) -> None:
        """Reset the measured-stats accumulator; fire ``on_measure_start``."""
        if self.on_measure_start is not None:
            self.on_measure_start()
        self.stats = RefreshStats()
        self._window_index = 0

    def step(self) -> RefreshStats:
        """Run one measured window; returns its stats delta."""
        t0 = self.time_s
        hook = None
        if self.traffic is not None:
            hook = self.traffic(self._window_index, t0)
        delta = self.scheme.run_window(t0, write_hook=hook)
        self.stats = self.stats.merged_with(delta)
        self.probes.count("sim.windows")
        if self.probes.enabled and delta.groups_total:
            self.probes.observe(
                "sim.window_skip_rate",
                delta.groups_skipped / delta.groups_total,
            )
        if self.probes.tracing:
            self.probes.event(
                "sim.window", kernel=self.name, phase="measure",
                index=self._window_index, t=t0,
                refreshed=delta.groups_refreshed,
                skipped=delta.groups_skipped,
            )
        self.time_s += self.window_s
        self._window_index += 1
        return delta

    # ------------------------------------------------------------------
    def checkpoint(self, extra=None):
        """Freeze this kernel at the current window boundary.

        Thin delegate to :func:`repro.sim.checkpoint.save_checkpoint`;
        raises :class:`~repro.sim.checkpoint.CheckpointError` when the
        scheme does not declare the checkpointable capability.
        """
        from repro.sim.checkpoint import save_checkpoint

        return save_checkpoint(self, extra=extra)

    def restore(self, ckpt):
        """Restore a :class:`~repro.sim.checkpoint.KernelCheckpoint`
        into this kernel; returns the checkpoint's ``extra`` payload."""
        from repro.sim.checkpoint import restore_checkpoint

        return restore_checkpoint(self, ckpt)

    def run(self, n_windows: int, warmup_windows: int = 0) -> RefreshStats:
        """Warmup, measurement boundary, ``n_windows`` measured windows.

        Returns the accumulated measured stats (also on ``self.stats``).
        """
        self.run_warmup(warmup_windows)
        self.begin_measurement()
        with self.probes.phase("measure"), \
                get_tracer().span("measure", kernel=self.name,
                                  windows=n_windows):
            for _ in range(n_windows):
                self.step()
        self.probes.gauge("sim.time_s", self.time_s)
        return self.stats


def run_concurrent(
    kernels: Sequence[SimKernel], n_windows: int, warmup_windows: int = 0
) -> List[RefreshStats]:
    """Drive several kernels over the *same* timeline, in lockstep.

    Window ``w`` of every kernel runs before window ``w + 1`` of any —
    the concurrency structure of independent refresh domains (DIMM
    ranks, channels).  Domains share no state, so lockstep and
    sequential execution produce identical per-kernel results; what the
    composition changes is the *meaning* of the aggregate: windows are
    simultaneous, which is why cross-kernel stats aggregation uses
    :meth:`RefreshStats.aggregate_concurrent` rather than a plain merge.
    """
    for kernel in kernels:
        kernel.run_warmup(warmup_windows)
        kernel.begin_measurement()
    for _ in range(n_windows):
        for kernel in kernels:
            with kernel.probes.phase("measure"):
                kernel.step()
    return [kernel.stats for kernel in kernels]
