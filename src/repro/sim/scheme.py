"""The :class:`RefreshScheme` protocol every refresh mechanism speaks.

A *scheme* is anything that can process one retention window:
ZERO-REFRESH's :class:`~repro.dram.refresh.RefreshEngine` (in all its
modes), the hybrid engine, and the adapter-wrapped baselines in
:mod:`repro.sim.schemes`.  The :class:`~repro.sim.kernel.SimKernel`
drives schemes through warmup and measured windows without knowing
which mechanism it is timing — the seam that keeps cross-scheme
comparisons (Fig. 14/15/17/19) on one timeline by construction.

Capabilities are *declared*, not discovered: the old driver decided
whether to replay demand reads by probing ``hasattr(engine,
"_note_access")``; a scheme now states ``wants_access_events`` in its
:class:`SchemeCapabilities` and drivers branch on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable

WriteHook = Callable[[float, float], None]
"""``hook(span_start_s, span_end_s)`` — inject the traffic of one
inter-command span; called by timed schemes between refresh slots."""


@dataclass(frozen=True)
class SchemeCapabilities:
    """What a refresh scheme needs from (and offers to) its driver.

    wants_access_events:
        The scheme skips based on access recency, so demand *reads*
        must be replayed as row activations (hybrid / Smart Refresh).
        Charge-aware schemes only care about writes, which reach them
        through the device write observers.
    timed:
        ``run_window``'s ``start_time_s`` and the write hook's span
        boundaries are meaningful simulated time.  Untimed schemes
        (per-window counter models) accept and ignore them.
    consumes_write_hook:
        The scheme interleaves the hook's traffic between its refresh
        commands.  Drivers may skip building a hook otherwise.
    checkpointable:
        The scheme implements the
        :class:`~repro.sim.checkpoint.Checkpointable` capability
        (``checkpoint_state``/``restore_state``), so a
        :class:`~repro.sim.kernel.SimKernel` driving it can be
        serialized at window boundaries and resumed bit-identically.
    """

    wants_access_events: bool = False
    timed: bool = True
    consumes_write_hook: bool = True
    checkpointable: bool = False


@runtime_checkable
class RefreshScheme(Protocol):
    """One retention window of refresh decisions.

    ``run_window`` returns the window's stats *delta* — an object
    supporting ``merged_with`` (normally
    :class:`~repro.dram.refresh.RefreshStats`) that the kernel
    accumulates without mutating either operand.
    """

    capabilities: SchemeCapabilities

    def run_window(self, start_time_s: float = 0.0,
                   write_hook: Optional[WriteHook] = None):
        ...
