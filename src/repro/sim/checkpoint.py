"""Kernel checkpointing: freeze a simulation at a window boundary.

A :class:`~repro.sim.kernel.SimKernel` is a thin loop over a
:class:`~repro.sim.scheme.RefreshScheme`; between two windows its whole
state is the scheme's state plus four scalars (simulated time, window
index, accumulated stats, window length).  :func:`save_checkpoint`
captures exactly that into a :class:`KernelCheckpoint`, and
:func:`restore_checkpoint` puts it back — into the same kernel, or into
a freshly constructed one driving an identically configured scheme.

Schemes opt in through the :class:`Checkpointable` capability
(``checkpoint_state() -> dict`` / ``restore_state(dict)``) and declare
it via ``capabilities.checkpointable``; the ZERO-REFRESH
:class:`~repro.dram.refresh.RefreshEngine` (all modes) and the hybrid
engine implement it.  The contract is *bit-identity*: a run that
checkpoints and restores at any window boundary — or is saved, killed,
and finished by a new process from the serialized bytes — must produce
exactly the stats an uninterrupted run produces.  The golden-parity
checkpoint tests (``tests/sim/test_checkpoint.py``) enforce this
against the same frozen numbers as ``tests/sim/test_parity.py``.

What a checkpoint does **not** restore: probe buses (observability is
append-only history, not simulation state — a snapshot of the ambient
bus rides along for diagnostics) and construction-time configuration
(geometry, timing, traffic callbacks; restoring validates against the
target kernel instead of rebuilding it).  Caller-owned randomness —
e.g. a :class:`~repro.core.zero_refresh.ZeroRefreshSystem`'s RNG that
feeds the traffic callback — travels in the ``extra`` slot, captured
and re-applied by the system that owns it
(:meth:`ZeroRefreshSystem.checkpoint_state`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Protocol, runtime_checkable

from repro.dram.refresh import RefreshStats

CHECKPOINT_SCHEMA = 1


class CheckpointError(RuntimeError):
    """Raised for unsupported schemes and mismatched restore targets."""


@runtime_checkable
class Checkpointable(Protocol):
    """The capability a scheme implements to support checkpointing.

    ``checkpoint_state`` returns a picklable dict that *copies* all
    mutable state (so the checkpoint is immune to further simulation);
    ``restore_state`` writes such a dict back into the live object
    without rebinding arrays other components may alias.
    """

    def checkpoint_state(self) -> dict:
        ...

    def restore_state(self, state: dict) -> None:
        ...


@dataclass
class KernelCheckpoint:
    """One kernel frozen at a window boundary."""

    schema: int
    window_s: float
    time_s: float
    window_index: int
    stats: dict
    scheme_state: dict
    probes: Optional[dict] = None
    extra: Optional[dict] = field(default=None)

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "KernelCheckpoint":
        ckpt = pickle.loads(blob)
        if not isinstance(ckpt, cls):
            raise CheckpointError(
                f"blob does not contain a {cls.__name__}"
            )
        if ckpt.schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema {ckpt.schema} != {CHECKPOINT_SCHEMA}"
            )
        return ckpt

    def save(self, path) -> None:
        """Write the checkpoint atomically (tmp + replace)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(self.to_bytes())
        tmp.replace(path)

    @classmethod
    def load(cls, path) -> "KernelCheckpoint":
        return cls.from_bytes(Path(path).read_bytes())


def _require_checkpointable(scheme) -> None:
    capabilities = getattr(scheme, "capabilities", None)
    if capabilities is None or not getattr(capabilities, "checkpointable",
                                           False):
        raise CheckpointError(
            f"scheme {type(scheme).__name__} does not declare the "
            f"checkpointable capability"
        )
    if not isinstance(scheme, Checkpointable):
        raise CheckpointError(
            f"scheme {type(scheme).__name__} declares checkpointable but "
            f"does not implement checkpoint_state/restore_state"
        )


def save_checkpoint(kernel, extra: Optional[dict] = None) -> KernelCheckpoint:
    """Capture ``kernel`` at its current window boundary.

    Call between windows (after :meth:`SimKernel.step` returns), never
    mid-window.  ``extra`` carries caller-owned state the kernel cannot
    see — e.g. the driving system's RNG — round-tripped verbatim.
    """
    scheme = kernel.scheme
    _require_checkpointable(scheme)
    probes = kernel.probes.snapshot() if kernel.probes.enabled else None
    return KernelCheckpoint(
        schema=CHECKPOINT_SCHEMA,
        window_s=kernel.window_s,
        time_s=kernel.time_s,
        window_index=kernel._window_index,
        stats=dict(vars(kernel.stats)),
        scheme_state=scheme.checkpoint_state(),
        probes=probes,
        extra=dict(extra) if extra is not None else None,
    )


def restore_checkpoint(kernel, ckpt: KernelCheckpoint) -> Optional[dict]:
    """Restore ``ckpt`` into ``kernel``; returns the ``extra`` payload.

    The kernel must drive an identically configured scheme (same
    window length; scheme-level validation — mode, policy, geometry
    shape — happens in the scheme's ``restore_state``).  The probe
    snapshot is *not* replayed: observability is history, and a resumed
    run accumulates its own.
    """
    if ckpt.schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {ckpt.schema} != {CHECKPOINT_SCHEMA}"
        )
    if ckpt.window_s != kernel.window_s:
        raise CheckpointError(
            f"checkpoint window_s={ckpt.window_s} != kernel "
            f"window_s={kernel.window_s}"
        )
    scheme = kernel.scheme
    _require_checkpointable(scheme)
    scheme.restore_state(ckpt.scheme_state)
    kernel.time_s = ckpt.time_s
    kernel._window_index = ckpt.window_index
    kernel.stats = RefreshStats(**ckpt.stats)
    return ckpt.extra
