"""Adapters that let the baselines speak :class:`RefreshScheme`.

ZERO-REFRESH's :class:`~repro.dram.refresh.RefreshEngine` (and the
hybrid engine built on it) satisfy the protocol natively — their
``run_window(start_time_s, write_hook)`` *is* the scheme interface and
they declare their own capabilities.  The baselines model a window as a
counter update rather than a timed command walk, so each gets a thin
adapter here that feeds it per-window inputs and returns a
:class:`~repro.dram.refresh.RefreshStats` delta the kernel can
accumulate uniformly.  Adapters never own randomness: anything drawn
per window comes through caller-supplied callbacks, preserving the RNG
order of the loops they replaced.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.dram.refresh import RefreshStats
from repro.obs import get_probes
from repro.sim.scheme import SchemeCapabilities, WriteHook

AccessFeed = Callable[[], Tuple[np.ndarray, np.ndarray]]
"""Per-window access feed: returns ``(banks, rows)`` activated this
window.  Called exactly once per measured window."""


class SmartRefreshScheme:
    """Smart Refresh tracker as a kernel-drivable scheme.

    Each window: deliver the window's row activations to the tracker
    (recency reload), then run its skip-or-refresh pass.
    """

    capabilities = SchemeCapabilities(
        wants_access_events=True, timed=False, consumes_write_hook=False
    )

    def __init__(self, tracker, window_accesses: Optional[AccessFeed] = None,
                 probes=None):
        self.tracker = tracker
        self.window_accesses = window_accesses
        self.probes = probes if probes is not None else get_probes()

    def run_window(self, start_time_s: float = 0.0,
                   write_hook: Optional[WriteHook] = None) -> RefreshStats:
        if self.window_accesses is not None:
            banks, rows = self.window_accesses()
            self.tracker.note_accesses(banks, rows)
        delta = self.tracker.run_window()
        self.probes.count("smart_refresh.groups_skipped", delta.groups_skipped)
        if self.probes.tracing:
            self.probes.event("smart_refresh.window", t=start_time_s,
                              refreshed=delta.groups_refreshed,
                              skipped=delta.groups_skipped)
        return delta


class RaidrScheme:
    """RAIDR's retention-binned scheduler as a kernel-drivable scheme.

    The scheduler keeps its native :class:`~repro.baselines.raidr.RaidrStats`
    (including VRT risk accounting, which has no :class:`RefreshStats`
    analogue); the adapter returns the per-window delta translated into
    refresh-group counters so cross-scheme reductions compare directly.
    """

    capabilities = SchemeCapabilities(timed=False, consumes_write_hook=False)

    def __init__(self, scheduler, vrt=None, probes=None):
        self.scheduler = scheduler
        self.vrt = vrt
        self.probes = probes if probes is not None else get_probes()

    def run_window(self, start_time_s: float = 0.0,
                   write_hook: Optional[WriteHook] = None) -> RefreshStats:
        native = self.scheduler.run_window(self.vrt)
        skipped = native.refreshes_baseline - native.refreshes_performed
        self.probes.count("raidr.unsafe_row_windows", native.unsafe_row_windows)
        if self.probes.tracing:
            self.probes.event("raidr.window", t=start_time_s,
                              refreshed=native.refreshes_performed,
                              skipped=skipped,
                              unsafe_rows=native.unsafe_row_windows)
        return RefreshStats(
            groups_refreshed=native.refreshes_performed,
            groups_skipped=skipped,
            windows=1,
        )


ContentFeed = Callable[[], np.ndarray]
"""Per-window resident-content feed: ``(pages, lines_per_page, words)``
raw (untransformed) memory content the indicator bits describe."""


class ZeroIndicatorRefreshScheme:
    """Patel et al.'s zero-indicator bits as a kernel-drivable scheme.

    The underlying model is analytic (a row is skippable iff its raw
    content is all zero); the adapter evaluates it against the window's
    resident content, so content churn between windows shows up as a
    changing skip rate on the shared timeline.
    """

    capabilities = SchemeCapabilities(timed=False, consumes_write_hook=False)

    def __init__(self, scheme, content: ContentFeed, lines_per_row: int = 64,
                 probes=None):
        self.scheme = scheme
        self.content = content
        self.lines_per_row = lines_per_row
        self.probes = probes if probes is not None else get_probes()

    def run_window(self, start_time_s: float = 0.0,
                   write_hook: Optional[WriteHook] = None) -> RefreshStats:
        page_lines = self.content()
        skippable, total = self.scheme.row_skip_counts(
            page_lines, self.lines_per_row
        )
        if self.probes.tracing:
            self.probes.event("zero_indicator.window", t=start_time_s,
                              refreshed=total - skippable, skipped=skippable)
        return RefreshStats(
            groups_refreshed=total - skippable,
            groups_skipped=skippable,
            windows=1,
        )
