"""The unified retention-window simulation kernel.

One loop for every refresh mechanism: :class:`SimKernel` drives warmup
and measured windows over the :class:`RefreshScheme` protocol, with
adapters (:mod:`repro.sim.schemes`) for the baselines and
:func:`run_concurrent` for lockstep composition of independent refresh
domains (multi-rank DIMMs).  See DESIGN.md, "Simulation kernel and
probe bus".
"""

from repro.sim.kernel import SimKernel, run_concurrent
from repro.sim.scheme import RefreshScheme, SchemeCapabilities, WriteHook
from repro.sim.schemes import (
    RaidrScheme,
    SmartRefreshScheme,
    ZeroIndicatorRefreshScheme,
)

__all__ = [
    "RaidrScheme",
    "RefreshScheme",
    "SchemeCapabilities",
    "SimKernel",
    "SmartRefreshScheme",
    "WriteHook",
    "ZeroIndicatorRefreshScheme",
    "run_concurrent",
]
