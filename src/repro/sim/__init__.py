"""The unified retention-window simulation kernel.

One loop for every refresh mechanism: :class:`SimKernel` drives warmup
and measured windows over the :class:`RefreshScheme` protocol, with
adapters (:mod:`repro.sim.schemes`) for the baselines,
:func:`run_concurrent` for lockstep composition of independent refresh
domains (multi-rank DIMMs), and window-boundary checkpointing
(:mod:`repro.sim.checkpoint`) for schemes that declare the
:class:`Checkpointable` capability.  See DESIGN.md, "Simulation kernel
and probe bus" and "Run lifecycle".
"""

from repro.sim.checkpoint import (
    CheckpointError,
    Checkpointable,
    KernelCheckpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.sim.kernel import SimKernel, run_concurrent
from repro.sim.scheme import RefreshScheme, SchemeCapabilities, WriteHook
from repro.sim.schemes import (
    RaidrScheme,
    SmartRefreshScheme,
    ZeroIndicatorRefreshScheme,
)

__all__ = [
    "CheckpointError",
    "Checkpointable",
    "KernelCheckpoint",
    "RaidrScheme",
    "RefreshScheme",
    "SchemeCapabilities",
    "SimKernel",
    "SmartRefreshScheme",
    "WriteHook",
    "ZeroIndicatorRefreshScheme",
    "restore_checkpoint",
    "run_concurrent",
    "save_checkpoint",
]
