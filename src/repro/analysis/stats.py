"""Statistical helpers shared by the experiments."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for normalised-metric averages)."""
    arr = np.asarray(values, dtype=float)
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def empirical_cdf(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """P(X <= g) for each grid point."""
    sorted_samples = np.sort(np.asarray(samples))
    return np.searchsorted(sorted_samples, grid, side="right") / len(sorted_samples)


def summarize_distribution(samples: np.ndarray) -> Dict[str, float]:
    """Mean plus the quartile-ish summary the Fig. 5 CDFs convey."""
    samples = np.asarray(samples)
    return {
        "mean": float(samples.mean()),
        "p10": float(np.percentile(samples, 10)),
        "p25": float(np.percentile(samples, 25)),
        "p50": float(np.percentile(samples, 50)),
        "p75": float(np.percentile(samples, 75)),
        "p90": float(np.percentile(samples, 90)),
    }
