"""Calibration verification: measured simulation vs analytic model.

Two models predict a benchmark's refresh reduction:

* the *mixture-implied* analytic value
  (:meth:`~repro.workloads.benchmarks.BenchmarkProfile.expected_reduction`),
  derived from the content-class table and the contamination survival;
* the *measured* value from a full simulation, which additionally pays
  the write-traffic dirty-set transient.

This module quantifies the agreement, so calibration drift (a content
class change, a pipeline regression) surfaces as a number instead of a
silently wrong figure.  The ``benchmark_sweep`` example and the
calibration tests use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.core.metrics import RunResult
from repro.workloads.benchmarks import BenchmarkProfile


@dataclass(frozen=True)
class CalibrationPoint:
    """One benchmark's analytic-vs-measured comparison."""

    benchmark: str
    analytic_reduction: float
    measured_reduction: float
    allocated_fraction: float = 1.0

    @property
    def analytic_with_idle(self) -> float:
        """Analytic prediction including idle-page skipping."""
        return (self.allocated_fraction * self.analytic_reduction
                + (1.0 - self.allocated_fraction))

    @property
    def error(self) -> float:
        """measured - analytic (negative: simulation under-achieves)."""
        return self.measured_reduction - self.analytic_with_idle

    @property
    def relative_error(self) -> float:
        if self.analytic_with_idle == 0:
            return 0.0
        return self.error / self.analytic_with_idle


@dataclass(frozen=True)
class CalibrationReport:
    points: List[CalibrationPoint]

    @property
    def mean_error(self) -> float:
        return float(np.mean([p.error for p in self.points]))

    @property
    def max_abs_error(self) -> float:
        return float(max(abs(p.error) for p in self.points))

    @property
    def rank_correlation(self) -> float:
        """Spearman correlation of analytic vs measured ordering."""
        analytic = [p.analytic_with_idle for p in self.points]
        measured = [p.measured_reduction for p in self.points]
        ra = np.argsort(np.argsort(analytic)).astype(float)
        rm = np.argsort(np.argsort(measured)).astype(float)
        if len(ra) < 2 or ra.std() == 0 or rm.std() == 0:
            return 1.0
        return float(np.corrcoef(ra, rm)[0, 1])

    def within(self, abs_tolerance: float) -> bool:
        return self.max_abs_error <= abs_tolerance


def compare(profile: BenchmarkProfile, result: RunResult,
            row_bytes: int = 4096) -> CalibrationPoint:
    """Build a calibration point from a finished run."""
    return CalibrationPoint(
        benchmark=profile.name,
        analytic_reduction=profile.expected_reduction(row_bytes),
        measured_reduction=result.refresh_reduction,
        allocated_fraction=result.allocated_fraction,
    )


def report(points: Iterable[CalibrationPoint]) -> CalibrationReport:
    points = list(points)
    if not points:
        raise ValueError("no calibration points")
    return CalibrationReport(points=points)
