"""Analysis utilities: statistics, calibration checks, report rendering."""

from repro.analysis.calibration import (
    CalibrationPoint,
    CalibrationReport,
    compare,
    report,
)
from repro.analysis.report import render_kv, render_table
from repro.analysis.stats import (
    empirical_cdf,
    geometric_mean,
    summarize_distribution,
)

__all__ = [
    "CalibrationPoint",
    "CalibrationReport",
    "compare",
    "report",
    "empirical_cdf",
    "geometric_mean",
    "render_kv",
    "render_table",
    "summarize_distribution",
]
