"""Plain-text table rendering for experiment output.

Experiments print the same rows/series the paper's tables and figures
report; this module renders them as aligned ASCII tables so the bench
harness and the example scripts produce readable artifacts without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value) -> str:
    """Human formatting: floats to 3 decimals, percents passed through."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table with a header rule."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt_line(headers), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def render_kv(title: str, pairs: Iterable) -> str:
    """Render a titled key/value block."""
    lines = [title, "-" * len(title)]
    for key, value in pairs:
        lines.append(f"{key}: {format_cell(value)}")
    return "\n".join(lines)
