"""ZERO-REFRESH: charge-aware DRAM refresh reduction with value transformation.

This package is a full reproduction of the HPCA 2020 paper
"Charge-Aware DRAM Refresh Reduction with Value Transformation"
(Kim, Kwak, Baek, Kim and Huh).  It provides:

``repro.transform``
    The CPU-side value-transformation pipeline: EBDI base-delta encoding
    with true-/anti-cell aware codes, bit-plane transposition, and the
    data-rotation stage that maps cachelines onto DRAM chips.

``repro.dram``
    A structural DRAM model: geometry, true/anti-cell layout, charge
    state, retention, the per-bank auto-refresh engine with staggered
    refresh counters, and the discharged-row tracking hardware.

``repro.controller``
    The memory controller connecting the transformation pipeline to the
    DRAM device, including address mapping and refresh scheduling.

``repro.cache`` / ``repro.cpu``
    A write-back cache hierarchy and a trace-driven core timing model
    used for the IPC evaluation.

``repro.osmodel``
    The operating-system page model (zero-on-free cleansing and the
    allocation scenarios used in the paper's evaluation).

``repro.energy``
    DDR4 power modelling (Micron-calculator style), SRAM leakage/area
    estimates and whole-system energy accounting.

``repro.baselines``
    Conventional auto-refresh, Smart Refresh, and the zero-indicator-bit
    scheme used for comparisons.

``repro.workloads``
    Synthetic benchmark memory-content generators, access traces, and
    data-center utilisation traces.

``repro.experiments``
    One runner per table/figure of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, ZeroRefreshSystem
    from repro.workloads import benchmark_profile

    config = SystemConfig.scaled(total_bytes=32 << 20)
    system = ZeroRefreshSystem(config)
    system.populate(benchmark_profile("mcf"), seed=7)
    stats = system.run_windows(8)
    print(stats.normalized_refresh())
"""

__all__ = ["SystemConfig", "ZeroRefreshSystem", "RefreshStats"]

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "SystemConfig": ("repro.core.config", "SystemConfig"),
    "RefreshStats": ("repro.core.metrics", "RefreshStats"),
    "ZeroRefreshSystem": ("repro.core.zero_refresh", "ZeroRefreshSystem"),
}


def __getattr__(name):
    """Lazily resolve the top-level convenience exports (PEP 562).

    Keeps ``import repro.transform`` cheap for users who only need the
    codec, without dragging in the whole simulator stack.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
