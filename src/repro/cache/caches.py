"""Set-associative write-back caches (the GEMS/Ruby stand-in).

The simulated hierarchy exists to produce the *DRAM-visible* traffic of
a program: the stream of fills (reads) and dirty writebacks (writes)
that misses in the last-level cache.  Only that stream feeds the value
transformation and the refresh model, so the caches are functional
(tags + LRU + dirty bits), not cycle-accurate.

Geometry defaults follow Table II: 32 KB 8-way L1D per core and a
shared 32-way LLC of 2 MB per core, 64 B lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class MemoryEvent:
    """Traffic emitted toward DRAM by a cache miss."""

    line_addr: int
    is_write: bool  # True: dirty writeback; False: fill read


class SetAssociativeCache:
    """Write-back, write-allocate cache with true-LRU replacement."""

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 64,
                 name: str = "cache"):
        if capacity_bytes % (ways * line_bytes) != 0:
            raise ValueError("capacity must divide into ways * line size")
        self.name = name
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        # per set: list of (tag, dirty) in LRU order (front = MRU)
        self._sets: List[List[list]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def _locate(self, line_addr: int):
        set_idx = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        return set_idx, tag

    def access(self, line_addr: int, is_write: bool):
        """Access one line; returns (hit, evicted MemoryEvent or None).

        On a miss the line is allocated; if that evicts a dirty victim,
        the eviction is returned so the caller can push it down the
        hierarchy (or to DRAM).
        """
        set_idx, tag = self._locate(line_addr)
        ways = self._sets[set_idx]
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.insert(0, ways.pop(i))
                entry[1] = entry[1] or is_write
                self.hits += 1
                return True, None
        self.misses += 1
        evicted = None
        if len(ways) >= self.ways:
            victim_tag, victim_dirty = ways.pop()
            if victim_dirty:
                victim_addr = victim_tag * self.num_sets + set_idx
                evicted = MemoryEvent(line_addr=victim_addr, is_write=True)
                self.writebacks += 1
        ways.insert(0, [tag, is_write])
        return False, evicted

    def flush(self) -> List[MemoryEvent]:
        """Write back every dirty line (end-of-run drain)."""
        events = []
        for set_idx, ways in enumerate(self._sets):
            for tag, dirty in ways:
                if dirty:
                    events.append(
                        MemoryEvent(line_addr=tag * self.num_sets + set_idx,
                                    is_write=True)
                    )
            ways.clear()
        self.writebacks += len(events)
        return events

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """Per-core L1D caches over a shared inclusive-enough LLC (Table II).

    ``access`` returns the DRAM-bound events the access produced: at
    most one fill read (LLC miss) plus any dirty writebacks evicted on
    the way.
    """

    def __init__(self, num_cores: int = 4, l1_bytes: int = 32 << 10,
                 l1_ways: int = 8, llc_bytes_per_core: int = 2 << 20,
                 llc_ways: int = 32, line_bytes: int = 64):
        self.num_cores = num_cores
        self.line_bytes = line_bytes
        self.l1 = [
            SetAssociativeCache(l1_bytes, l1_ways, line_bytes, name=f"L1-{c}")
            for c in range(num_cores)
        ]
        self.llc = SetAssociativeCache(
            llc_bytes_per_core * num_cores, llc_ways, line_bytes, name="LLC"
        )

    def access(self, core: int, line_addr: int, is_write: bool) -> List[MemoryEvent]:
        """Run one demand access through the hierarchy."""
        if not 0 <= core < self.num_cores:
            raise ValueError("core index out of range")
        events: List[MemoryEvent] = []
        l1_hit, l1_evict = self.l1[core].access(line_addr, is_write)
        if l1_evict is not None:
            # dirty L1 victim is absorbed by (written into) the LLC
            _, llc_evict = self.llc.access(l1_evict.line_addr, True)
            if llc_evict is not None:
                events.append(llc_evict)
        if l1_hit:
            return events
        llc_hit, llc_evict = self.llc.access(line_addr, is_write)
        if llc_evict is not None:
            events.append(llc_evict)
        if not llc_hit:
            events.append(MemoryEvent(line_addr=line_addr, is_write=False))
        return events

    def drain(self) -> List[MemoryEvent]:
        """Flush every dirty line to DRAM (end of simulation)."""
        events: List[MemoryEvent] = []
        for l1 in self.l1:
            for event in l1.flush():
                _, llc_evict = self.llc.access(event.line_addr, True)
                if llc_evict is not None:
                    events.append(llc_evict)
        events.extend(self.llc.flush())
        return events
