"""Cache hierarchy producing the DRAM-visible traffic (Table II).

See :mod:`repro.cache.caches` for the set-associative write-back model
(per-core L1D caches over a shared LLC).  The hierarchy's output — LLC
fill reads and dirty writebacks — is exactly the stream the value
transformation pipeline operates on (paper Fig. 7 places the EBDI
module between LLC miss handling and the memory controller).
"""

from repro.cache.caches import CacheHierarchy, MemoryEvent, SetAssociativeCache

__all__ = ["CacheHierarchy", "MemoryEvent", "SetAssociativeCache"]
