"""Analytical out-of-order core model for refresh-sensitivity (Fig. 17).

Refresh hurts performance through bank unavailability: a demand miss
that arrives while its bank refreshes stalls, refreshes evict open rows
(extra row-buffer misses), and queued requests back up behind the busy
bank (command-queue seizure, Mukundan et al.).  For a fixed core, all
of these scale with (a) how often the program misses to DRAM and (b)
the fraction of time banks are refresh-busy.

The model::

    IPC(u) = base_ipc / (1 + alpha * u)

where ``u`` is the bank-unavailability fraction from
:class:`repro.controller.scheduler.BankAvailabilityModel` and ``alpha``
is the benchmark's *refresh sensitivity* — the queueing amplification
of raw unavailable time, larger for memory-bound programs.  Alphas live
in the benchmark profiles and are calibrated so the suite reproduces
the paper's range: +10.8 % for gemsFDTD down to +0.3 % for gobmk, mean
about +5.7 %.

Normalised IPC (what Fig. 17 plots) is then::

    IPC(u_zero_refresh) / IPC(u_conventional)
      = (1 + alpha * u_conv) / (1 + alpha * u_zr)

which is independent of ``base_ipc`` — reported anyway for absolute
context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.scheduler import BankAvailabilityModel
from repro.dram.refresh import RefreshStats
from repro.workloads.benchmarks import BenchmarkProfile


@dataclass(frozen=True)
class IpcResult:
    """IPC of one benchmark under baseline and measured refresh."""

    benchmark: str
    baseline_ipc: float
    ipc: float
    baseline_unavailability: float
    unavailability: float

    @property
    def normalized_ipc(self) -> float:
        """IPC relative to conventional refresh (Fig. 17's y-axis)."""
        return self.ipc / self.baseline_ipc

    @property
    def speedup_percent(self) -> float:
        return (self.normalized_ipc - 1.0) * 100.0


class AnalyticalCoreModel:
    """Closed-form refresh-stall IPC model."""

    def __init__(self, availability: BankAvailabilityModel):
        self.availability = availability

    def ipc_at(self, profile: BenchmarkProfile, unavailability: float) -> float:
        """Absolute IPC at a given bank-unavailability fraction."""
        if unavailability < 0:
            raise ValueError("unavailability cannot be negative")
        return profile.base_ipc / (1.0 + profile.refresh_sensitivity * unavailability)

    def evaluate(self, profile: BenchmarkProfile,
                 stats: RefreshStats) -> IpcResult:
        """IPC of a benchmark given its measured refresh statistics."""
        u_base = self.availability.baseline_unavailability
        u_run = self.availability.unavailability(stats)
        return IpcResult(
            benchmark=profile.name,
            baseline_ipc=self.ipc_at(profile, u_base),
            ipc=self.ipc_at(profile, u_run),
            baseline_unavailability=u_base,
            unavailability=u_run,
        )
