"""Program memory-trace format and trace-driven simulation driver.

The paper's evaluation is execution-driven (PIN + McSimA+); the
equivalent in this reproduction is *trace-driven*: a program trace —
the sequence of demand accesses per core — is replayed through the
cache hierarchy, and the LLC miss/writeback stream it produces drives
the memory controller and the refresh simulation.

* :class:`ProgramTrace` — (core, line address, is_write) records with
  npz save/load, so traces can be captured once and replayed across
  configurations.
* :class:`TraceDrivenDriver` — replays a trace window by window through
  a :class:`~repro.cache.caches.CacheHierarchy` into a
  :class:`~repro.core.zero_refresh.ZeroRefreshSystem`, writing back
  in-class values for dirty lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ProgramTrace:
    """A multi-core demand-access trace at cacheline granularity."""

    core: np.ndarray  # int8 core id per access
    line_addr: np.ndarray  # int64 global line address
    is_write: np.ndarray  # bool

    def __post_init__(self):
        if not (len(self.core) == len(self.line_addr) == len(self.is_write)):
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.line_addr)

    @property
    def num_cores(self) -> int:
        return int(self.core.max()) + 1 if len(self.core) else 0

    def slice(self, start: int, stop: int) -> "ProgramTrace":
        return ProgramTrace(
            core=self.core[start:stop],
            line_addr=self.line_addr[start:stop],
            is_write=self.is_write[start:stop],
        )

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist as compressed npz."""
        np.savez_compressed(
            Path(path),
            core=self.core.astype(np.int8),
            line_addr=self.line_addr.astype(np.int64),
            is_write=self.is_write.astype(bool),
        )

    @classmethod
    def load(cls, path) -> "ProgramTrace":
        data = np.load(Path(path))
        return cls(
            core=data["core"],
            line_addr=data["line_addr"],
            is_write=data["is_write"],
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        working_set_pages: np.ndarray,
        n_accesses: int,
        num_cores: int = 4,
        lines_per_page: int = 64,
        write_fraction: float = 0.25,
        zipf_s: float = 0.8,
        rng: Optional[np.random.Generator] = None,
    ) -> "ProgramTrace":
        """Synthesize a trace over a working set (one shared footprint;
        the paper runs the identical benchmark on each core)."""
        rng = rng or np.random.default_rng()
        ranks = np.arange(1, len(working_set_pages) + 1, dtype=float)
        probs = ranks**-zipf_s
        probs /= probs.sum()
        page_idx = rng.choice(len(working_set_pages), size=n_accesses, p=probs)
        lines = (
            np.asarray(working_set_pages)[page_idx] * lines_per_page
            + rng.integers(0, lines_per_page, size=n_accesses)
        )
        return cls(
            core=rng.integers(0, num_cores, size=n_accesses).astype(np.int8),
            line_addr=lines.astype(np.int64),
            is_write=rng.random(n_accesses) < write_fraction,
        )


class TraceDrivenDriver:
    """Replays a program trace through caches into the simulated system.

    The driver owns a cache hierarchy; each call to
    :meth:`run_window` replays one slice of the trace, converts the LLC
    miss/writeback stream into controller reads/writes (writebacks carry
    fresh in-class values via the system's page-class map), then runs
    one retention window of refresh.
    """

    def __init__(self, system, hierarchy=None):
        from repro.cache.caches import CacheHierarchy

        self.system = system
        self.hierarchy = hierarchy or CacheHierarchy(
            num_cores=system.config.num_cores,
            line_bytes=system.config.geometry.line_bytes,
        )
        self.dram_reads = 0
        self.dram_writes = 0

    def replay(self, trace: ProgramTrace) -> None:
        """Push trace accesses through the caches into DRAM."""
        write_addrs = []
        for core, addr, is_write in zip(trace.core, trace.line_addr,
                                        trace.is_write):
            for event in self.hierarchy.access(int(core), int(addr),
                                               bool(is_write)):
                if event.is_write:
                    write_addrs.append(event.line_addr)
                else:
                    self.system.controller.read_line(event.line_addr,
                                                     self.system.time_s)
                    self.dram_reads += 1
        if write_addrs:
            self.system._apply_writes(np.asarray(write_addrs),
                                      self.system.time_s)
            self.dram_writes += len(write_addrs)

    def run_window(self, trace_slice: ProgramTrace):
        """Replay one window's trace then run its refresh schedule."""
        self.replay(trace_slice)
        return self.system.engine.run_window(self.system.time_s)

    def run(self, trace: ProgramTrace, n_windows: int):
        """Split a trace evenly over windows and run them all."""
        from repro.dram.refresh import RefreshStats

        per_window = max(1, len(trace) // n_windows)
        total = RefreshStats()
        for i in range(n_windows):
            window_slice = trace.slice(i * per_window, (i + 1) * per_window)
            total = total.merged_with(self.run_window(window_slice))
            self.system.time_s += self.system.config.timing.tret_s
        return total
