"""CPU timing model for the IPC evaluation (paper Fig. 17).

The paper models 4-way out-of-order cores with McSimA+; what its IPC
result actually measures is how much of the refresh-induced
bank-unavailable time each benchmark feels.  :mod:`repro.cpu.core`
captures that with a closed-form stall model parameterised by each
benchmark's memory intensity, fed by the measured refresh statistics
through :class:`repro.controller.scheduler.BankAvailabilityModel`.
"""

from repro.cpu.core import AnalyticalCoreModel, IpcResult
from repro.cpu.trace import ProgramTrace, TraceDrivenDriver

__all__ = ["AnalyticalCoreModel", "IpcResult", "ProgramTrace",
           "TraceDrivenDriver"]
