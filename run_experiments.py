#!/usr/bin/env python
"""Regenerate every experiment at the standard reproduction scale and
write the combined report (used to produce EXPERIMENTS.md numbers).

Runs through :mod:`repro.api` — the parallel, cache-aware engine — so
repeated invocations reuse previously simulated points.  Use
``--jobs``/``--no-cache`` to control the engine, or the richer
``python -m repro.experiments`` CLI for single figures.
"""

import argparse
import sys
import time

import repro.api as api


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    args = parser.parse_args(argv)

    settings = api.default_settings(
        memory_bytes=16 << 20, windows=4, rows_per_ar=32, seed=7
    )
    runner = api.make_runner(jobs=args.jobs, cache=not args.no_cache)
    start = time.time()
    for name in api.list_experiments():
        exp_start = time.time()
        result = api.run(api.RunRequest(name, settings=settings),
                         runner=runner)
        print(result.render())
        print(f"({time.time() - exp_start:.1f}s)\n", flush=True)
    print(f"engine: {runner.summary(time.time() - start)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
