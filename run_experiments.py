#!/usr/bin/env python
"""Regenerate every experiment at the standard reproduction scale and
write the combined report (used to produce EXPERIMENTS.md numbers)."""

import sys
import time

from repro.experiments import REGISTRY, ExperimentSettings


def main() -> int:
    settings = ExperimentSettings(
        memory_bytes=16 << 20, windows=4, rows_per_ar=32, seed=7
    )
    for name, runner in REGISTRY.items():
        start = time.time()
        result = runner(settings)
        print(result.render())
        print(f"({time.time() - start:.1f}s)\n", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
