"""Tests for the unified simulation kernel."""

import pytest

from repro.dram.refresh import RefreshStats
from repro.obs import ProbeBus
from repro.sim import SchemeCapabilities, SimKernel, run_concurrent


class RecordingScheme:
    """Scheme double: records every run_window call it receives."""

    capabilities = SchemeCapabilities(timed=False, consumes_write_hook=True)

    def __init__(self):
        self.calls = []

    def run_window(self, start_time_s=0.0, write_hook=None):
        self.calls.append((start_time_s, write_hook))
        return RefreshStats(groups_refreshed=2, groups_skipped=1, windows=1)


class TestSimKernel:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SimKernel(RecordingScheme(), window_s=0.0)

    def test_warmup_windows_are_not_measured(self):
        scheme = RecordingScheme()
        kernel = SimKernel(scheme, window_s=0.064)
        stats = kernel.run(3, warmup_windows=2)
        assert len(scheme.calls) == 5
        assert stats.windows == 3
        assert stats.groups_refreshed == 6

    def test_time_advances_one_window_per_call(self):
        scheme = RecordingScheme()
        kernel = SimKernel(scheme, window_s=0.064, start_time_s=1.0)
        kernel.run(2, warmup_windows=1)
        times = [t for t, _ in scheme.calls]
        assert times == pytest.approx([1.0, 1.064, 1.128])
        assert kernel.time_s == pytest.approx(1.192)

    def test_traffic_called_per_measured_window_with_index_and_t0(self):
        scheme = RecordingScheme()
        seen = []

        def traffic(window_index, t0):
            seen.append((window_index, t0))
            return ("hook", window_index)

        kernel = SimKernel(scheme, window_s=0.5, traffic=traffic)
        kernel.run(2, warmup_windows=1)
        # warmup carries no traffic; measured windows get their hook
        assert seen == [(0, 0.5), (1, 1.0)]
        assert scheme.calls[0][1] is None
        assert scheme.calls[1][1] == ("hook", 0)
        assert scheme.calls[2][1] == ("hook", 1)

    def test_begin_measurement_fires_callback_and_resets_stats(self):
        fired = []
        scheme = RecordingScheme()
        kernel = SimKernel(scheme, window_s=0.064,
                           on_measure_start=lambda: fired.append(True))
        kernel.run_warmup(1)
        kernel.begin_measurement()
        assert fired == [True]
        assert kernel.stats == RefreshStats()
        kernel.step()
        assert kernel.stats.windows == 1

    def test_probes_count_measured_windows_only(self):
        bus = ProbeBus()
        kernel = SimKernel(RecordingScheme(), window_s=0.064, probes=bus)
        kernel.run(3, warmup_windows=2)
        assert bus.counters["sim.windows"] == 3
        assert set(bus.wall_times) == {"warmup", "measure"}


class TestRunConcurrent:
    def test_lockstep_interleaving(self):
        order = []

        class Tagged(RecordingScheme):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def run_window(self, start_time_s=0.0, write_hook=None):
                order.append((self.tag, start_time_s))
                return super().run_window(start_time_s, write_hook)

        kernels = [SimKernel(Tagged(tag), window_s=1.0) for tag in "ab"]
        stats = run_concurrent(kernels, 2)
        # window w of every kernel runs before window w+1 of any
        assert order == [("a", 0.0), ("b", 0.0), ("a", 1.0), ("b", 1.0)]
        assert [s.windows for s in stats] == [2, 2]

    def test_matches_sequential_execution(self):
        seq = SimKernel(RecordingScheme(), window_s=1.0).run(3, warmup_windows=1)
        (conc,) = run_concurrent(
            [SimKernel(RecordingScheme(), window_s=1.0)], 3, warmup_windows=1
        )
        assert conc == seq


class TestAggregateConcurrent:
    def test_counters_add_windows_overlap(self):
        parts = [
            RefreshStats(groups_refreshed=4, groups_skipped=2, windows=2),
            RefreshStats(groups_refreshed=6, groups_skipped=0, windows=2),
        ]
        merged = RefreshStats.aggregate_concurrent(parts, windows=2)
        assert merged.groups_refreshed == 10
        assert merged.groups_skipped == 2
        assert merged.windows == 2

    def test_inputs_not_mutated(self):
        part = RefreshStats(groups_refreshed=4, windows=2)
        RefreshStats.aggregate_concurrent([part, part], windows=2)
        assert part == RefreshStats(groups_refreshed=4, windows=2)
