"""Checkpoint golden parity: save → restore → finish is bit-identical.

The checkpoint layer promises that freezing a kernel at any window
boundary and resuming — in the same process, after a rewind, or in a
freshly constructed system fed the serialized bytes — reproduces an
uninterrupted run exactly.  The strongest available oracle is the same
one ``test_parity.py`` uses: the frozen golden numbers."""

import json
from pathlib import Path

import pytest

from repro.core.zero_refresh import ZeroRefreshSystem
from repro.experiments.runner import ExperimentSettings
from repro.sim import (
    CheckpointError,
    KernelCheckpoint,
    SimKernel,
    SmartRefreshScheme,
    restore_checkpoint,
    save_checkpoint,
)
from repro.workloads.benchmarks import benchmark_profile

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_parity.json").read_text()
)


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings.quick()


def build_system(settings, **overrides):
    config = settings.config(seed=settings.seed, **overrides)
    system = ZeroRefreshSystem(config)
    system.populate(benchmark_profile("mcf"), allocated_fraction=0.7)
    return system


def run_checkpointed(settings, **overrides):
    """simulate_benchmark("mcf", 0.7) with a checkpoint round-trip armed
    at *every* measured window boundary (serialize, deserialize,
    restore — then step)."""
    system = build_system(settings, **overrides)
    kernel = system.make_kernel()
    kernel.run_warmup(1)
    kernel.begin_measurement()
    for _ in range(settings.windows):
        ckpt = save_checkpoint(kernel, extra=system.checkpoint_state())
        reloaded = KernelCheckpoint.from_bytes(ckpt.to_bytes())
        extra = restore_checkpoint(kernel, reloaded)
        system.restore_state(extra)
        kernel.step()
    return system.finalize_run(kernel).to_dict()


class TestGoldenParityWithCheckpointing:
    def test_zero_refresh(self, settings):
        assert run_checkpointed(settings) == GOLDEN["zero_refresh"]

    def test_hybrid(self, settings):
        assert (run_checkpointed(settings, refresh_mode="hybrid")
                == GOLDEN["hybrid"])


class TestRewind:
    """A checkpoint taken mid-run restores the *past*: finish the run,
    rewind to the checkpoint, re-run the remaining windows — both
    completions must equal the golden numbers."""

    @pytest.mark.parametrize("mode,golden_key", [
        ("zero-refresh", "zero_refresh"),
        ("hybrid", "hybrid"),
    ])
    def test_rewind_reproduces_golden(self, settings, mode, golden_key):
        system = build_system(settings, refresh_mode=mode)
        kernel = system.make_kernel()
        kernel.run_warmup(1)
        kernel.begin_measurement()
        kernel.step()
        ckpt = save_checkpoint(kernel, extra=system.checkpoint_state())
        for _ in range(settings.windows - 1):
            kernel.step()
        first = system.finalize_run(kernel).to_dict()
        assert first == GOLDEN[golden_key]

        extra = restore_checkpoint(kernel, ckpt)
        system.restore_state(extra)
        for _ in range(settings.windows - 1):
            kernel.step()
        second = system.finalize_run(kernel).to_dict()
        assert second == first

    def test_one_checkpoint_restores_twice(self, settings):
        """Capture copies state: restoring the same checkpoint twice
        yields the same continuation both times."""
        system = build_system(settings)
        kernel = system.make_kernel()
        kernel.run_warmup(1)
        kernel.begin_measurement()
        ckpt = save_checkpoint(kernel, extra=system.checkpoint_state())
        runs = []
        for _ in range(2):
            extra = restore_checkpoint(kernel, ckpt)
            system.restore_state(extra)
            for _ in range(settings.windows):
                kernel.step()
            runs.append(system.finalize_run(kernel).to_dict())
        assert runs[0] == runs[1] == GOLDEN["zero_refresh"]


class TestFreshProcessRestore:
    """The kill-and-resume shape: serialize, build a brand-new system
    from the same config, restore from bytes, finish — bit-identical."""

    def test_restore_into_fresh_system(self, settings):
        donor = build_system(settings)
        donor_kernel = donor.make_kernel()
        donor_kernel.run_warmup(1)
        donor_kernel.begin_measurement()
        donor_kernel.step()
        blob = save_checkpoint(
            donor_kernel, extra=donor.checkpoint_state()
        ).to_bytes()
        for _ in range(settings.windows - 1):
            donor_kernel.step()
        reference = donor.finalize_run(donor_kernel).to_dict()
        assert reference == GOLDEN["zero_refresh"]

        fresh = build_system(settings)
        kernel = fresh.make_kernel()
        extra = restore_checkpoint(kernel, KernelCheckpoint.from_bytes(blob))
        fresh.restore_state(extra)
        for _ in range(settings.windows - 1):
            kernel.step()
        assert fresh.finalize_run(kernel).to_dict() == reference


class TestModeSelfConsistency:
    """Modes without golden entries (conventional baseline, naive
    tracker ablation) still honor the bit-identity contract against an
    uninterrupted run of themselves."""

    @pytest.mark.parametrize("mode", ["conventional", "naive"])
    def test_checkpointed_equals_plain(self, settings, mode):
        from repro.experiments.runner import simulate_benchmark

        plain = simulate_benchmark(
            settings, "mcf", 0.7, config_overrides={"refresh_mode": mode}
        ).to_dict()
        assert run_checkpointed(settings, refresh_mode=mode) == plain


class TestCheckpointContract:
    def test_non_checkpointable_scheme_raises(self):
        scheme = SmartRefreshScheme(tracker=object())
        kernel = SimKernel(scheme, window_s=0.064)
        assert not scheme.capabilities.checkpointable
        with pytest.raises(CheckpointError, match="checkpointable"):
            save_checkpoint(kernel)

    def test_window_length_mismatch_raises(self, settings):
        system = build_system(settings)
        kernel = system.make_kernel()
        ckpt = save_checkpoint(kernel, extra=system.checkpoint_state())
        other = SimKernel(system.engine, window_s=kernel.window_s * 2)
        with pytest.raises(CheckpointError, match="window_s"):
            restore_checkpoint(other, ckpt)

    def test_mode_mismatch_raises(self, settings):
        system = build_system(settings)
        ckpt = save_checkpoint(system.make_kernel())
        other = build_system(settings, refresh_mode="conventional")
        with pytest.raises(ValueError, match="mode"):
            restore_checkpoint(other.make_kernel(), ckpt)

    def test_schema_mismatch_raises(self, settings):
        system = build_system(settings)
        ckpt = save_checkpoint(system.make_kernel())
        ckpt.schema = 999
        with pytest.raises(CheckpointError, match="schema"):
            KernelCheckpoint.from_bytes(ckpt.to_bytes())

    def test_extra_round_trips(self, settings):
        system = build_system(settings)
        kernel = system.make_kernel()
        ckpt = save_checkpoint(kernel, extra={"marker": 42})
        ckpt = KernelCheckpoint.from_bytes(ckpt.to_bytes())
        assert restore_checkpoint(kernel, ckpt) == {"marker": 42}
