"""Regenerate ``golden_parity.json`` for the kernel parity tests.

The recorded values were produced by the *pre-kernel* per-scheme loops
(``ZeroRefreshSystem.run_windows``, the Fig. 19 Smart Refresh loop,
``RaidrScheduler.run``, ``MultiRankSystem.run_windows``) on the seed
quick config.  ``tests/sim/test_parity.py`` asserts the unified
:class:`repro.sim.SimKernel` reproduces them bit for bit.

Run from the repository root::

    PYTHONPATH=src python tests/sim/make_goldens.py

Only rerun this after an *intentional* change to simulation semantics;
a diff in the output is exactly what the parity tests exist to catch.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).parent / "golden_parity.json"


def zero_refresh_golden(settings):
    from repro.experiments.runner import simulate_benchmark

    return simulate_benchmark(settings, "mcf", 0.7).to_dict()


def hybrid_golden(settings):
    from repro.experiments.runner import simulate_benchmark

    return simulate_benchmark(
        settings, "mcf", 0.7, config_overrides={"refresh_mode": "hybrid"}
    ).to_dict()


def smart_refresh_golden(settings):
    from repro.experiments.engine import SimJob
    from repro.experiments.fig19 import capacity_point

    job = SimJob(benchmark="mcf", fn="repro.experiments.fig19:capacity_point",
                 params={"cap_mb": 4, "benchmark": "mcf"})
    smart, zero = capacity_point(settings, job)
    return {"smart_normalized": smart, "zero_normalized": zero}


def raidr_golden(settings):
    from repro.baselines.raidr import RaidrScheduler
    from repro.dram.variation import RetentionProfile, VrtProcess

    rng = np.random.default_rng(settings.seed)
    profile = RetentionProfile.sample(4096, rng=rng)
    scheduler = RaidrScheduler(profile)
    vrt = VrtProcess(profile, flips_per_row_per_hour=0.02, rng=rng)
    stats = scheduler.run(8, vrt=vrt)
    return asdict(stats)


def zero_indicator_golden(settings):
    from repro.baselines.zero_indicator import ZeroIndicatorScheme
    from repro.workloads.benchmarks import benchmark_profile

    rng = np.random.default_rng(settings.seed)
    pages = benchmark_profile("mcf").generate_pages(64, rng, 64)
    scheme = ZeroIndicatorScheme()
    return {
        "row_skip_fraction": scheme.row_skip_fraction(pages),
        "segment_zero_fraction": scheme.segment_zero_fraction(pages),
    }


def multirank_golden(settings):
    from repro.core.multirank import MultiRankSystem
    from repro.workloads.benchmarks import benchmark_profile

    dimm = MultiRankSystem(settings.config(), num_ranks=2)
    dimm.populate(benchmark_profile("mcf"), allocated_fraction=0.7)
    return dimm.run_windows(2).to_dict()


def main() -> None:
    from repro.experiments.runner import ExperimentSettings

    settings = ExperimentSettings.quick()
    goldens = {
        "settings": {"quick": True, "seed": settings.seed,
                     "windows": settings.windows,
                     "memory_bytes": settings.memory_bytes,
                     "rows_per_ar": settings.rows_per_ar},
        "zero_refresh": zero_refresh_golden(settings),
        "hybrid": hybrid_golden(settings),
        "smart_refresh": smart_refresh_golden(settings),
        "raidr": raidr_golden(settings),
        "zero_indicator": zero_indicator_golden(settings),
        "multirank": multirank_golden(settings),
    }
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
