"""Tests for the RefreshScheme protocol, capabilities and adapters."""

import numpy as np

from repro.core.config import SystemConfig
from repro.sim import (
    RaidrScheme,
    RefreshScheme,
    SchemeCapabilities,
    SmartRefreshScheme,
    ZeroIndicatorRefreshScheme,
)


def quick_config(**overrides):
    return SystemConfig.scaled(total_bytes=4 << 20, **overrides)


class TestCapabilities:
    def test_plain_engine_does_not_want_access_events(self):
        from repro.core.zero_refresh import ZeroRefreshSystem

        system = ZeroRefreshSystem(quick_config())
        caps = system.engine.capabilities
        assert isinstance(caps, SchemeCapabilities)
        assert not caps.wants_access_events
        assert isinstance(system.engine, RefreshScheme)

    def test_hybrid_engine_wants_access_events(self):
        from repro.core.zero_refresh import ZeroRefreshSystem

        system = ZeroRefreshSystem(quick_config(refresh_mode="hybrid"))
        assert system.engine.capabilities.wants_access_events
        assert isinstance(system.engine, RefreshScheme)

    def test_engines_have_no_private_probe_attr(self):
        """The capability flag replaced hasattr(_note_access) probing."""
        from repro.core.zero_refresh import ZeroRefreshSystem

        for mode in ("zero-refresh", "hybrid"):
            engine = ZeroRefreshSystem(quick_config(refresh_mode=mode)).engine
            assert not hasattr(engine, "_note_access")

    def test_adapters_satisfy_protocol(self):
        for cls in (SmartRefreshScheme, RaidrScheme,
                    ZeroIndicatorRefreshScheme):
            assert isinstance(cls.capabilities, SchemeCapabilities)
            assert not cls.capabilities.timed
            assert not cls.capabilities.consumes_write_hook


class TestSmartRefreshScheme:
    def test_feeds_accesses_then_runs_window(self):
        calls = []

        class FakeTracker:
            def note_accesses(self, banks, rows):
                calls.append(("note", list(banks), list(rows)))

            def run_window(self):
                calls.append(("window",))
                from repro.dram.refresh import RefreshStats

                return RefreshStats(groups_refreshed=1, groups_skipped=3,
                                    windows=1)

        scheme = SmartRefreshScheme(
            FakeTracker(), window_accesses=lambda: ([0, 1], [5, 6])
        )
        delta = scheme.run_window(0.064)
        assert calls == [("note", [0, 1], [5, 6]), ("window",)]
        assert delta.groups_skipped == 3

    def test_matches_direct_tracker_loop(self):
        from repro.baselines.smart_refresh import SmartRefreshTracker
        from repro.sim import SimKernel

        config = quick_config()
        rng = np.random.default_rng(11)
        accesses = [
            (rng.integers(0, config.geometry.num_banks, size=8),
             rng.integers(0, config.geometry.rows_per_bank, size=8))
            for _ in range(4)
        ]

        direct = SmartRefreshTracker(config.geometry)
        for banks, rows in accesses:
            direct.note_accesses(banks, rows)
            direct.run_window()

        kernel_tracker = SmartRefreshTracker(config.geometry)
        feed = iter(accesses)
        kernel = SimKernel(
            SmartRefreshScheme(kernel_tracker, lambda: next(feed)),
            window_s=config.timing.tret_s,
        )
        kernel.run(4)
        assert kernel_tracker.stats == direct.stats


class TestRaidrScheme:
    def test_translates_native_stats(self):
        from repro.dram.variation import RetentionProfile

        rng = np.random.default_rng(3)
        profile = RetentionProfile.sample(512, rng=rng)
        from repro.baselines.raidr import RaidrScheduler

        scheduler = RaidrScheduler(profile)
        delta = RaidrScheme(scheduler).run_window(0.0)
        assert delta.windows == 1
        assert delta.groups_refreshed == scheduler.stats.refreshes_performed
        assert (delta.groups_refreshed + delta.groups_skipped
                == len(scheduler.row_bins))


class TestZeroIndicatorScheme:
    def test_counts_all_zero_rows(self):
        from repro.baselines.zero_indicator import ZeroIndicatorScheme

        pages = np.ones((2, 64, 8), dtype=np.uint64)
        pages[0] = 0
        scheme = ZeroIndicatorRefreshScheme(
            ZeroIndicatorScheme(), content=lambda: pages, lines_per_row=64
        )
        delta = scheme.run_window()
        assert delta.groups_skipped == 1
        assert delta.groups_refreshed == 1
        assert delta.windows == 1
