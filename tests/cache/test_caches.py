"""Tests for the write-back cache hierarchy."""

import numpy as np
import pytest

from repro.cache.caches import CacheHierarchy, MemoryEvent, SetAssociativeCache


class TestSetAssociativeCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, ways=3)

    def test_miss_then_hit(self):
        cache = SetAssociativeCache(4096, ways=4)
        hit, _ = cache.access(1, False)
        assert not hit
        hit, _ = cache.access(1, False)
        assert hit
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(2 * 64, ways=2)  # 1 set, 2 ways
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # 0 becomes MRU
        _, evicted = cache.access(2, False)  # evicts 1 (clean)
        assert evicted is None
        hit, _ = cache.access(0, False)
        assert hit

    def test_dirty_eviction_emits_writeback(self):
        cache = SetAssociativeCache(2 * 64, ways=2)
        cache.access(0, True)
        cache.access(1, False)
        _, evicted = cache.access(2, False)  # evicts dirty line 0
        assert evicted == MemoryEvent(line_addr=0, is_write=True)
        assert cache.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = SetAssociativeCache(2 * 64, ways=2)
        cache.access(0, False)
        cache.access(0, True)  # dirty via hit
        cache.access(1, False)
        _, evicted = cache.access(2, False)
        assert evicted is not None and evicted.line_addr == 0

    def test_flush_writes_back_all_dirty(self):
        cache = SetAssociativeCache(4096, ways=4)
        for addr in range(8):
            cache.access(addr, addr % 2 == 0)
        events = cache.flush()
        assert {e.line_addr for e in events} == {0, 2, 4, 6}
        assert cache.hit_rate == 0.0

    def test_addresses_map_to_distinct_sets(self):
        cache = SetAssociativeCache(4096, ways=4)  # 16 sets
        cache.access(0, False)
        cache.access(16, False)  # same set, different tag
        cache.access(1, False)  # different set
        assert cache.misses == 3


class TestCacheHierarchy:
    def test_l1_hit_produces_no_traffic(self):
        h = CacheHierarchy(num_cores=1)
        events1 = h.access(0, 100, False)
        assert any(not e.is_write for e in events1)  # initial fill
        events2 = h.access(0, 100, False)
        assert events2 == []

    def test_llc_absorbs_other_cores_fills(self):
        h = CacheHierarchy(num_cores=2)
        h.access(0, 100, False)
        events = h.access(1, 100, False)  # L1 miss, LLC hit
        assert events == []

    def test_llc_miss_reaches_memory(self):
        h = CacheHierarchy(num_cores=1)
        events = h.access(0, 42, False)
        assert MemoryEvent(line_addr=42, is_write=False) in events

    def test_rejects_bad_core(self):
        h = CacheHierarchy(num_cores=2)
        with pytest.raises(ValueError):
            h.access(2, 0, False)

    def test_drain_flushes_dirty_lines_to_memory(self):
        h = CacheHierarchy(num_cores=1)
        h.access(0, 7, True)
        events = h.drain()
        assert any(e.line_addr == 7 and e.is_write for e in events)

    def test_working_set_larger_than_llc_generates_writebacks(self):
        h = CacheHierarchy(num_cores=1, l1_bytes=1024, l1_ways=2,
                           llc_bytes_per_core=4096, llc_ways=4)
        rng = np.random.default_rng(0)
        writebacks = 0
        for addr in rng.integers(0, 4096, size=4000):
            events = h.access(0, int(addr), True)
            writebacks += sum(e.is_write for e in events)
        assert writebacks > 0

    def test_hierarchy_hit_rates_reasonable(self):
        h = CacheHierarchy(num_cores=1)
        rng = np.random.default_rng(1)
        hot = rng.integers(0, 64, size=2000)  # tiny hot set
        for addr in hot:
            h.access(0, int(addr), False)
        assert h.l1[0].hit_rate > 0.9
